# Convenience targets for the WS-Gossip reproduction.

PYTHON ?= python

.PHONY: install test test-chaos test-recovery test-obs test-adaptive test-overload test-telemetry soak-smoke soak bench bench-smoke bench-core bench-shard bench-shard-smoke bench-perturbation bench-perturbation-smoke bench-overload bench-overload-smoke bench-telemetry-smoke bench-telemetry profile examples clean coverage

install:
	pip install -e . || pip install -e . --no-build-isolation

test: test-chaos test-recovery test-obs test-adaptive test-overload test-telemetry soak-smoke bench-shard-smoke
	$(PYTHON) -m pytest tests/

# Live-socket gate: a small real-UDP mesh on one event loop must deliver
# the stock workload to >= 99% of nodes with a sane p99 while the
# /v1/metrics edge answers scrapes (see docs/DEPLOY.md).
soak-smoke:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_soak.py --smoke

# Full live soak (300 real-socket nodes, 3 minutes); appends the row to
# BENCH_core.json under "soak".
soak:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_soak.py --rate 2.5 --period 2.0 --settle 30

# Seeded chaos gate: 30% crashes + 10% link loss at N=500 must still
# deliver to >= 99% of survivors with the peer-health layer on, and
# beat the same seed with it off (see docs/RESILIENCE.md).
test-chaos:
	PYTHONPATH=src $(PYTHON) -m pytest tests/integration/test_chaos.py -q

# Seeded recovery gate: 20% crash-restart with amnesia plus one
# partition/heal cycle at N=500 must still deliver to >= 99% of the
# group with durability + catch-up, and the amnesia-without-catch-up
# ablation on the same seed must be demonstrably worse
# (see docs/RESILIENCE.md, "Crash-recovery and rejoin").
test-recovery:
	PYTHONPATH=src $(PYTHON) -m pytest tests/integration/test_recovery.py -q

# Seeded observability gate: an N=500 push run judged from the metrics
# hub's causal rumor spans -- >= 99% delivery, and rounds-to-99% within
# the epidemic bound from repro.core.analysis.expected_rounds
# (see docs/OBSERVABILITY.md).
test-obs:
	PYTHONPATH=src $(PYTHON) -m pytest tests/integration/test_obs_gate.py -q

# Seeded adaptive-control gate: the self-tuning controller through
# calm -> 30% crash-restart churn -> loss ramp -> 5x publish burst at
# N=500 must hold >= 0.99 delivery in every phase while sending less
# traffic than the static reference config that also holds it
# (see docs/RESILIENCE.md, "Adaptive control").
test-adaptive:
	REPRO_ADAPTIVE_N=500 PYTHONPATH=src $(PYTHON) -m pytest tests/integration/test_adaptive.py -q

# Seeded overload gate: every disseminator throttled to a slow consumer
# while the initiator publishes at ~3x the remaining capacity, at N=500.
# With overload=... on, admitted-rumor delivery must stay >= 0.99 and
# peak ingest-queue depth within the configured bound; the shed-off
# ablation on the same seed must exhibit the collapse (unbounded queue
# growth, degraded delivery).  See docs/RESILIENCE.md, "Overload and
# backpressure".
test-overload:
	REPRO_OVERLOAD_N=500 PYTHONPATH=src $(PYTHON) -m pytest tests/integration/test_overload.py -q

# Seeded telemetry gate: a 120-node loopback UDP mesh with full path
# sampling must reconstruct per-hop latency, infection curves, and
# rounds-to-99% purely from the sampled wire trace context, and a
# simulated loss ramp must fire the windowed SLO burn-rate alert and
# clear it after the network heals (see docs/OBSERVABILITY.md,
# "Live telemetry").
test-telemetry:
	REPRO_TELEMETRY_N=120 PYTHONPATH=src $(PYTHON) -m pytest tests/integration/test_telemetry_gate.py -q

# Telemetry overhead gate: the N=1000 drain with the default telemetry
# policy must cost <= 5% CPU over telemetry=None (min-of-repeats,
# interleaved; see benchmarks/bench_telemetry.py).
bench-telemetry-smoke:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_telemetry.py --smoke

# Full telemetry overhead measurement; merges the "telemetry" section
# into BENCH_core.json.
bench-telemetry:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_telemetry.py

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Fast wire-path regression gate: a live N=100 batched run (delivery,
# batch traffic, pre-parse dedup) plus the checked-in BENCH_core.json
# scaling headline: envelope reduction >= 5x at N=1000, 5k/1k drain
# wall ratio <= 3, delivered_fraction >= 0.99 on every row.
bench-smoke:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_perf_core.py --smoke

# Regenerate the BENCH_core.json baseline (N=100/1000/5000; minutes).
bench-core:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_perf_core.py

# Sharded-simulator gate: determinism contract (K=1 vs K=2 delivered
# sets identical on a converging push-pull run; repeat runs with the
# same seed produce byte-identical per-shard trace digests) plus a
# >= 1.3x speedup floor at N=1000/K=2 -- measured on the wall when the
# host has the cores, on the critical path (parent drain CPU + max
# worker busy CPU) when it doesn't.  See docs/ARCHITECTURE.md.
bench-shard-smoke:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_shard.py --smoke

# Full strong-scaling sweep (N=1000/5000/20000 x K=1/2/4/8; minutes);
# merges the "shard" section into BENCH_core.json.
bench-shard:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_shard.py

# Perturbation benchmark: adaptive controller vs a static (fanout,
# rounds) grid through the four-phase schedule; appends rows to
# BENCH_core.json under "perturbation".
bench-perturbation:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_perturbation.py

# CI-sized perturbation run (N=60, shorter phases) with the same claim
# checks; does not write BENCH_core.json.
bench-perturbation-smoke:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_perturbation.py --smoke

# Overload sweep: goodput and queue memory at 0.5x-4x offered load,
# shed ladder on vs off; writes BENCH_core.json under "overload".
bench-overload:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_overload.py

# CI-sized overload sweep (N=40, multipliers 1x/3x) asserting the
# headline claims; does not write BENCH_core.json.
bench-overload-smoke:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_overload.py --smoke

# cProfile one batched N=1000 burst; top 25 functions by cumulative time.
profile:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_perf_core.py --profile

examples:
	for script in examples/*.py; do echo "== $$script =="; $(PYTHON) $$script || exit 1; done

record:
	$(PYTHON) -m pytest tests/ 2>&1 | tee test_output.txt
	$(PYTHON) -m pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

clean:
	rm -rf build dist *.egg-info .pytest_cache .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
