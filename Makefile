# Convenience targets for the WS-Gossip reproduction.

PYTHON ?= python

.PHONY: install test bench examples clean coverage

install:
	pip install -e . || pip install -e . --no-build-isolation

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

examples:
	for script in examples/*.py; do echo "== $$script =="; $(PYTHON) $$script || exit 1; done

record:
	$(PYTHON) -m pytest tests/ 2>&1 | tee test_output.txt
	$(PYTHON) -m pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

clean:
	rm -rf build dist *.egg-info .pytest_cache .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
