"""WS-Gossip: middleware for scalable service coordination.

A full reproduction of Campos & Pereira (Middleware '08): epidemic
dissemination layered over a from-scratch SOAP / WS-Coordination stack,
runnable on a deterministic discrete-event simulator or over real
localhost HTTP.

Quickstart::

    from repro import GossipConfig, GossipGroup

    config = GossipConfig(n_disseminators=32, n_consumers=16, seed=7)
    group = GossipGroup(config=config)
    group.setup()
    message_id = group.publish({"symbol": "ACME", "price": 101.5})
    group.run_for(5.0)
    assert group.is_atomic(message_id)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record.
"""

from repro.core import (
    DecentralizedGroup,
    DurabilityPolicy,
    GossipConfig,
    GossipGroup,
    GossipLog,
    GossipParams,
    GossipStyle,
    HealthPolicy,
    ParamError,
    PeerHealth,
    atomic_delivery_probability,
    expected_rounds,
    fanout_for_atomicity,
)
from repro.simnet.events import Simulator
from repro.simnet.metrics import (
    HEALTH_STATS,
    RECOVERY_STATS,
    WIRE_STATS,
    HealthStats,
    RecoveryStats,
    WireStats,
)
from repro.stats import summarize

__version__ = "1.0.0"

__all__ = [
    "DecentralizedGroup",
    "DurabilityPolicy",
    "GossipConfig",
    "GossipGroup",
    "GossipLog",
    "GossipParams",
    "GossipStyle",
    "HEALTH_STATS",
    "HealthPolicy",
    "HealthStats",
    "ParamError",
    "PeerHealth",
    "RECOVERY_STATS",
    "RecoveryStats",
    "Simulator",
    "WIRE_STATS",
    "WireStats",
    "atomic_delivery_probability",
    "expected_rounds",
    "fanout_for_atomicity",
    "summarize",
    "__version__",
]
