"""WS-Gossip: middleware for scalable service coordination.

A full reproduction of Campos & Pereira (Middleware '08): epidemic
dissemination layered over a from-scratch SOAP / WS-Coordination stack,
runnable on a deterministic discrete-event simulator or over real
localhost HTTP.

Quickstart::

    from repro import GossipConfig, GossipGroup

    config = GossipConfig(n_disseminators=32, n_consumers=16, seed=7)
    group = GossipGroup(config=config)
    group.setup()
    message_id = group.publish({"symbol": "ACME", "price": 101.5})
    group.run_for(5.0)
    assert group.is_atomic(message_id)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record.
"""

from repro.core import (
    AdaptiveController,
    AdaptivePolicy,
    DecentralizedGroup,
    DurabilityPolicy,
    GossipConfig,
    GossipGroup,
    GossipLog,
    GossipParams,
    GossipStyle,
    HealthPolicy,
    ParamError,
    PeerHealth,
    atomic_delivery_probability,
    expected_rounds,
    fanout_for_atomicity,
)
from repro.obs import MetricsHub, Profiler, RumorTracer, default_hub
from repro.simnet.events import Simulator
from repro.simnet.metrics import ControlStats, HealthStats, RecoveryStats, WireStats
from repro.stats import summarize

#: Deprecated process-global stat aliases, resolved lazily so plain
#: ``import repro`` never fires a DeprecationWarning.
_DEPRECATED_STATS = (
    "BATCH_STATS",
    "CONTROL_STATS",
    "HEALTH_STATS",
    "RECOVERY_STATS",
    "WIRE_STATS",
)


def __getattr__(name: str):
    if name in _DEPRECATED_STATS:
        from repro.simnet import metrics as _metrics

        return getattr(_metrics, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__version__ = "1.0.0"

__all__ = [
    "AdaptiveController",
    "AdaptivePolicy",
    "DecentralizedGroup",
    "DurabilityPolicy",
    "GossipConfig",
    "GossipGroup",
    "GossipLog",
    "GossipParams",
    "GossipStyle",
    "CONTROL_STATS",
    "ControlStats",
    "HEALTH_STATS",
    "HealthPolicy",
    "MetricsHub",
    "Profiler",
    "RumorTracer",
    "default_hub",
    "HealthStats",
    "ParamError",
    "PeerHealth",
    "RECOVERY_STATS",
    "RecoveryStats",
    "Simulator",
    "WIRE_STATS",
    "WireStats",
    "atomic_delivery_probability",
    "expected_rounds",
    "fanout_for_atomicity",
    "summarize",
    "__version__",
]
