"""Causal rumor tracing: one span per gossip message id.

A :class:`RumorSpan` follows a single rumor through the epidemic: the
publish that minted its wire ``MessageId``, every forward fan-out, and
every first delivery at a node, each stamped with simulation time and the
remaining hop budget.  The span key is the wire ``MessageId`` itself, which
survives batching unchanged (:mod:`repro.core.batch` embeds legacy frames
verbatim), so rumors are traced identically whether they travelled alone
or inside a :class:`~repro.core.batch.GossipBatch` frame.

From the raw hops the span derives the quantities the experiments used to
approximate with raw :class:`~repro.simnet.trace.TraceLog` scans: the
infection curve (``delivered(t)`` and delivered-by-round), and
rounds-to-delivery percentiles.  Round attribution uses the hop budget:
a rumor published with ``hops = params.rounds`` and delivered while
``hops_left`` remained has taken ``budget - hops_left`` rounds.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple


class RumorSpan:
    """The causal trace of one rumor (keyed by its wire message id)."""

    __slots__ = (
        "message_id",
        "origin",
        "publish_time",
        "budget",
        "deliveries",
        "forwards",
        "_delivered_nodes",
    )

    def __init__(
        self,
        message_id: str,
        origin: Optional[str] = None,
        publish_time: Optional[float] = None,
        budget: Optional[int] = None,
    ) -> None:
        self.message_id = message_id
        self.origin = origin
        self.publish_time = publish_time
        self.budget = budget
        #: First delivery per node: ``(time, node, hops_left)``.
        self.deliveries: List[Tuple[float, str, int]] = []
        #: Forward fan-outs: ``(time, node, targets)``.
        self.forwards: List[Tuple[float, str, int]] = []
        self._delivered_nodes: Set[str] = set()

    # -- recorded hops ------------------------------------------------------

    def record_delivery(self, time: float, node: str, hops_left: int) -> None:
        if node in self._delivered_nodes:
            return  # only the first arrival per node is causal
        self._delivered_nodes.add(node)
        self.deliveries.append((time, node, hops_left))
        if self.budget is None or hops_left + 1 > self.budget:
            # No publish was observed (remote origin): infer the budget
            # from the freshest copy seen -- it left the publisher with
            # one more hop than any arrival can carry.
            self.budget = hops_left + 1

    def record_forward(self, time: float, node: str, targets: int) -> None:
        self.forwards.append((time, node, targets))

    # -- derived quantities -------------------------------------------------

    def infected_nodes(self) -> Set[str]:
        """Every node known to hold the rumor (origin + deliveries)."""
        nodes = {node for _, node, _ in self.deliveries}
        if self.origin is not None:
            nodes.add(self.origin)
        return nodes

    @property
    def delivered_count(self) -> int:
        """Distinct nodes the rumor reached, excluding the origin."""
        return len({node for _, node, _ in self.deliveries} - {self.origin})

    def rounds_of_deliveries(self) -> List[int]:
        """Rounds taken by each delivery (``budget - hops_left``)."""
        if self.budget is None:
            return []
        return [self.budget - hops_left for _, _, hops_left in self.deliveries]

    def infection_curve(self) -> List[Tuple[float, int]]:
        """``(time, cumulative_infected)`` steps, origin counted at publish.

        Times are delivery times; the count at each step is the number of
        distinct infected nodes (origin included) up to that time.
        """
        curve: List[Tuple[float, int]] = []
        seen: Set[str] = set()
        if self.origin is not None:
            seen.add(self.origin)
            curve.append((self.publish_time or 0.0, len(seen)))
        for time, node, _ in sorted(self.deliveries):
            if node in seen:
                continue
            seen.add(node)
            curve.append((time, len(seen)))
        return curve

    def delivered_by_round(self) -> Dict[int, int]:
        """Cumulative distinct infected nodes per round (origin = round 0)."""
        first_round: Dict[str, int] = {}
        if self.origin is not None:
            first_round[self.origin] = 0
        if self.budget is not None:
            for _, node, hops_left in self.deliveries:
                rounds = self.budget - hops_left
                if node not in first_round or rounds < first_round[node]:
                    first_round[node] = rounds
        if not first_round:
            return {}
        last = max(first_round.values())
        cumulative: Dict[int, int] = {}
        count = 0
        by_round: Dict[int, int] = {}
        for node, rounds in first_round.items():
            by_round[rounds] = by_round.get(rounds, 0) + 1
        for rounds in range(last + 1):
            count += by_round.get(rounds, 0)
            cumulative[rounds] = count
        return cumulative

    def rounds_to_fraction(self, fraction: float, population: int) -> Optional[int]:
        """Smallest round by which ``>= fraction * population`` nodes are
        infected, or ``None`` when the rumor never got there."""
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1]: {fraction!r}")
        if population <= 0:
            raise ValueError(f"population must be positive: {population!r}")
        target = fraction * population
        for rounds, count in sorted(self.delivered_by_round().items()):
            if count >= target:
                return rounds
        return None

    def __repr__(self) -> str:
        return (
            f"RumorSpan({self.message_id!r}, origin={self.origin!r}, "
            f"delivered={self.delivered_count}, forwards={len(self.forwards)})"
        )


class RumorTracer:
    """Span registry fed by the gossip engines sharing a hub."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._spans: Dict[str, RumorSpan] = {}

    def _span(self, message_id: str) -> RumorSpan:
        span = self._spans.get(message_id)
        if span is None:
            span = RumorSpan(message_id)
            self._spans[message_id] = span
        return span

    # -- hooks (called by the engine) ---------------------------------------

    def on_publish(
        self, message_id: str, node: str, time: float, budget: int
    ) -> None:
        """A rumor was minted at ``node`` with ``budget`` hops to spend."""
        if not self.enabled:
            return
        span = self._span(message_id)
        span.origin = node
        span.publish_time = time
        if span.budget is None or budget > span.budget:
            span.budget = budget

    def on_forward(
        self, message_id: str, node: str, time: float, targets: int
    ) -> None:
        """``node`` fanned the rumor out to ``targets`` peers."""
        if not self.enabled or targets <= 0:
            return
        self._span(message_id).record_forward(time, node, targets)

    def on_deliver(
        self, message_id: str, node: str, time: float, hops_left: int
    ) -> None:
        """First (fresh) arrival of the rumor at ``node``."""
        if not self.enabled:
            return
        self._span(message_id).record_delivery(time, node, hops_left)

    # -- queries ------------------------------------------------------------

    def span(self, message_id: str) -> Optional[RumorSpan]:
        """The span for a message id, or ``None``."""
        return self._spans.get(message_id)

    def spans(self) -> List[RumorSpan]:
        """Every span, in first-seen order."""
        return list(self._spans.values())

    def __len__(self) -> int:
        return len(self._spans)

    def deliveries_per_node(self) -> Dict[str, int]:
        """Distinct rumors delivered per node across all spans."""
        counts: Dict[str, int] = {}
        for span in self._spans.values():
            for node in span.infected_nodes() - {span.origin}:
                counts[node] = counts.get(node, 0) + 1
        return counts

    def all_delivery_rounds(self) -> List[int]:
        """Round counts for every delivery across all spans."""
        rounds: List[int] = []
        for span in self._spans.values():
            rounds.extend(span.rounds_of_deliveries())
        return rounds

    def rounds_percentile(self, q: float) -> float:
        """Percentile of rounds-to-delivery across all spans.

        Raises:
            ValueError: when nothing has been delivered yet.
        """
        rounds = sorted(self.all_delivery_rounds())
        if not rounds:
            raise ValueError("no deliveries traced")
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100]: {q!r}")
        if len(rounds) == 1:
            return float(rounds[0])
        rank = (q / 100.0) * (len(rounds) - 1)
        low = int(rank)
        high = min(low + 1, len(rounds) - 1)
        fraction = rank - low
        return rounds[low] * (1.0 - fraction) + rounds[high] * fraction

    def reset(self) -> None:
        """Drop every span (the tracer object stays bound)."""
        self._spans.clear()

    def __repr__(self) -> str:
        return f"RumorTracer(spans={len(self._spans)}, enabled={self.enabled})"
