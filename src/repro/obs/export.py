"""Structured exporters for a :class:`~repro.obs.hub.MetricsHub`.

Two formats, both dependency-free:

* JSON lines, one record per metric, following the :mod:`repro.simnet.traceio`
  conventions (plain stdlib JSON, ``sort_keys``, a ``ValueError`` naming the
  offending line on load).
* The Prometheus text exposition format (version 0.0.4) -- what
  :mod:`repro.transport.http` serves at ``/metrics`` -- with proper metric
  name sanitisation, label value escaping, and ``# HELP`` / ``# TYPE``
  family headers.
"""

from __future__ import annotations

import json
import re
from typing import Dict, IO, List, Optional

from repro.obs.hub import MetricsHub

_STAT_GROUPS = ("wire", "batch", "health", "recovery", "control", "overload")


def hub_snapshot(hub: MetricsHub) -> Dict:
    """Every metric in ``hub`` as one plain dict (JSON-serialisable)."""
    snapshot: Dict = {
        "name": hub.name,
        "counters": hub.counters(),
        "gauges": hub.gauges(),
        "labeled_counters": [
            {"name": name, "labels": dict(labels), "value": value}
            for (name, labels), value in hub.labeled_counters().items()
        ],
        "labeled_gauges": [
            {"name": name, "labels": dict(labels), "value": value}
            for (name, labels), value in hub.labeled_gauges().items()
        ],
        "histograms": {
            name: _histogram_summary(histogram)
            for name, histogram in hub._histograms.items()
        },
        "series": {
            name: series.samples() for name, series in hub._series.items()
        },
        "decisions": [decision.to_value() for decision in hub.decisions],
        "windows": {
            name: {"rate": window.rate(), "total": window.total(),
                   "count": window.count(), "span": window.span}
            for name, window in hub.windows().items()
        },
        "alerts": [alert.to_value() for alert in hub.alerts],
    }
    for group in _STAT_GROUPS:
        snapshot[group] = getattr(hub, group).snapshot()
    return snapshot


def _histogram_summary(histogram) -> Dict:
    if histogram.count == 0:
        return {"count": 0}
    return {
        "count": histogram.count,
        "sum": histogram.total,
        "mean": histogram.mean(),
        "p50": histogram.percentile(50),
        "p95": histogram.percentile(95),
        "p99": histogram.percentile(99),
        "max": histogram.max(),
    }


# -- JSON lines ---------------------------------------------------------------


def dump_jsonl(hub: MetricsHub, stream: IO[str]) -> int:
    """Write one JSON object per metric; returns the number written.

    Record kinds: ``counter`` / ``gauge`` (optionally labelled),
    ``histogram`` (summary statistics), ``series`` (raw samples),
    ``stat`` (one record per stat-group field), ``decision`` (one per
    adaptive-controller epoch, in time order), ``window`` (one per rolling
    window: rate/total over its span) and ``alert`` (one per SLO alert
    edge, in time order).
    """
    count = 0

    def emit(record: Dict) -> None:
        nonlocal count
        stream.write(json.dumps(record, sort_keys=True) + "\n")
        count += 1

    for name, value in sorted(hub.counters().items()):
        emit({"kind": "counter", "name": name, "value": value})
    for (name, labels), value in sorted(hub.labeled_counters().items()):
        emit(
            {
                "kind": "counter",
                "name": name,
                "labels": dict(labels),
                "value": value,
            }
        )
    for name, value in sorted(hub.gauges().items()):
        emit({"kind": "gauge", "name": name, "value": value})
    for (name, labels), value in sorted(hub.labeled_gauges().items()):
        emit(
            {"kind": "gauge", "name": name, "labels": dict(labels), "value": value}
        )
    for name, histogram in sorted(hub._histograms.items()):
        record = {"kind": "histogram", "name": name}
        record.update(_histogram_summary(histogram))
        emit(record)
    for name, series in sorted(hub._series.items()):
        emit({"kind": "series", "name": name, "samples": series.samples()})
    for group in _STAT_GROUPS:
        for field, value in getattr(hub, group).snapshot().items():
            emit({"kind": "stat", "group": group, "field": field, "value": value})
    for decision in hub.decisions:
        record = {"kind": "decision"}
        record.update(decision.to_value())
        emit(record)
    for name, window in sorted(hub.windows().items()):
        emit(
            {
                "kind": "window",
                "name": name,
                "rate": window.rate(),
                "total": window.total(),
                "count": window.count(),
                "span": window.span,
            }
        )
    for alert in hub.alerts:
        record = {"kind": "alert"}
        record.update(alert.to_value())
        emit(record)
    return count


def load_jsonl(stream: IO[str]) -> List[Dict]:
    """Parse :func:`dump_jsonl` output back into a list of records.

    Raises:
        ValueError: on lines that are not valid metric records.
    """
    records: List[Dict] = []
    for line_number, line in enumerate(stream, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
            if not isinstance(record, dict) or "kind" not in record:
                raise ValueError("not a metric record")
        except (json.JSONDecodeError, ValueError) as exc:
            raise ValueError(f"bad metric record on line {line_number}") from exc
        records.append(record)
    return records


# -- Prometheus text format ---------------------------------------------------

_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")
_LABEL_OK = re.compile(r"[^a-zA-Z0-9_]")


def _metric_name(name: str, prefix: str = "repro_") -> str:
    sanitized = _NAME_OK.sub("_", name)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return prefix + sanitized


def _label_name(name: str) -> str:
    sanitized = _LABEL_OK.sub("_", name)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _render_labels(labels) -> str:
    if not labels:
        return ""
    rendered = ",".join(
        f'{_label_name(key)}="{_escape_label_value(value)}"'
        for key, value in labels
    )
    return "{" + rendered + "}"


def _format_value(value: float) -> str:
    if isinstance(value, bool):
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


#: Curated ``# HELP`` texts for the well-known metric names; anything else
#: gets a generic line derived from its source name.
_HELP_TEXTS = {
    "gossip.publish": "Rumors published by this hub's nodes.",
    "gossip.fresh": "First-time rumor deliveries.",
    "gossip.duplicate": "Duplicate rumor arrivals consumed by dedup.",
    "gossip.forward": "Eager rumor forwards sent.",
    "gossip.fanout-send": "Publication fan-out sends.",
    "gossip.hops-exhausted": "Rumors dropped with no forwarding budget left.",
    "net.sent": "Messages handed to the network fabric.",
    "net.delivered": "Messages delivered by the network fabric.",
    "net.dropped": "Messages lost by the network fabric.",
    "soap.sent": "SOAP envelopes sent by runtimes.",
    "soap.delivered": "SOAP envelopes dispatched to services.",
    "telemetry.samples": "Sampled trace-context deliveries accounted.",
    "telemetry.skew_guarded": "Trace samples discarded by the clock-skew guard.",
    "telemetry.path_clamped": "Trace samples discarded for exceeding max path length.",
    "telemetry.hop_latency_ms": "Per-hop dissemination latency from sampled wire trace context (ms).",
    "telemetry.e2e_latency_ms": "Publish-to-delivery latency from sampled wire trace context (ms).",
}


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _family_header(
    lines: List[str], family: str, kind: str, source_name: str
) -> None:
    """Append the ``# HELP`` / ``# TYPE`` header pair for one family."""
    help_text = _HELP_TEXTS.get(source_name, f"Value of {source_name}.")
    lines.append(f"# HELP {family} {_escape_help(help_text)}")
    lines.append(f"# TYPE {family} {kind}")


def prometheus_text(hub: MetricsHub, prefix: str = "repro_") -> str:
    """Render every metric in the Prometheus text exposition format.

    Counters and stat-group fields export as ``counter`` families (node
    labelled series ride under the same family as the unlabelled
    aggregate); gauges as ``gauge``; histograms as ``summary`` families
    with ``quantile`` series plus ``_sum``/``_count``.  Every family is
    introduced by its ``# HELP`` and ``# TYPE`` header pair.
    """
    lines: List[str] = []

    # counter families: unlabelled aggregate + labelled series.
    labeled_by_name: Dict[str, List] = {}
    for (name, labels), value in hub.labeled_counters().items():
        labeled_by_name.setdefault(name, []).append((labels, value))
    counter_names = sorted(set(hub.counters()) | set(labeled_by_name))
    for name in counter_names:
        family = _metric_name(name, prefix)
        _family_header(lines, family, "counter", name)
        if name in hub.counters():
            lines.append(f"{family} {_format_value(hub.counters()[name])}")
        for labels, value in sorted(labeled_by_name.get(name, [])):
            lines.append(f"{family}{_render_labels(labels)} {_format_value(value)}")

    gauge_labeled: Dict[str, List] = {}
    for (name, labels), value in hub.labeled_gauges().items():
        gauge_labeled.setdefault(name, []).append((labels, value))
    gauge_names = sorted(set(hub.gauges()) | set(gauge_labeled))
    for name in gauge_names:
        family = _metric_name(name, prefix)
        _family_header(lines, family, "gauge", name)
        if name in hub.gauges():
            lines.append(f"{family} {_format_value(hub.gauges()[name])}")
        for labels, value in sorted(gauge_labeled.get(name, [])):
            lines.append(f"{family}{_render_labels(labels)} {_format_value(value)}")

    for name, histogram in sorted(hub._histograms.items()):
        family = _metric_name(name, prefix)
        _family_header(lines, family, "summary", name)
        if histogram.count:
            for quantile in (0.5, 0.95, 0.99):
                value = histogram.percentile(quantile * 100.0)
                lines.append(
                    f'{family}{{quantile="{quantile}"}} {_format_value(value)}'
                )
        lines.append(f"{family}_sum {_format_value(histogram.total)}")
        lines.append(f"{family}_count {histogram.count}")

    for group in _STAT_GROUPS:
        for field, value in getattr(hub, group).snapshot().items():
            family = _metric_name(f"{group}_{field}", prefix)
            _family_header(lines, family, "counter", f"{group}.{field}")
            lines.append(f"{family} {_format_value(value)}")

    return "\n".join(lines) + "\n"


def write_jsonl(hub: MetricsHub, path: str) -> int:
    """Convenience wrapper: :func:`dump_jsonl` to a file path."""
    with open(path, "w", encoding="utf-8") as stream:
        return dump_jsonl(hub, stream)


def read_jsonl(path: str) -> List[Dict]:
    """Convenience wrapper: :func:`load_jsonl` from a file path."""
    with open(path, "r", encoding="utf-8") as stream:
        return load_jsonl(stream)
