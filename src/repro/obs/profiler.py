"""Section timers for benchmarks: wall-clock, CPU and simulated time.

The benchmark harness wraps its phases (setup / publish / drain) in
:meth:`Profiler.section` so ``BENCH_core.json`` carries per-phase timings
instead of a single opaque wall number.  Each section accumulates, so a
phase entered in a loop reports its total.

Every section also measures process CPU time (:func:`time.process_time`)
alongside wall time, so overhead claims can separate compute from I/O
wait: a phase whose wall greatly exceeds its CPU was waiting on sockets
or sleeps, not burning cycles.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, Optional


class Profiler:
    """Named section timers over wall, CPU and an optional sim clock.

    Args:
        wall_clock: returns wall seconds (defaults to
            :func:`time.perf_counter`).
        sim_clock: returns simulated seconds (e.g. ``lambda: sim.now``);
            when omitted every section reports ``sim == 0.0``.
        cpu_clock: returns process CPU seconds (defaults to
            :func:`time.process_time`).
    """

    def __init__(
        self,
        wall_clock: Callable[[], float] = time.perf_counter,
        sim_clock: Optional[Callable[[], float]] = None,
        cpu_clock: Callable[[], float] = time.process_time,
    ) -> None:
        self._wall_clock = wall_clock
        self._sim_clock = sim_clock
        self._cpu_clock = cpu_clock
        self._sections: Dict[str, Dict[str, float]] = {}

    @contextmanager
    def section(self, name: str) -> Iterator[None]:
        """Time the enclosed block under ``name`` (accumulates on re-entry)."""
        wall_start = self._wall_clock()
        cpu_start = self._cpu_clock()
        sim_start = self._sim_clock() if self._sim_clock is not None else 0.0
        try:
            yield
        finally:
            wall = self._wall_clock() - wall_start
            cpu = self._cpu_clock() - cpu_start
            sim = (
                self._sim_clock() - sim_start
                if self._sim_clock is not None
                else 0.0
            )
            self.record(name, wall, sim, cpu=cpu)

    def record(self, name: str, wall: float, sim: float = 0.0, cpu: float = 0.0) -> None:
        """Add one measurement to section ``name``."""
        entry = self._sections.setdefault(
            name, {"wall_s": 0.0, "sim_s": 0.0, "cpu_s": 0.0, "count": 0}
        )
        entry["wall_s"] += wall
        entry["sim_s"] += sim
        entry["cpu_s"] += cpu
        entry["count"] += 1

    def report(self) -> Dict[str, Dict[str, float]]:
        """``{section: {wall_s, cpu_s, sim_s, count}}`` with rounded walls."""
        return {
            name: {
                "wall_s": round(entry["wall_s"], 6),
                "cpu_s": round(entry["cpu_s"], 6),
                "sim_s": round(entry["sim_s"], 6),
                "count": int(entry["count"]),
            }
            for name, entry in self._sections.items()
        }

    def reset(self) -> None:
        """Drop every section."""
        self._sections.clear()

    def __repr__(self) -> str:
        return f"Profiler(sections={len(self._sections)})"
