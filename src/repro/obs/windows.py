"""Rolling time-window rollups and SLO burn-rate alerting.

The hub's counters and histograms are cumulative -- perfect for totals,
useless for "what is happening *now*".  This module adds the live layer:

* :class:`RollingWindow` -- a bucketed rolling window over a numeric
  stream.  Buckets are keyed by absolute bucket index (``int(t // width)``)
  so two windows merge bucket-wise like counters do: commutative,
  associative, order-independent -- exactly the property the sharded
  simulator's hub merge needs.
* :class:`WindowRollup` -- per-tick deltas of named hub counters recorded
  into rolling windows, yielding per-second rates.
* :func:`burn_rate` / :class:`SloBurnMonitor` -- error-budget burn against
  the delivery SLO the AdaptiveController defends, with a
  fire/clear-hysteresis :class:`Alert` timeline kept on the hub.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Tuple

__all__ = [
    "Alert",
    "RollingWindow",
    "SloBurnMonitor",
    "WindowRollup",
    "burn_rate",
    "recent_delivery_fraction",
]


class RollingWindow:
    """A rolling time window of value observations, bucketed by wall slots.

    Only the most recent ``buckets`` slots are retained; older ones are
    pruned as new observations arrive.  All reads are relative to the
    newest populated slot, so a merged window (union of two nodes' slots)
    reads the same regardless of merge order.
    """

    __slots__ = ("width", "buckets", "_slots")

    def __init__(self, width: float = 1.0, buckets: int = 60) -> None:
        if width <= 0:
            raise ValueError(f"window bucket width must be positive: {width!r}")
        if buckets < 1:
            raise ValueError(f"window bucket count must be >= 1: {buckets!r}")
        self.width = width
        self.buckets = buckets
        # slot index -> [value_sum, observation_count]
        self._slots: Dict[int, List[float]] = {}

    @property
    def span(self) -> float:
        """Seconds of history the window covers."""
        return self.width * self.buckets

    def observe(self, now: float, value: float) -> None:
        """Record ``value`` into the slot covering time ``now``."""
        index = int(now // self.width)
        slot = self._slots.get(index)
        if slot is None:
            self._slots[index] = [float(value), 1]
            self._prune(index)
        else:
            slot[0] += value
            slot[1] += 1

    def _prune(self, latest: int) -> None:
        floor = latest - self.buckets + 1
        if len(self._slots) > self.buckets:
            for index in [i for i in self._slots if i < floor]:
                del self._slots[index]

    def _live_slots(self) -> Iterable[List[float]]:
        if not self._slots:
            return ()
        floor = max(self._slots) - self.buckets + 1
        return (slot for index, slot in self._slots.items() if index >= floor)

    def total(self) -> float:
        """Sum of values across the retained window."""
        return sum(slot[0] for slot in self._live_slots())

    def count(self) -> int:
        """Number of observations across the retained window."""
        return sum(int(slot[1]) for slot in self._live_slots())

    def mean(self) -> Optional[float]:
        """Mean observed value, or ``None`` for an empty window."""
        total = 0.0
        count = 0
        for slot in self._live_slots():
            total += slot[0]
            count += int(slot[1])
        return total / count if count else None

    def rate(self) -> float:
        """Value-sum per second over the window's full span."""
        return self.total() / self.span

    # -- snapshot / merge (the sharded hub-merge contract) ------------------

    def snapshot_state(self) -> Dict[str, Any]:
        return {
            "width": self.width,
            "buckets": self.buckets,
            "slots": {index: list(slot) for index, slot in self._slots.items()},
        }

    def merge_state(self, state: Dict[str, Any]) -> None:
        """Fold another window's slots in, bucket-wise (sum + sum)."""
        for index, (value_sum, count) in state.get("slots", {}).items():
            index = int(index)
            slot = self._slots.get(index)
            if slot is None:
                self._slots[index] = [float(value_sum), int(count)]
            else:
                slot[0] += value_sum
                slot[1] += int(count)
        if self._slots:
            self._prune(max(self._slots))

    def reset(self) -> None:
        self._slots.clear()


class WindowRollup:
    """Per-tick rollup of cumulative hub counters into rolling windows.

    Each :meth:`tick` records the delta of every tracked counter since the
    previous tick into a ``rate.<name>`` window on the hub, so readers get
    per-second rates over the recent past instead of lifetime totals.
    """

    def __init__(
        self,
        hub,
        names: Tuple[str, ...] = (
            "net.sent",
            "net.delivered",
            "gossip.publish",
            "gossip.fresh",
            "gossip.duplicate",
        ),
        width: float = 1.0,
        buckets: int = 60,
    ) -> None:
        self.hub = hub
        self.names = tuple(names)
        self._windows = {
            name: hub.window(f"rate.{name}", width=width, buckets=buckets)
            for name in self.names
        }
        self._last: Dict[str, float] = {}

    def tick(self, now: float) -> None:
        for name in self.names:
            value = self.hub.counter(name).value
            delta = value - self._last.get(name, 0.0)
            self._last[name] = value
            self._windows[name].observe(now, delta)

    def rates(self) -> Dict[str, float]:
        """Per-second rate of each tracked counter over its window."""
        return {name: window.rate() for name, window in self._windows.items()}


def burn_rate(failure_fraction: float, slo: float) -> float:
    """Error-budget burn: observed failure over the budget the SLO allows.

    1.0 means failures exactly consume the budget (e.g. 1% non-delivery
    against a 0.99 SLO); above 1.0 the budget is burning down.
    """
    budget = 1.0 - slo
    if budget <= 0:
        return 0.0 if failure_fraction <= 0 else float("inf")
    return max(0.0, failure_fraction) / budget


@dataclass(frozen=True)
class Alert:
    """One edge of the SLO alert timeline (fired or cleared)."""

    name: str
    state: str  # "firing" | "cleared"
    time: float
    burn: float
    slo: float
    window: float

    def to_value(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "state": self.state,
            "time": self.time,
            "burn": self.burn,
            "slo": self.slo,
            "window": self.window,
        }

    @classmethod
    def from_value(cls, value: Dict[str, Any]) -> "Alert":
        return cls(
            name=str(value["name"]),
            state=str(value["state"]),
            time=float(value["time"]),
            burn=float(value["burn"]),
            slo=float(value["slo"]),
            window=float(value["window"]),
        )


class SloBurnMonitor:
    """Windowed burn-rate watchdog over a delivery-fraction signal.

    Feed it one delivery-fraction sample per epoch (:meth:`record`); it
    keeps the failure fractions in a ``slo.<name>`` rolling window on the
    hub, computes the windowed burn rate, and appends fire/clear edges to
    ``hub.alerts``.  Hysteresis (fire at ``fire_threshold``, clear at the
    lower ``clear_threshold``) keeps a wobbling signal from flapping.
    """

    def __init__(
        self,
        hub,
        slo: float = 0.99,
        window: float = 30.0,
        buckets: int = 15,
        fire_threshold: float = 1.0,
        clear_threshold: float = 0.5,
        name: str = "delivery",
    ) -> None:
        self.hub = hub
        self.slo = slo
        self.name = name
        self.fire_threshold = fire_threshold
        self.clear_threshold = clear_threshold
        self.window = hub.window(
            f"slo.{name}", width=window / buckets, buckets=buckets
        )
        self.firing = False

    def record(self, now: float, delivered_fraction: float) -> float:
        """Record one epoch's delivery fraction; returns the current burn."""
        self.window.observe(now, max(0.0, 1.0 - delivered_fraction))
        burn = self.current_burn()
        if not self.firing and burn >= self.fire_threshold:
            self.firing = True
            self._edge("firing", now, burn)
        elif self.firing and burn <= self.clear_threshold:
            self.firing = False
            self._edge("cleared", now, burn)
        return burn

    def current_burn(self) -> float:
        mean_failure = self.window.mean()
        if mean_failure is None:
            return 0.0
        return burn_rate(mean_failure, self.slo)

    def _edge(self, state: str, now: float, burn: float) -> None:
        self.hub.alerts.append(
            Alert(
                name=f"slo.{self.name}",
                state=state,
                time=now,
                burn=burn,
                slo=self.slo,
                window=self.window.span,
            )
        )


def recent_delivery_fraction(
    hub,
    now: float,
    population: int,
    *,
    lookback: float,
    grace: float,
) -> Optional[float]:
    """Mean delivery fraction of rumors published in a recent window.

    Looks at tracer spans whose publish time falls in
    ``[now - grace - lookback, now - grace]`` -- the grace keeps rumors
    still mid-flight from reading as SLO misses.  Returns ``None`` when no
    rumor is old enough to judge (an idle group is not a failing group).
    """
    if population <= 1:
        return None
    others = population - 1
    newest = now - grace
    oldest = newest - lookback
    fractions = []
    for span in hub.tracer.spans():
        if oldest <= span.publish_time <= newest:
            fractions.append(min(1.0, span.delivered_count / others))
    if not fractions:
        return None
    return sum(fractions) / len(fractions)
