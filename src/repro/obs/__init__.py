"""Unified observability for the WS-Gossip reproduction.

One :class:`MetricsHub` per simulation scopes counters, gauges,
histograms, time series, the wire/batch/health/recovery stat groups and
the causal rumor tracer; hubs chain to the process-wide default hub so
aggregate reads keep working.  Exporters render a hub as JSONL or
Prometheus text; the :class:`Profiler` times benchmark phases.

See ``docs/OBSERVABILITY.md`` for the full tour.
"""

from repro.obs.export import (
    dump_jsonl,
    hub_snapshot,
    load_jsonl,
    prometheus_text,
    read_jsonl,
    write_jsonl,
)
from repro.obs.hub import (
    LabeledCounter,
    LabeledGauge,
    MetricsHub,
    NodeScope,
    current_hub,
    default_hub,
    hub_of,
    use_hub,
)
from repro.obs.profiler import Profiler
from repro.obs.tracing import RumorSpan, RumorTracer

__all__ = [
    "LabeledCounter",
    "LabeledGauge",
    "MetricsHub",
    "NodeScope",
    "Profiler",
    "RumorSpan",
    "RumorTracer",
    "current_hub",
    "default_hub",
    "dump_jsonl",
    "hub_of",
    "hub_snapshot",
    "load_jsonl",
    "prometheus_text",
    "read_jsonl",
    "use_hub",
    "write_jsonl",
]
