"""Human-readable observability reports (``repro obs report``).

Renders one :class:`~repro.obs.hub.MetricsHub` -- counters, the stat
groups, the rumor tracer's causal spans, rolling-window rates, the SLO
alert timeline, telemetry latency histograms, and the adaptive
controller's decision timeline -- as the operator-facing text the CLI
prints.  The numbers answer the paper's questions directly:
who got the rumor, in how many rounds, at what wire cost.

:func:`report_model` is the machine-readable twin (``repro obs report
--json``): the same facts as one JSON-serialisable dict with stable key
order, for scripts and dashboards.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.obs.hub import MetricsHub
from repro.obs.tracing import RumorSpan

#: Stat-group fields worth a line in the operator report (the full set
#: is in the JSONL/Prometheus exports; the report curates).
_GROUP_HIGHLIGHTS = {
    "wire": (
        "serialize_count",
        "serialize_reused",
        "parse_count",
        "parse_reused",
        "dedup_preparse_hits",
    ),
    "batch": (
        "batches_built",
        "batches_sent",
        "rumors_batched",
        "batches_received",
        "rumors_unpacked",
        "batches_skipped_preparse",
    ),
    "health": (
        "send_failures",
        "retries",
        "peers_suspected",
        "peers_restored",
        "breaker_opened",
        "fanout_boosts",
    ),
    "recovery": (
        "restarts",
        "replayed_messages",
        "catch_up_rounds",
        "catch_ups_completed",
    ),
    "control": (
        "epochs",
        "boosts",
        "shrinks",
        "escalations",
        "deescalations",
        "slo_breaches",
        "cooldown_holds",
        "ceiling_clamps",
        "pressure_reliefs",
    ),
    "overload": (
        "admitted",
        "shed_digests",
        "shed_feedback",
        "shed_pull",
        "shed_payloads",
        "publish_rejected",
        "edge_rejected",
        "retry_after_honored",
        "throttled",
        "pressure_highs",
    ),
}


def _decision_timeline(hub: MetricsHub, limit: int = 40) -> List[str]:
    """The adaptive controller's decisions, one line per epoch.

    Holds are compressed into ``... N holds ...`` runs so a long calm
    stretch does not drown the boosts/shrinks an operator diagnoses from.
    """
    decisions = hub.decisions
    if not decisions:
        return []
    lines = ["controller decisions"]
    rows: List[Tuple[str, str]] = []
    held = 0

    def flush_holds() -> None:
        nonlocal held
        if held:
            rows.append(("", f"... {held} hold epoch(s) ..."))
            held = 0

    interesting = [d for d in decisions if d.action != "hold"]
    budget = max(0, limit - len(interesting))
    for decision in decisions:
        if decision.action == "hold" and budget <= 0:
            held += 1
            continue
        if decision.action == "hold":
            budget -= 1
        flush_holds()
        signals = decision.signals
        delivery = (
            f"{signals.delivery:.3f}" if signals.delivery is not None else "-"
        )
        rows.append(
            (
                f"t={decision.time:.1f}s",
                f"{decision.action:<6} f={decision.fanout} r={decision.rounds} "
                f"{decision.style} batch={decision.max_batch_rumors} "
                f"delivery={delivery} ({'; '.join(decision.reasons)})",
            )
        )
    flush_holds()
    lines.extend(_format_rows(rows))
    return lines


def _format_rows(rows: List[Tuple[str, str]], indent: str = "  ") -> List[str]:
    if not rows:
        return []
    width = max(len(label) for label, _ in rows)
    return [f"{indent}{label:<{width}}  {value}" for label, value in rows]


def _span_section(span: RumorSpan, population: Optional[int]) -> List[str]:
    lines = [f"rumor {span.message_id} (origin {span.origin})"]
    rows: List[Tuple[str, str]] = []
    delivered = span.delivered_count
    if population is not None and population > 1:
        others = population - 1
        rows.append(
            ("delivered", f"{delivered}/{others} ({delivered / others:.1%})")
        )
    else:
        rows.append(("delivered", str(delivered)))
    rounds = span.rounds_of_deliveries()
    if rounds:
        rows.append(("rounds (max)", str(max(rounds))))
        if population is not None:
            r99 = span.rounds_to_fraction(0.99, population)
            rows.append(
                ("rounds to 99%", str(r99) if r99 is not None else "not reached")
            )
        curve = span.infection_curve()
        if curve:
            rows.append(
                ("infected over time",
                 " ".join(f"{count}@{time:.2f}s" for time, count in curve[-5:]))
            )
    lines.extend(_format_rows(rows))
    return lines


def per_node_deliveries(hub: MetricsHub) -> Dict[str, int]:
    """Delivery counts per node, from the tracer's spans."""
    return hub.tracer.deliveries_per_node()


def _window_section(hub: MetricsHub) -> List[str]:
    windows = hub.windows()
    if not windows:
        return []
    lines = ["rolling windows"]
    rows = [
        (
            name,
            f"{window.rate():.2f}/s "
            f"(total {window.total():g} over {window.span:g}s)",
        )
        for name, window in sorted(windows.items())
    ]
    lines.extend(_format_rows(rows))
    return lines


def _alert_section(hub: MetricsHub) -> List[str]:
    if not hub.alerts:
        return []
    lines = ["slo alerts"]
    rows = [
        (
            f"t={alert.time:.1f}s",
            f"{alert.name} {alert.state} burn={alert.burn:.2f} "
            f"(slo {alert.slo:g}, window {alert.window:g}s)",
        )
        for alert in hub.alerts
    ]
    lines.extend(_format_rows(rows))
    return lines


def _histogram_section(hub: MetricsHub) -> List[str]:
    histograms = {
        name: histogram
        for name, histogram in sorted(hub._histograms.items())
        if histogram.count
    }
    if not histograms:
        return []
    lines = ["latency histograms"]
    rows = [
        (
            name,
            f"p50={histogram.percentile(50):.2f} "
            f"p95={histogram.percentile(95):.2f} "
            f"p99={histogram.percentile(99):.2f} "
            f"max={histogram.max():.2f} (n={histogram.count})",
        )
        for name, histogram in histograms.items()
    ]
    lines.extend(_format_rows(rows))
    return lines


def _profiler_section(profile: Dict[str, Dict[str, float]]) -> List[str]:
    if not profile:
        return []
    lines = ["profiler phases"]
    rows = [
        (
            name,
            f"wall={timing.get('wall_s', 0.0):.3f}s "
            f"cpu={timing.get('cpu_s', 0.0):.3f}s "
            f"sim={timing.get('sim_s', 0.0):.3f}s "
            f"(x{int(timing.get('count', 0))})",
        )
        for name, timing in sorted(profile.items())
    ]
    lines.extend(_format_rows(rows))
    return lines


def render_report(
    hub: MetricsHub,
    population: Optional[int] = None,
    title: str = "observability report",
    profile: Optional[Dict[str, Dict[str, float]]] = None,
) -> str:
    """Render ``hub`` as the operator-facing text report.

    Sections: per-rumor causal spans (delivery fraction, rounds-to-99%,
    infection curve tail), per-node delivery counts, the highlighted
    wire / batch / health / recovery / control stat-group fields,
    rolling-window rates and the SLO alert timeline (when telemetry
    ran), latency histograms, the adaptive controller's decision
    timeline, and -- when a :class:`~repro.obs.profiler.Profiler` report
    is passed via ``profile`` -- per-phase wall/CPU/sim timings.
    """
    lines = [title, "=" * len(title)]

    spans = hub.tracer.spans()
    if spans:
        lines.append("")
        for span in spans:
            lines.extend(_span_section(span, population))
        per_node = per_node_deliveries(hub)
        if per_node:
            lines.append("")
            lines.append("deliveries per node")
            lines.extend(
                _format_rows(
                    [(node, str(count)) for node, count in sorted(per_node.items())]
                )
            )
    else:
        lines.append("")
        lines.append("no rumors traced (rumor_tracing disabled or nothing published)")

    counters = hub.counters()
    wire_rows = [
        (name, str(counters[name]))
        for name in ("net.sent", "net.bytes", "net.delivered", "net.dropped")
        if name in counters
    ]
    if wire_rows:
        lines.append("")
        lines.append("network")
        lines.extend(_format_rows(wire_rows))

    for group_name, fields in _GROUP_HIGHLIGHTS.items():
        group = getattr(hub, group_name)
        rows = [(field, str(getattr(group, field))) for field in fields]
        if any(value != "0" for _, value in rows):
            lines.append("")
            lines.append(group_name)
            lines.extend(_format_rows(rows))

    for section in (
        _window_section(hub),
        _alert_section(hub),
        _histogram_section(hub),
    ):
        if section:
            lines.append("")
            lines.extend(section)

    timeline = _decision_timeline(hub)
    if timeline:
        lines.append("")
        lines.extend(timeline)

    profiler_lines = _profiler_section(profile or {})
    if profiler_lines:
        lines.append("")
        lines.extend(profiler_lines)

    lines.append("")
    return "\n".join(lines)


def _span_model(span: RumorSpan, population: Optional[int]) -> Dict[str, Any]:
    rounds = span.rounds_of_deliveries()
    model: Dict[str, Any] = {
        "message_id": span.message_id,
        "origin": span.origin,
        "published_at": span.publish_time,
        "delivered": span.delivered_count,
        "rounds_max": max(rounds) if rounds else 0,
        "infection_curve": [
            [time, count] for time, count in span.infection_curve()
        ],
    }
    if population is not None and population > 1:
        model["delivered_fraction"] = min(
            1.0, span.delivered_count / (population - 1)
        )
        model["rounds_to_99"] = span.rounds_to_fraction(0.99, population)
    return model


def report_model(
    hub: MetricsHub,
    population: Optional[int] = None,
    profile: Optional[Dict[str, Dict[str, float]]] = None,
) -> Dict[str, Any]:
    """The report as one JSON-serialisable dict (``repro obs report --json``).

    Same facts as :func:`render_report`, uncurated: every counter and
    stat-group field, per-rumor span analysis, rolling-window rates, the
    SLO alert timeline, histogram summaries, controller decisions, and
    the optional profiler phases.  Serialise with ``sort_keys=True`` for
    stable output.
    """
    from repro.obs.export import _histogram_summary

    model: Dict[str, Any] = {
        "population": population,
        "rumors": [
            _span_model(span, population) for span in hub.tracer.spans()
        ],
        "deliveries_per_node": per_node_deliveries(hub),
        "counters": hub.counters(),
        "gauges": hub.gauges(),
        "groups": {
            group: getattr(hub, group).snapshot()
            for group in _GROUP_HIGHLIGHTS
        },
        "histograms": {
            name: _histogram_summary(histogram)
            for name, histogram in hub._histograms.items()
        },
        "windows": {
            name: {
                "rate": window.rate(),
                "total": window.total(),
                "count": window.count(),
                "span": window.span,
            }
            for name, window in hub.windows().items()
        },
        "alerts": [alert.to_value() for alert in hub.alerts],
        "decisions": [decision.to_value() for decision in hub.decisions],
        "profile": profile or {},
    }
    return model


def run_seeded_report(
    nodes: int = 50,
    consumers: int = 10,
    seed: int = 7,
    style: str = "push",
    fanout: int = 4,
    rounds: int = 7,
    duration: float = 10.0,
    value: Any = None,
    shards: int = 1,
    telemetry: Any = None,
) -> Tuple[Any, str]:
    """One seeded dissemination plus its rendered report.

    Shared by ``repro obs report`` and ``examples/observability_report.py``:
    builds a :class:`~repro.core.api.GossipGroup` (or, with ``shards > 1``,
    a :class:`~repro.core.shard.ShardedGossipGroup` whose K worker hubs are
    merged for the report -- see
    :meth:`~repro.obs.hub.MetricsHub.merge_snapshot`), publishes one rumor,
    runs ``duration`` simulated seconds, and returns ``(group, text)``.
    Sharded groups should be ``close()``d by the caller.
    """
    from repro.core.api import GossipConfig

    config = GossipConfig(
        n_disseminators=nodes - consumers - 1,
        n_consumers=consumers,
        seed=seed,
        params={"style": style, "fanout": fanout, "rounds": rounds},
        auto_tune=False,
        shards=shards,
        telemetry=telemetry,
    )
    group = config.build()
    group.setup()
    group.publish(value if value is not None else {"report": True})
    group.run_for(duration)
    shard_note = f", {shards} shards merged" if shards > 1 else ""
    text = render_report(
        group.hub,
        population=group.population,
        title=(
            f"observability report (n={group.population}, seed={seed}, "
            f"{style}{shard_note})"
        ),
    )
    return group, text
