"""The metrics hub: per-simulation, label-aware metric scoping.

A :class:`MetricsHub` is a :class:`~repro.simnet.metrics.MetricsRegistry`
that additionally owns the wire/batch/health/recovery/control stat groups, a
:class:`~repro.obs.tracing.RumorTracer`, labelled per-node counter views
(:class:`NodeScope`), and gauges.  Every :class:`~repro.simnet.network.Network`
(and therefore every :class:`~repro.core.api.GossipGroup` /
:class:`~repro.core.decentralized.DecentralizedGroup`) gets its own hub, so
two simulations in one process never share metric state.

Hubs chain to the process-wide **default hub**: a child hub's stat-group
writes propagate their deltas upward (see
:class:`~repro.simnet.metrics.StatGroup`), which is what keeps the
deprecated ``WIRE_STATS``-style aliases -- now bound to the default hub --
reporting process-wide aggregates.

Call sites that have no handle on a hub (the :mod:`repro.soap.envelope`
codec, deep inside ``to_bytes``/``from_bytes``) use :func:`current_hub`,
a thread-local stack pushed by :func:`use_hub`;
:meth:`~repro.core.api.GossipGroup.run_for` wraps the simulation in it so
wire-path costs land on the group's hub.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Dict, Iterator, Optional, Tuple

from repro.simnet.metrics import (
    BatchStats,
    ControlStats,
    Counter,
    Gauge,
    HealthStats,
    MetricsRegistry,
    OverloadStats,
    RecoveryStats,
    WireStats,
)
from repro.obs.tracing import RumorTracer
from repro.obs.windows import Alert, RollingWindow

#: A label set in canonical form: sorted ``(key, value)`` pairs.
LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, str]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class LabeledCounter(Counter):
    """A counter carrying a label set, aggregating into its unlabelled twin.

    Incrementing a labelled counter also bumps the hub's plain counter of
    the same name, so existing group-level reads
    (``hub.counter("soap.sent").value``) keep seeing the whole-simulation
    total while per-node values stay attributable.
    """

    __slots__ = ("labels", "_aggregate")

    def __init__(self, name: str, labels: LabelKey, aggregate: Counter) -> None:
        super().__init__(name)
        self.labels = labels
        self._aggregate = aggregate

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter increments must be non-negative: {amount!r}")
        self.value += amount
        self._aggregate.value += amount

    def __repr__(self) -> str:
        rendered = ",".join(f"{k}={v}" for k, v in self.labels)
        return f"LabeledCounter({self.name!r}, {{{rendered}}}, value={self.value})"


class LabeledGauge(Gauge):
    """A gauge carrying a label set (no aggregation -- sums of gauges lie)."""

    __slots__ = ("labels",)

    def __init__(self, name: str, labels: LabelKey) -> None:
        super().__init__(name)
        self.labels = labels

    def __repr__(self) -> str:
        rendered = ",".join(f"{k}={v}" for k, v in self.labels)
        return f"LabeledGauge({self.name!r}, {{{rendered}}}, value={self.value})"


class MetricsHub(MetricsRegistry):
    """A registry plus stat groups, labels, node scopes and a rumor tracer.

    Args:
        parent: hub to chain stat-group deltas into (normally the default
            hub); ``None`` for a detached root hub.
        name: optional human label used by exporters.
    """

    def __init__(self, parent: Optional["MetricsHub"] = None, name: str = "") -> None:
        super().__init__()
        self.parent = parent
        self.name = name
        self.wire = WireStats(parent=parent.wire if parent else None)
        self.batch = BatchStats(parent=parent.batch if parent else None)
        self.health = HealthStats(parent=parent.health if parent else None)
        self.recovery = RecoveryStats(parent=parent.recovery if parent else None)
        self.control = ControlStats(parent=parent.control if parent else None)
        self.overload = OverloadStats(parent=parent.overload if parent else None)
        self.tracer = RumorTracer()
        #: Adaptive-controller decision timeline: ControlDecision records
        #: appended by :class:`repro.core.control.AdaptiveController`.
        self.decisions = []
        #: SLO alert timeline: :class:`repro.obs.windows.Alert` edges
        #: appended by :class:`repro.obs.windows.SloBurnMonitor`.
        self.alerts = []
        #: Rolling time windows by name (see :meth:`window`).
        self._windows: Dict[str, "RollingWindow"] = {}
        self._labeled_counters: Dict[Tuple[str, LabelKey], LabeledCounter] = {}
        self._labeled_gauges: Dict[Tuple[str, LabelKey], LabeledGauge] = {}
        self._nodes: Dict[str, "NodeScope"] = {}

    # -- labelled metrics ---------------------------------------------------

    def labeled_counter(self, name: str, labels: Dict[str, str]) -> LabeledCounter:
        """The counter ``name{labels}`` (created on first use).

        Its increments also feed the unlabelled :meth:`counter` of the
        same name.
        """
        key = (name, _label_key(labels))
        existing = self._labeled_counters.get(key)
        if existing is None:
            existing = LabeledCounter(name, key[1], self.counter(name))
            self._labeled_counters[key] = existing
        return existing

    def labeled_gauge(self, name: str, labels: Dict[str, str]) -> LabeledGauge:
        """The gauge ``name{labels}`` (created on first use)."""
        key = (name, _label_key(labels))
        existing = self._labeled_gauges.get(key)
        if existing is None:
            existing = LabeledGauge(name, key[1])
            self._labeled_gauges[key] = existing
        return existing

    def labeled_counters(self) -> Dict[Tuple[str, LabelKey], int]:
        """Snapshot of every labelled counter value."""
        return {key: c.value for key, c in self._labeled_counters.items()}

    def labeled_gauges(self) -> Dict[Tuple[str, LabelKey], float]:
        """Snapshot of every labelled gauge value."""
        return {key: g.value for key, g in self._labeled_gauges.items()}

    # -- rolling windows ----------------------------------------------------

    def window(
        self, name: str, width: float = 1.0, buckets: int = 60
    ) -> RollingWindow:
        """The rolling window ``name`` (created on first use).

        ``width``/``buckets`` only shape a window at creation; later calls
        return the existing window unchanged, mirroring how counters bind.
        """
        existing = self._windows.get(name)
        if existing is None:
            existing = RollingWindow(width=width, buckets=buckets)
            self._windows[name] = existing
        return existing

    def windows(self) -> Dict[str, RollingWindow]:
        """Every rolling window registered so far, by name."""
        return dict(self._windows)

    # -- node scoping -------------------------------------------------------

    def node(self, node_name: str) -> "NodeScope":
        """A per-node view of this hub (cached per name).

        Counters created through the scope carry a ``node`` label and
        aggregate into the hub's unlabelled counters.
        """
        scope = self._nodes.get(node_name)
        if scope is None:
            scope = NodeScope(self, node_name)
            self._nodes[node_name] = scope
        return scope

    def node_names(self) -> Tuple[str, ...]:
        """Names of every node scope handed out so far."""
        return tuple(self._nodes)

    # -- snapshot / merge (sharded simulation) -------------------------------

    def snapshot_state(self) -> Dict:
        """This hub's metric state as one plain, picklable dict.

        The inverse is :meth:`merge_snapshot`; together they let a sharded
        run ship each worker's hub over a pipe and aggregate K of them in
        the parent (``repro obs report --shards``).
        """
        return {
            "name": self.name,
            "counters": {n: c.value for n, c in self._counters.items()},
            "gauges": {n: g.value for n, g in self._gauges.items()},
            "histograms": {n: h.values() for n, h in self._histograms.items()},
            "series": {n: s.samples() for n, s in self._series.items()},
            "groups": {
                group: getattr(self, group).snapshot()
                for group in ("wire", "batch", "health", "recovery", "control", "overload")
            },
            "labeled_counters": [
                (name, labels, counter.value)
                for (name, labels), counter in self._labeled_counters.items()
            ],
            "labeled_gauges": [
                (name, labels, gauge.value)
                for (name, labels), gauge in self._labeled_gauges.items()
            ],
            "spans": [
                {
                    "message_id": span.message_id,
                    "origin": span.origin,
                    "publish_time": span.publish_time,
                    "budget": span.budget,
                    "deliveries": list(span.deliveries),
                    "forwards": list(span.forwards),
                }
                for span in self.tracer.spans()
            ],
            "windows": {
                name: window.snapshot_state()
                for name, window in self._windows.items()
            },
            "alerts": [alert.to_value() for alert in self.alerts],
        }

    def merge_snapshot(self, state: Dict) -> None:
        """Fold one :meth:`snapshot_state` into this hub.

        Merge rules (asserted by ``tests/obs/test_merge.py``):

        * **counters** (plain and labelled) sum -- merging K shard hubs
          yields the totals a single-hub run of the same traffic would
          have counted.  Labelled counters are merged by direct value
          add, *not* ``inc()``, which would double-count through the
          unlabelled aggregate (itself merged as a plain counter).
        * **gauges** (plain and labelled) take the max: gauges are
          point-in-time levels, sums of them lie, and max is
          merge-order independent.
        * **histograms** keep raw samples, so the merge concatenates
          them -- the exact-percentile analogue of bucket-wise addition.
        * **time series** are merge-sorted by timestamp.
        * **stat groups** add field-wise (they are all monotone counters);
          deltas propagate up the parent chain as normal writes do.
        * **tracer spans** are replayed hop-by-hop: publish hops claim the
          origin, deliveries keep first-arrival-per-node semantics.
        * **rolling windows** merge bucket-wise (slot sums add), so a
          merged window reads like one window that saw all the traffic.
        * **alerts** are merge-sorted by edge time.
        """
        for name, value in state["counters"].items():
            self.counter(name).value += value
        for name, value in state["gauges"].items():
            gauge = self.gauge(name)
            gauge.value = max(gauge.value, value)
        for name, values in state["histograms"].items():
            histogram = self.histogram(name)
            for value in values:
                histogram.observe(value)
        for name, samples in state["series"].items():
            series = self.series(name)
            merged = sorted(series.samples() + [tuple(s) for s in samples])
            series.clear()
            for time, value in merged:
                series.record(time, value)
        for group_name, snapshot in state["groups"].items():
            group = getattr(self, group_name)
            for field, value in snapshot.items():
                setattr(group, field, getattr(group, field) + value)
        for name, labels, value in state["labeled_counters"]:
            key = (name, tuple(tuple(pair) for pair in labels))
            existing = self._labeled_counters.get(key)
            if existing is None:
                existing = LabeledCounter(name, key[1], self.counter(name))
                self._labeled_counters[key] = existing
            existing.value += value
        for name, labels, value in state["labeled_gauges"]:
            key = (name, tuple(tuple(pair) for pair in labels))
            existing = self._labeled_gauges.get(key)
            if existing is None:
                existing = LabeledGauge(name, key[1])
                self._labeled_gauges[key] = existing
            existing.value = max(existing.value, value)
        for span_state in state.get("spans", ()):
            message_id = span_state["message_id"]
            if span_state["origin"] is not None:
                self.tracer.on_publish(
                    message_id,
                    span_state["origin"],
                    span_state["publish_time"] or 0.0,
                    span_state["budget"] or 0,
                )
            for time, node, hops_left in sorted(span_state["deliveries"]):
                self.tracer.on_deliver(message_id, node, time, hops_left)
            for time, node, targets in span_state["forwards"]:
                self.tracer.on_forward(message_id, node, time, targets)
        for name, window_state in state.get("windows", {}).items():
            window = self.window(
                name,
                width=window_state.get("width", 1.0),
                buckets=window_state.get("buckets", 60),
            )
            window.merge_state(window_state)
        if state.get("alerts"):
            merged_alerts = sorted(
                self.alerts + [Alert.from_value(a) for a in state["alerts"]],
                key=lambda alert: (alert.time, alert.name, alert.state),
            )
            self.alerts[:] = merged_alerts

    @classmethod
    def merged(
        cls, states, parent: Optional["MetricsHub"] = None, name: str = "merged"
    ) -> "MetricsHub":
        """A fresh hub with every snapshot in ``states`` folded in."""
        hub = cls(parent=parent, name=name)
        for state in states:
            hub.merge_snapshot(state)
        return hub

    # -- lifecycle ----------------------------------------------------------

    def reset(self) -> None:
        """Zero every metric *in place* (bound metric objects stay valid).

        Stat-group resets do not propagate deltas to the parent chain; a
        child hub resetting must not erase upstream history.
        """
        self.wire.reset()
        self.batch.reset()
        self.health.reset()
        self.recovery.reset()
        self.control.reset()
        self.overload.reset()
        self.tracer.reset()
        self.decisions.clear()
        self.alerts.clear()
        for window in self._windows.values():
            window.reset()
        for counter in self._counters.values():
            counter.value = 0
        for gauge in self._gauges.values():
            gauge.value = 0.0
        for histogram in self._histograms.values():
            histogram.clear()
        for series in self._series.values():
            series.clear()
        for labeled in self._labeled_counters.values():
            labeled.value = 0
        for labeled in self._labeled_gauges.values():
            labeled.value = 0.0

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return (
            f"MetricsHub({label and label.strip()} counters={len(self._counters)}, "
            f"labeled={len(self._labeled_counters)}, nodes={len(self._nodes)})"
        )


class NodeScope:
    """A node's view of a hub: the registry protocol with a ``node`` label.

    Quacks like :class:`~repro.simnet.metrics.MetricsRegistry` for the
    operations production code uses (``counter``/``gauge``/``histogram``/
    ``series``/``counters``), so a :class:`~repro.soap.runtime.SoapRuntime`
    can take one as its ``metrics`` sink unchanged.
    """

    __slots__ = ("hub", "node_name")

    def __init__(self, hub: MetricsHub, node_name: str) -> None:
        self.hub = hub
        self.node_name = node_name

    def counter(self, name: str) -> LabeledCounter:
        return self.hub.labeled_counter(name, {"node": self.node_name})

    def gauge(self, name: str) -> LabeledGauge:
        return self.hub.labeled_gauge(name, {"node": self.node_name})

    def histogram(self, name: str):
        # Histograms stay hub-wide: per-node latency populations are too
        # small to be worth the memory, and nothing reads them per node.
        return self.hub.histogram(name)

    def series(self, name: str):
        return self.hub.series(name)

    def counters(self) -> Dict[str, int]:
        """Snapshot of this node's labelled counter values."""
        key = (("node", self.node_name),)
        return {
            name: counter.value
            for (name, labels), counter in self.hub._labeled_counters.items()
            if labels == key
        }

    def __repr__(self) -> str:
        return f"NodeScope({self.node_name!r} -> {self.hub!r})"


# -- the default hub and the thread-local current hub -------------------------

_DEFAULT_HUB: Optional[MetricsHub] = None
_DEFAULT_LOCK = threading.Lock()


def default_hub() -> MetricsHub:
    """The process-wide root hub (created on first use).

    Per-simulation hubs chain to it, and the deprecated ``*_STATS`` module
    aliases resolve to its stat groups.
    """
    global _DEFAULT_HUB
    if _DEFAULT_HUB is None:
        with _DEFAULT_LOCK:
            if _DEFAULT_HUB is None:
                _DEFAULT_HUB = MetricsHub(parent=None, name="default")
    return _DEFAULT_HUB


class _HubStack(threading.local):
    def __init__(self) -> None:
        self.stack = []


_CURRENT = _HubStack()


def current_hub() -> MetricsHub:
    """The innermost hub pushed by :func:`use_hub`, else the default hub."""
    stack = _CURRENT.stack
    return stack[-1] if stack else default_hub()


@contextmanager
def use_hub(hub: MetricsHub) -> Iterator[MetricsHub]:
    """Make ``hub`` the :func:`current_hub` for the dynamic extent.

    The envelope codec has no argument path to a hub, so simulation entry
    points (``GossipGroup.run_for``/``publish``) wrap themselves in this.
    """
    _CURRENT.stack.append(hub)
    try:
        yield hub
    finally:
        _CURRENT.stack.pop()


def hub_of(metrics) -> MetricsHub:
    """Resolve the hub behind any metrics sink a component was handed.

    A :class:`MetricsHub` is itself; a :class:`NodeScope` unwraps to its
    hub; anything else (a plain registry, ``None``) falls back to the
    default hub -- the pre-hub behaviour.
    """
    if isinstance(metrics, MetricsHub):
        return metrics
    if isinstance(metrics, NodeScope):
        return metrics.hub
    return default_hub()
