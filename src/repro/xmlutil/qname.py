"""Qualified-name helpers in ElementTree's ``{namespace}local`` convention."""

from __future__ import annotations

from typing import NamedTuple, Optional


class QName(NamedTuple):
    """A namespace / local-name pair."""

    namespace: Optional[str]
    local: str

    @property
    def text(self) -> str:
        """The ElementTree tag form, ``{ns}local`` or bare ``local``."""
        if self.namespace:
            return f"{{{self.namespace}}}{self.local}"
        return self.local

    @classmethod
    def parse(cls, tag: str) -> "QName":
        """Parse an ElementTree tag back into its parts."""
        if tag.startswith("{"):
            namespace, _, local = tag[1:].partition("}")
            return cls(namespace, local)
        return cls(None, tag)

    def __str__(self) -> str:
        return self.text


def qname(namespace: Optional[str], local: str) -> str:
    """Build an ElementTree tag string."""
    return QName(namespace, local).text


def local_name(tag: str) -> str:
    """Local part of an ElementTree tag."""
    return QName.parse(tag).local


def namespace_of(tag: str) -> Optional[str]:
    """Namespace URI of an ElementTree tag, or ``None``."""
    return QName.parse(tag).namespace
