"""Serialization helpers on top of :mod:`xml.etree.ElementTree`."""

from __future__ import annotations

import io
import xml.etree.ElementTree as ET


class XmlParseError(ValueError):
    """Raised when bytes do not parse as well-formed XML."""


def parse_bytes(data: bytes) -> ET.Element:
    """Parse ``data`` into an element tree root.

    Raises:
        XmlParseError: on malformed input (wraps the ElementTree error so
        callers need not depend on its exception type).
    """
    try:
        return ET.fromstring(data)
    except ET.ParseError as exc:
        raise XmlParseError(f"malformed XML: {exc}") from exc


def canonical_bytes(element: ET.Element) -> bytes:
    """Serialize an element to UTF-8 bytes with an XML declaration.

    Not full C14N -- namespace prefixes are whatever ElementTree assigns --
    but stable for a given tree, which is all the stack needs.
    """
    buffer = io.BytesIO()
    ET.ElementTree(element).write(buffer, encoding="utf-8", xml_declaration=True)
    return buffer.getvalue()


def indent(element: ET.Element, level: int = 0) -> ET.Element:
    """In-place pretty-print indentation (for logs and examples)."""
    pad = "\n" + "  " * level
    children = list(element)
    if children:
        if not element.text or not element.text.strip():
            element.text = pad + "  "
        for child in children:
            indent(child, level + 1)
            if not child.tail or not child.tail.strip():
                child.tail = pad + "  "
        if not children[-1].tail or not children[-1].tail.strip():
            children[-1].tail = pad
    return element
