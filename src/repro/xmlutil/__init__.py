"""Small XML helpers shared by the SOAP stack."""

from repro.xmlutil.qname import QName, local_name, namespace_of, qname
from repro.xmlutil.text import canonical_bytes, indent, parse_bytes

__all__ = [
    "QName",
    "canonical_bytes",
    "indent",
    "local_name",
    "namespace_of",
    "parse_bytes",
    "qname",
]
