"""Command-line interface: quick demos without writing any code.

Usage::

    python -m repro demo            # 50-service dissemination, stats
    python -m repro figure1         # the paper's Figure 1, as executed
    python -m repro styles          # compare the gossip styles
    python -m repro analyze 1000    # fanout/rounds the coordinator picks
    python -m repro describe        # WSDL summary of a gossip node
    python -m repro obs report      # observability report of a seeded run
    python -m repro obs top --once  # poll a live node's /v1/obs/* models
    python -m repro soak            # short live-socket mesh run
    python -m repro bench --shards 4  # timed burst run, sharded simulator
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core.analysis import (
    atomic_delivery_probability,
    expected_rounds,
    fanout_for_atomicity,
)
from repro.core.api import GossipConfig


def _cmd_demo(args: argparse.Namespace) -> int:
    group = GossipConfig(
        n_disseminators=args.nodes - args.consumers - 1,
        n_consumers=args.consumers,
        seed=args.seed,
        params={"fanout": args.fanout, "rounds": args.rounds},
    ).build()
    activity_id = group.setup()
    print(f"activity: {activity_id}")
    message_id = group.publish({"demo": True})
    group.run_for(10.0)
    times = group.delivery_times(message_id)
    counts = group.message_counts()
    print(f"population: {group.population} endpoints "
          f"({args.consumers} unchanged consumers)")
    print(f"delivered: {group.delivered_fraction(message_id):.1%} "
          f"(atomic: {group.is_atomic(message_id)})")
    if times:
        print(f"spread completed in {max(times) - min(times):.4f}s of "
              "simulated time")
    print(f"wire messages: {counts.get('net.sent', 0)}")
    return 0


def _cmd_figure1(args: argparse.Namespace) -> int:
    from repro.core.roles import (
        ConsumerNode,
        CoordinatorNode,
        DisseminatorNode,
        InitiatorNode,
    )
    from repro.simnet.events import Simulator
    from repro.simnet.latency import FixedLatency
    from repro.simnet.network import Network
    from repro.simnet.seqdiag import render_sequence
    from repro.simnet.trace import TraceLog

    sim = Simulator(seed=args.seed)
    trace = TraceLog(enabled=True)
    network = Network(sim, latency=FixedLatency(0.002), trace=trace)
    coordinator = CoordinatorNode("coordinator", network, auto_tune=False)
    app0b = InitiatorNode("app0b", network)
    app1 = DisseminatorNode("app1", network)
    app2 = DisseminatorNode("app2", network)
    app3 = ConsumerNode("app3", network)
    action = "urn:stock/op"
    for node in (coordinator, app0b, app1, app2, app3):
        node.start()
    for node in (app0b, app1, app2, app3):
        node.bind(action)

    engines: List = []
    app0b.activate(
        coordinator.activation_address,
        parameters={"fanout": 2, "rounds": 3},
        on_ready=engines.append,
    )
    sim.run_until(1.0)
    activity_id = engines[0].activity_id
    for node in (app1, app2, app3):
        node.subscribe(coordinator.subscription_address, activity_id)
    sim.run_until(2.0)
    engines[0].refresh_view()
    sim.run_until(3.0)
    gossip_id = app0b.publish(activity_id, action, {"symbol": "SWX", "px": 42})
    sim.run_until(8.0)

    print("Figure 1 as executed (message sends between nodes):\n")
    print(
        render_sequence(
            trace,
            participants=["app0b", "coordinator", "app1", "app2", "app3"],
            max_events=args.max_events,
        )
    )
    receivers = [n.name for n in (app1, app2, app3) if n.has_delivered(gossip_id)]
    print(f"\nreceivers of the op: {', '.join(receivers)}")
    return 0 if len(receivers) == 3 else 1


def _cmd_styles(args: argparse.Namespace) -> int:
    print(f"{'style':<14}{'coverage':<10}{'time (s)':<10}{'messages'}")
    for style in ("push", "lazy-push", "feedback", "push-pull", "pull",
                  "anti-entropy"):
        group = GossipConfig(
            n_disseminators=args.nodes - 1,
            seed=args.seed,
            params={"style": style, "fanout": args.fanout, "rounds": args.rounds,
                    "period": 0.4},
            auto_tune=False,
        ).build()
        group.setup()
        before = group.message_counts().get("net.sent", 0)
        start = group.sim.now
        message_id = group.publish({"style": style})
        deadline = start + 60.0
        while (
            group.sim.now < deadline
            and group.delivered_fraction(message_id) < 1.0
        ):
            group.run_for(0.5)
        coverage = group.delivered_fraction(message_id)
        elapsed = group.sim.now - start
        messages = group.message_counts()["net.sent"] - before
        print(f"{style:<14}{coverage:<10.3f}{elapsed:<10.2f}{messages}")
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    n = args.population
    print(f"population n = {n}, target reliability = {args.target}")
    fanout = fanout_for_atomicity(n, args.target)
    print(f"fanout for atomic delivery: {fanout:.2f} (use {int(fanout) + 1})")
    rounds = expected_rounds(n, int(fanout) + 1)
    print(f"expected rounds to cover everyone: {rounds}")
    print("\natomicity probability by fanout:")
    for candidate in range(1, int(fanout) + 4):
        probability = atomic_delivery_probability(n, candidate)
        print(f"  f={candidate:<3} P(all reached) = {probability:.4f}")
    return 0


def _cmd_obs_report(args: argparse.Namespace) -> int:
    import json

    from repro.obs.export import prometheus_text, write_jsonl
    from repro.obs.report import report_model, run_seeded_report

    group, text = run_seeded_report(
        nodes=args.nodes,
        consumers=args.consumers,
        seed=args.seed,
        style=args.style,
        fanout=args.fanout,
        rounds=args.rounds,
        duration=args.duration,
        shards=args.shards,
        telemetry=True if args.telemetry else None,
    )
    try:
        # Bind the (possibly merged-on-access) hub once for the exports.
        hub = group.hub
        if args.json:
            model = report_model(hub, population=group.population)
            print(json.dumps(model, sort_keys=True, indent=2))
        else:
            print(text)
        if args.jsonl:
            count = write_jsonl(hub, args.jsonl)
            print(f"wrote {count} metric records to {args.jsonl}")
        if args.prometheus:
            with open(args.prometheus, "w", encoding="utf-8") as stream:
                stream.write(prometheus_text(hub))
            print(f"wrote Prometheus text to {args.prometheus}")
    finally:
        if hasattr(group, "close"):
            group.close()
    return 0


def _fetch_json(url: str, timeout: float = 5.0):
    import json
    import urllib.request

    with urllib.request.urlopen(url, timeout=timeout) as response:
        return json.loads(response.read().decode("utf-8"))


def _render_top(base: str, summary, rumors, alerts) -> str:
    lines = [f"obs top -- {base} (node {summary.get('node', '?')})"]
    population = summary.get("population")
    if population:
        lines.append(f"population: {population}")
    rates = summary.get("rates") or {}
    if rates:
        lines.append("rates: " + "  ".join(
            f"{name}={value:.2f}/s" for name, value in sorted(rates.items())
        ))
    counters = summary.get("counters") or {}
    highlights = [
        f"{name}={counters[name]}"
        for name in ("net.sent", "net.delivered", "gossip.fresh",
                     "gossip.duplicate", "telemetry.samples")
        if name in counters
    ]
    if highlights:
        lines.append("counters: " + "  ".join(highlights))
    alert_summary = summary.get("alerts") or {}
    state = "FIRING" if alert_summary.get("firing") else "ok"
    lines.append(f"alerts: {state} ({alert_summary.get('total', 0)} edges)")
    for alert in (alerts.get("items") or [])[-3:]:
        lines.append(
            f"  t={alert.get('time', 0.0):.1f}s {alert.get('name')} "
            f"{alert.get('state')} burn={alert.get('burn', 0.0):.2f}"
        )
    items = rumors.get("items") or []
    if items:
        lines.append(f"rumors ({rumors.get('total', len(items))} total, "
                     f"showing {len(items)}):")
        for rumor in items:
            r99 = rumor.get("rounds_to_99")
            lines.append(
                f"  {rumor.get('message_id')}: "
                f"delivered {rumor.get('delivered', 0)}, "
                f"rounds_max {rumor.get('rounds_max', 0)}, "
                f"rounds_to_99 {r99 if r99 is not None else '-'}"
            )
    return "\n".join(lines)


def _cmd_obs_top(args: argparse.Namespace) -> int:
    """Live-refresh view over a node's ``/v1/obs/*`` read models."""
    import itertools
    import time as _time
    import urllib.error

    base = args.url.rstrip("/")
    iterations = (
        range(1) if args.once
        else (itertools.count() if args.iterations == 0
              else range(args.iterations))
    )
    last = args.iterations - 1 if args.iterations else None
    try:
        for iteration in iterations:
            try:
                summary = _fetch_json(f"{base}/v1/obs/summary")
                rumors = _fetch_json(
                    f"{base}/v1/obs/rumors?limit={args.rumors}"
                )
                alerts = _fetch_json(f"{base}/v1/obs/alerts?limit=50")
            except (urllib.error.URLError, OSError, ValueError) as exc:
                print(f"obs top: cannot read {base}/v1/obs/*: {exc}")
                return 1
            if sys.stdout.isatty() and iteration:
                print("\x1b[2J\x1b[H", end="")
            print(_render_top(base, summary, rumors, alerts))
            if args.once or iteration == last:
                break
            _time.sleep(args.interval)
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    """One timed burst dissemination, optionally sharded across processes.

    The quick operator-facing twin of ``benchmarks/bench_shard.py``: same
    workload shape (eager-join setup, burst publish, fixed simulated
    drain), one row of output.  Config validation (``shards < 1``, a
    partition map omitting nodes) raises
    :class:`~repro.core.params.ParamError` before any worker starts.
    """
    import time as _time

    config = GossipConfig(
        n_disseminators=args.n - 1,
        seed=args.seed,
        params={
            "fanout": args.fanout,
            "rounds": args.rounds,
            "max_batch_rumors": args.max_batch_rumors,
        },
        auto_tune=False,
        shards=args.shards,
    )
    group = config.build()
    try:
        started = _time.perf_counter()
        group.setup(settle=1.0, eager_join=True)
        setup_wall = _time.perf_counter() - started
        message_ids = [
            group.publish({"tick": index}) for index in range(args.publications)
        ]
        busy_before = group.worker_busy() if args.shards > 1 else []
        started = _time.perf_counter()
        group.run_for(args.duration)
        drain_wall = _time.perf_counter() - started
        delivered = min(
            group.delivered_fraction(message_id) for message_id in message_ids
        )
        print(
            f"n={args.n} shards={args.shards} publications={args.publications}: "
            f"setup {setup_wall:.2f}s, drain {drain_wall:.2f}s, "
            f"delivered {delivered:.4f}"
        )
        if args.shards > 1:
            busy = [
                after - before
                for after, before in zip(group.worker_busy(), busy_before)
            ]
            print(
                f"barriers {group.barriers}, per-shard drain busy CPU "
                f"[{', '.join(f'{b:.2f}s' for b in busy)}] "
                f"(critical path {max(busy):.2f}s)"
            )
    finally:
        if hasattr(group, "close"):
            group.close()
    return 0


def _print_soak_telemetry(summary: dict) -> None:
    """Print the wire-trace reconstruction the mesh's merged hubs carry."""
    print("telemetry (from sampled wire trace context):")
    print(f"  trace samples: {summary.get('samples', 0)} "
          f"(skew-guarded {summary.get('skew_guarded', 0)})")
    for name in ("hop_latency_ms", "e2e_latency_ms"):
        stats = summary.get(name) or {}
        if stats:
            print(f"  {name}: p50={stats['p50']:.2f} p95={stats['p95']:.2f} "
                  f"p99={stats['p99']:.2f} max={stats['max']:.2f} "
                  f"(n={stats['count']})")
    rumors = summary.get("rumors") or []
    r99 = [r["rounds_to_99"] for r in rumors if r.get("rounds_to_99") is not None]
    if r99:
        print(f"  rounds to 99%: min={min(r99)} max={max(r99)} "
              f"({len(r99)}/{len(rumors)} rumors reached 99%)")
    for rumor in rumors[:3]:
        curve = rumor.get("infection_curve") or []
        if not curve:
            continue
        # Loop-monotonic timestamps; print relative to the first infection.
        start = curve[0][0]
        tail = " ".join(
            f"{count}@{time - start:.2f}s" for time, count in curve[-5:]
        )
        print(f"  rumor {rumor['message_id']}: infected over time {tail}")
    if len(rumors) > 3:
        print(f"  ... {len(rumors) - 3} more rumor(s) traced")


def _cmd_soak(args: argparse.Namespace) -> int:
    """A short live-socket run: real UDP/HTTP nodes on one event loop."""
    import asyncio

    from repro.core.aiodeploy import (
        SOAK_DELIVERY_BUDGET,
        AsyncGossipMesh,
        derive_soak_rate,
        soak_params,
    )
    from repro.workloads import StockFeed

    # The capacity rule from docs/DEPLOY.md: ~1000 deliveries/s on one
    # core, each publish costing ~N deliveries.  No --rate derives a
    # sustainable default from --nodes; an explicit over-budget rate is
    # honored but flagged.
    capacity_rate = derive_soak_rate(args.nodes)
    if args.rate is None:
        args.rate = capacity_rate
        print(f"rate: {args.rate:.2f} ticks/s "
              f"(~{SOAK_DELIVERY_BUDGET:.0f} deliveries/s / "
              f"{args.nodes} nodes; override with --rate)")
    elif args.rate > capacity_rate:
        print(f"warning: --rate {args.rate:g} exceeds the ~{capacity_rate:.2f} "
              f"ticks/s single-core budget for {args.nodes} nodes "
              "(docs/DEPLOY.md); expect backlog growth and degraded "
              "delivery")

    from repro.core.telemetry import TelemetryPolicy

    telemetry = None if args.no_telemetry else TelemetryPolicy(
        sample_rate=args.sample_rate
    )

    async def run() -> int:
        mesh = AsyncGossipMesh(
            args.nodes,
            transport=args.transport,
            params=soak_params(args.transport, period=args.period),
            seed=args.seed,
            telemetry=telemetry,
        )
        loop = mesh.loop
        await mesh.astart()
        published = {}
        try:
            feed = StockFeed(rate=args.rate, seed=args.seed)
            import random as _random

            rng = _random.Random(args.seed + 1)
            start = loop.time()
            for tick in feed.ticks(args.duration):
                lag = tick.time - (loop.time() - start)
                if lag > 0:
                    await asyncio.sleep(lag)
                publisher = rng.randrange(args.nodes)
                gossip_id = await mesh.apublish(tick.to_value(), publisher)
                published[gossip_id] = (publisher, loop.time())
            await asyncio.sleep(args.settle)
        finally:
            await mesh.astop()
        fractions = [
            mesh.delivered_fraction(gossip_id, publisher)
            for gossip_id, (publisher, _) in published.items()
        ]
        latencies = sorted(mesh.delivery_latencies(
            {gossip_id: when for gossip_id, (_, when) in published.items()}
        ))
        delivered = sum(fractions) / len(fractions) if fractions else 0.0
        print(f"nodes: {args.nodes} over {args.transport}, "
              f"{len(published)} ticks published")
        print(f"delivered: {delivered:.1%}")
        if latencies:
            p50 = latencies[len(latencies) // 2]
            p99 = latencies[min(len(latencies) - 1,
                                round(0.99 * (len(latencies) - 1)))]
            print(f"latency p50: {p50 * 1000:.0f} ms, p99: {p99 * 1000:.0f} ms")
        if telemetry is not None:
            _print_soak_telemetry(mesh.telemetry_summary())
        return 0 if delivered >= 0.99 else 1

    return asyncio.run(run())


def _cmd_describe(args: argparse.Namespace) -> int:
    import random

    from repro.core.handler import GossipLayer
    from repro.core.service import GossipService
    from repro.soap.runtime import SoapRuntime
    from repro.soap.wsdl import describe_runtime
    from repro.transport.base import LoopbackTransport

    class NullScheduler:
        now = 0.0

        def call_after(self, delay, callback):
            return self

        def cancel(self):
            pass

    runtime = SoapRuntime("sim://node", LoopbackTransport())
    layer = GossipLayer(runtime, NullScheduler(), "sim://node/app",
                        rng=random.Random(0))
    runtime.add_service("/gossip", GossipService(layer))
    for path, description in describe_runtime(runtime).items():
        print(f"{path}  ({description.service_name})")
        for operation in description.operations:
            print(f"  {operation.name:<12} {operation.action}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The argument parser for ``python -m repro``."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="WS-Gossip reproduction: demos and analysis",
    )
    parser.add_argument("--seed", type=int, default=7)
    commands = parser.add_subparsers(dest="command", required=True)

    demo = commands.add_parser("demo", help="disseminate across N services")
    demo.add_argument("--nodes", type=int, default=50)
    demo.add_argument("--consumers", type=int, default=10)
    demo.add_argument("--fanout", type=int, default=4)
    demo.add_argument("--rounds", type=int, default=7)
    demo.set_defaults(handler=_cmd_demo)

    figure1 = commands.add_parser("figure1", help="replay the paper's Figure 1")
    figure1.add_argument("--max-events", type=int, default=40)
    figure1.set_defaults(handler=_cmd_figure1)

    styles = commands.add_parser("styles", help="compare the gossip styles")
    styles.add_argument("--nodes", type=int, default=24)
    styles.add_argument("--fanout", type=int, default=6)
    styles.add_argument("--rounds", type=int, default=8)
    styles.set_defaults(handler=_cmd_styles)

    analyze = commands.add_parser(
        "analyze", help="epidemic parameter configuration for a population"
    )
    analyze.add_argument("population", type=int)
    analyze.add_argument("--target", type=float, default=0.99)
    analyze.set_defaults(handler=_cmd_analyze)

    describe = commands.add_parser(
        "describe", help="WSDL summary of the gossip port type"
    )
    describe.set_defaults(handler=_cmd_describe)

    soak = commands.add_parser(
        "soak", help="short live-socket mesh run (real UDP/HTTP nodes)"
    )
    soak.add_argument("--nodes", type=int, default=40)
    soak.add_argument("--transport", choices=("udp", "http"), default="udp")
    soak.add_argument("--duration", type=float, default=6.0)
    soak.add_argument(
        "--rate", type=float, default=None,
        help="publish rate (ticks/s); default derives from --nodes via "
             "the ~1000 deliveries/s capacity rule (docs/DEPLOY.md)",
    )
    soak.add_argument("--period", type=float, default=0.5)
    soak.add_argument("--settle", type=float, default=4.0)
    soak.add_argument(
        "--no-telemetry", action="store_true",
        help="disable wire-level trace context (drops the telemetry report)",
    )
    soak.add_argument(
        "--sample-rate", type=float, default=1.0,
        help="trace-context path-sampling probability (0..1)",
    )
    soak.set_defaults(handler=_cmd_soak)

    obs = commands.add_parser(
        "obs", help="observability: reports and metric exports"
    )
    obs_commands = obs.add_subparsers(dest="obs_command", required=True)
    report = obs_commands.add_parser(
        "report", help="run a seeded dissemination and report its metrics"
    )
    report.add_argument("--nodes", type=int, default=50)
    report.add_argument("--consumers", type=int, default=0)
    report.add_argument("--style", default="push")
    report.add_argument("--fanout", type=int, default=4)
    report.add_argument("--rounds", type=int, default=7)
    report.add_argument("--duration", type=float, default=10.0)
    report.add_argument("--jsonl", help="also dump every metric as JSONL")
    report.add_argument(
        "--prometheus", help="also write Prometheus text format"
    )
    report.add_argument(
        "--shards", type=int, default=1,
        help="simulate across K worker processes (merged report)",
    )
    report.add_argument(
        "--json", action="store_true",
        help="print the machine-readable report model (stable key order)",
    )
    report.add_argument(
        "--telemetry", action="store_true",
        help="run with wire-level trace context and SLO burn-rate windows",
    )
    report.set_defaults(handler=_cmd_obs_report)

    top = obs_commands.add_parser(
        "top", help="live-refresh view polling a node's /v1/obs/* endpoints"
    )
    top.add_argument(
        "--url", default="http://127.0.0.1:8801",
        help="base URL of a running HTTP gossip node",
    )
    top.add_argument("--interval", type=float, default=2.0)
    top.add_argument(
        "--iterations", type=int, default=0,
        help="refresh count (0 = until interrupted)",
    )
    top.add_argument(
        "--once", action="store_true", help="poll once and exit"
    )
    top.add_argument(
        "--rumors", type=int, default=10,
        help="rumor rows to show per refresh",
    )
    top.set_defaults(handler=_cmd_obs_top)

    bench = commands.add_parser(
        "bench", help="timed burst dissemination, optionally sharded"
    )
    bench.add_argument("--n", type=int, default=1000, help="population size")
    bench.add_argument(
        "--shards", type=int, default=1,
        help="worker processes for the sharded simulator (1 = in-process)",
    )
    bench.add_argument("--publications", type=int, default=50)
    bench.add_argument("--duration", type=float, default=12.0,
                       help="simulated drain seconds after the burst")
    bench.add_argument("--fanout", type=int, default=6)
    bench.add_argument("--rounds", type=int, default=9)
    bench.add_argument("--max-batch-rumors", type=int, default=64)
    bench.set_defaults(handler=_cmd_bench)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
