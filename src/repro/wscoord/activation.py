"""The WS-Coordination Activation service port type."""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.soap import namespaces as ns
from repro.soap.fault import sender_fault
from repro.soap.handler import MessageContext
from repro.soap.service import Reply, Service, operation
from repro.wscoord.coordinator import Coordinator

CREATE_ACTION = f"{ns.WSCOORD}/CreateCoordinationContext"
CREATE_RESPONSE_ACTION = f"{ns.WSCOORD}/CreateCoordinationContextResponse"


class ActivationService(Service):
    """Creates coordination contexts on request.

    Request payload (serializer map)::

        {"coordination_type": str, "expires": float | None,
         "parameters": map | None}

    The response body is the ``CoordinationContext`` header-block element
    itself, per the WS-Coordination wire format.
    """

    def __init__(self, coordinator: Coordinator) -> None:
        super().__init__()
        self._coordinator = coordinator

    @operation(CREATE_ACTION)
    def create_coordination_context(
        self, context: MessageContext, value: Optional[Dict[str, Any]]
    ) -> Reply:
        """SOAP operation: create an activity, reply with its context."""
        if not isinstance(value, dict) or "coordination_type" not in value:
            raise sender_fault(
                "CreateCoordinationContext requires a coordination_type"
            )
        coordination_type = value["coordination_type"]
        if not isinstance(coordination_type, str):
            raise sender_fault("coordination_type must be a string")
        expires = value.get("expires")
        if expires is not None and not isinstance(expires, (int, float)):
            raise sender_fault("expires must be a number of seconds")
        parameters = value.get("parameters") or {}
        if not isinstance(parameters, dict):
            raise sender_fault("parameters must be a map")

        coordination_context = self._coordinator.create_context(
            coordination_type,
            expires=float(expires) if expires is not None else None,
            parameters=parameters,
        )
        return Reply(
            value=coordination_context.to_element(),
            action=CREATE_RESPONSE_ACTION,
        )
