"""The WS-Coordination CoordinationContext.

A context identifies one coordinated *activity*.  It is returned by the
Activation service and then travels as a SOAP header block on every message
belonging to the activity, so any compliant stack (e.g. a Disseminator's
gossip layer) can recognize the activity and find its Registration service.
"""

from __future__ import annotations

import uuid
import xml.etree.ElementTree as ET
from dataclasses import dataclass
from typing import Optional

from repro.soap import namespaces as ns
from repro.wsa.addressing import EndpointReference
from repro.xmlutil import qname

CONTEXT_TAG = qname(ns.WSCOORD, "CoordinationContext")
_IDENTIFIER = qname(ns.WSCOORD, "Identifier")
_COORDINATION_TYPE = qname(ns.WSCOORD, "CoordinationType")
_EXPIRES = qname(ns.WSCOORD, "Expires")
_REGISTRATION_SERVICE = qname(ns.WSCOORD, "RegistrationService")


def new_context_identifier() -> str:
    """A fresh activity identifier."""
    return f"urn:wscoord:activity:{uuid.uuid4()}"


@dataclass(frozen=True)
class CoordinationContext:
    """One activity's coordination context.

    Attributes:
        identifier: unique activity id.
        coordination_type: URI naming the protocol family (for WS-Gossip:
            :data:`repro.soap.namespaces.WSGOSSIP_COORD` plus a style suffix).
        registration_service: EPR of the Registration service participants
            must register with.
        expires: optional lifetime in seconds (``None`` = unbounded).
    """

    identifier: str
    coordination_type: str
    registration_service: EndpointReference
    expires: Optional[float] = None

    def to_element(self) -> ET.Element:
        """Serialize as the standard header block."""
        root = ET.Element(CONTEXT_TAG)
        identifier = ET.SubElement(root, _IDENTIFIER)
        identifier.text = self.identifier
        if self.expires is not None:
            expires = ET.SubElement(root, _EXPIRES)
            expires.text = repr(self.expires)
        coordination_type = ET.SubElement(root, _COORDINATION_TYPE)
        coordination_type.text = self.coordination_type
        root.append(self.registration_service.to_element(_REGISTRATION_SERVICE))
        return root

    @classmethod
    def from_element(cls, element: ET.Element) -> "CoordinationContext":
        """Parse the header block.

        Raises:
            ValueError: when mandatory children are missing.
        """
        identifier = element.findtext(_IDENTIFIER)
        coordination_type = element.findtext(_COORDINATION_TYPE)
        registration = element.find(_REGISTRATION_SERVICE)
        if identifier is None or coordination_type is None or registration is None:
            raise ValueError("malformed CoordinationContext header")
        expires_text = element.findtext(_EXPIRES)
        return cls(
            identifier=identifier,
            coordination_type=coordination_type,
            registration_service=EndpointReference.from_element(registration),
            expires=float(expires_text) if expires_text is not None else None,
        )

    @classmethod
    def from_envelope(cls, envelope) -> Optional["CoordinationContext"]:
        """Extract the context header from an envelope, if present."""
        element = envelope.header(CONTEXT_TAG)
        if element is None:
            return None
        return cls.from_element(element)
