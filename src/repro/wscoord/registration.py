"""The WS-Coordination Registration service port type."""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.soap import namespaces as ns
from repro.soap.fault import sender_fault
from repro.soap.handler import MessageContext
from repro.soap.service import Service, operation
from repro.wsa.addressing import EndpointReference
from repro.wscoord.coordinator import Coordinator
from repro.xmlutil import qname

REGISTER_ACTION = f"{ns.WSCOORD}/Register"
REGISTER_RESPONSE_ACTION = f"{ns.WSCOORD}/RegisterResponse"

# The activity id rides as a reference parameter of the Registration EPR and
# therefore arrives as this header on Register messages.
ACTIVITY_ID_PARAM = "ActivityId"
_ACTIVITY_ID_HEADER = qname(ns.WSGOSSIP, ACTIVITY_ID_PARAM)


class RegistrationService(Service):
    """Registers participants into activities.

    Request payload (serializer map)::

        {"protocol": str, "participant": str (address),
         "metadata": map | None,
         "activity": str | None  # fallback when no header is present}

    Response payload: the coordination protocol's response extras (for
    gossip: peer list and round parameters), plus the activity id.
    """

    def __init__(self, coordinator: Coordinator) -> None:
        super().__init__()
        self._coordinator = coordinator

    @operation(REGISTER_ACTION)
    def register(
        self, context: MessageContext, value: Optional[Dict[str, Any]]
    ) -> Dict[str, Any]:
        """SOAP operation: register a participant into an activity."""
        if not isinstance(value, dict):
            raise sender_fault("Register requires a map payload")
        protocol = value.get("protocol")
        participant = value.get("participant")
        if not isinstance(protocol, str) or not isinstance(participant, str):
            raise sender_fault("Register requires protocol and participant strings")
        metadata = value.get("metadata") or {}
        if not isinstance(metadata, dict):
            raise sender_fault("metadata must be a map")

        activity_id = context.envelope.header_text(_ACTIVITY_ID_HEADER)
        if activity_id is None:
            fallback = value.get("activity")
            if not isinstance(fallback, str):
                raise sender_fault("Register missing activity identifier")
            activity_id = fallback

        extras = self._coordinator.register(
            activity_id,
            protocol,
            EndpointReference(participant),
            metadata=metadata,
        )
        response: Dict[str, Any] = {"activity": activity_id}
        response.update(extras)
        return response
