"""WS-Coordination 1.1: contexts, Activation and Registration services.

The paper builds WS-PushGossip "on the standard WS-Coordination in order to
provide gossip-based communication seamlessly" (Section 3).  This package
implements the protocol machinery the paper relies on:

* :class:`~repro.wscoord.context.CoordinationContext` -- the context
  created by Activation and propagated as a SOAP header with every
  coordinated message.
* :class:`~repro.wscoord.coordinator.Coordinator` -- activity state plus a
  plug-in interface (:class:`~repro.wscoord.coordinator.CoordinationProtocol`)
  that concrete coordination types (here: gossip) implement.
* :class:`~repro.wscoord.activation.ActivationService` and
  :class:`~repro.wscoord.registration.RegistrationService` -- the two
  standard port types, mounted on the coordinator node.
"""

from repro.wscoord.activation import ActivationService
from repro.wscoord.context import CoordinationContext
from repro.wscoord.coordinator import Activity, CoordinationProtocol, Coordinator
from repro.wscoord.registration import RegistrationService

__all__ = [
    "Activity",
    "ActivationService",
    "CoordinationContext",
    "CoordinationProtocol",
    "Coordinator",
    "RegistrationService",
]
