"""The coordinator: activity state and protocol plug-ins.

WS-Coordination itself is protocol-agnostic; concrete behaviour comes from
a *coordination type* plugged into the coordinator.  WS-Gossip registers
its gossip coordination types here
(:class:`repro.core.coordination.GossipCoordinationProtocol`), exactly as
WS-AtomicTransaction would register 2PC.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.soap.fault import sender_fault
from repro.wsa.addressing import EndpointReference
from repro.wscoord.context import CoordinationContext, new_context_identifier


@dataclass
class Participant:
    """One registered participant of an activity."""

    protocol: str
    endpoint: EndpointReference
    metadata: Dict[str, Any] = field(default_factory=dict)


@dataclass
class Activity:
    """Coordinator-side state for one activity.

    ``participants`` stays a plain public list (tests and protocol plug-ins
    append to it directly), so the lookup index below is maintained lazily:
    :meth:`_sync_index` absorbs appended entries incrementally and rebuilds
    from scratch only when the list shrank or was mutated out from under us
    (:meth:`invalidate_index`).  With thousands of participants per
    activity, register/peer-sample would otherwise scan the list per call.
    """

    context: CoordinationContext
    participants: List[Participant] = field(default_factory=list)
    properties: Dict[str, Any] = field(default_factory=dict)
    _index: Dict[Tuple[str, str], Participant] = field(
        default_factory=dict, repr=False, compare=False
    )
    _addresses: List[str] = field(default_factory=list, repr=False, compare=False)
    _address_set: set = field(default_factory=set, repr=False, compare=False)
    _indexed_count: int = field(default=0, repr=False, compare=False)

    def participant_addresses(self, protocol: Optional[str] = None) -> List[str]:
        """Addresses of registered participants, optionally by protocol."""
        return [
            participant.endpoint.address
            for participant in self.participants
            if protocol is None or participant.protocol == protocol
        ]

    def is_registered(self, address: str, protocol: Optional[str] = None) -> bool:
        """True when ``address`` is a participant (optionally by protocol)."""
        return address in self.participant_addresses(protocol)

    # -- lookup index ---------------------------------------------------------

    def _sync_index(self) -> None:
        if self._indexed_count > len(self.participants):
            # The list shrank (pruning, unsubscribe): rebuild.
            self._index.clear()
            self._addresses.clear()
            self._address_set.clear()
            self._indexed_count = 0
        for participant in self.participants[self._indexed_count :]:
            address = participant.endpoint.address
            self._index[(address, participant.protocol)] = participant
            if address not in self._address_set:
                self._address_set.add(address)
                self._addresses.append(address)
        self._indexed_count = len(self.participants)

    def invalidate_index(self) -> None:
        """Force a rebuild after in-place mutation of ``participants``."""
        self._indexed_count = len(self.participants) + 1

    def find_participant(self, address: str, protocol: str) -> Optional[Participant]:
        """O(1) lookup of a participant by (address, protocol)."""
        self._sync_index()
        return self._index.get((address, protocol))

    def add_participant(self, participant: Participant) -> None:
        """Append a participant, keeping the index current."""
        self._sync_index()
        self.participants.append(participant)
        address = participant.endpoint.address
        self._index[(address, participant.protocol)] = participant
        if address not in self._address_set:
            self._address_set.add(address)
            self._addresses.append(address)
        self._indexed_count = len(self.participants)

    def distinct_addresses(self) -> List[str]:
        """Distinct participant addresses in first-registration order.

        The returned list is the live index -- callers must not mutate it.
        """
        self._sync_index()
        return self._addresses


class CoordinationProtocol:
    """Plug-in interface for a coordination type.

    Subclasses implement the behaviour of one coordination type URI.  The
    coordinator invokes the hooks; return values of :meth:`on_register`
    are merged into the RegisterResponse payload.
    """

    coordination_type: str = ""

    def on_create(self, activity: Activity, parameters: Dict[str, Any]) -> None:
        """Called when an activity of this type is created."""

    def on_register(
        self, activity: Activity, participant: Participant
    ) -> Dict[str, Any]:
        """Called when a participant registers; returns response extras."""
        return {}


class Coordinator:
    """Activity registry plus the protocol plug-ins.

    Args:
        registration_epr_factory: callable ``(activity_id) -> EndpointReference``
            returning the EPR of the Registration service to embed in new
            contexts (supplied by the node hosting the coordinator, since
            only it knows its address).  The activity id should ride as a
            reference parameter so Register messages identify themselves.
    """

    def __init__(self, registration_epr_factory) -> None:
        self._registration_epr_factory = registration_epr_factory
        self._protocols: Dict[str, CoordinationProtocol] = {}
        self._activities: Dict[str, Activity] = {}

    # -- protocol plug-ins ----------------------------------------------------

    def add_protocol(self, protocol: CoordinationProtocol) -> None:
        """Install a coordination type.

        Raises:
            ValueError: on duplicate or empty coordination type URIs.
        """
        if not protocol.coordination_type:
            raise ValueError("protocol must define a coordination_type URI")
        if protocol.coordination_type in self._protocols:
            raise ValueError(
                f"coordination type already installed: {protocol.coordination_type!r}"
            )
        self._protocols[protocol.coordination_type] = protocol

    def protocol_for(self, coordination_type: str) -> CoordinationProtocol:
        """The installed protocol for a coordination type (faults if absent)."""
        try:
            return self._protocols[coordination_type]
        except KeyError:
            raise sender_fault(
                f"unsupported coordination type: {coordination_type!r}"
            ) from None

    # -- activities --------------------------------------------------------------

    def create_context(
        self,
        coordination_type: str,
        expires: Optional[float] = None,
        parameters: Optional[Dict[str, Any]] = None,
    ) -> CoordinationContext:
        """Create a new activity and return its context.

        Raises:
            SoapFault: (Sender) for unknown coordination types.
        """
        protocol = self.protocol_for(coordination_type)
        identifier = new_context_identifier()
        context = CoordinationContext(
            identifier=identifier,
            coordination_type=coordination_type,
            registration_service=self._registration_epr_factory(identifier),
            expires=expires,
        )
        activity = Activity(context=context)
        self._activities[identifier] = activity
        protocol.on_create(activity, parameters or {})
        return context

    def register(
        self,
        activity_id: str,
        protocol_id: str,
        participant_epr: EndpointReference,
        metadata: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        """Register a participant; returns the protocol's response extras.

        Registration is idempotent per (address, protocol): re-registering
        refreshes metadata instead of duplicating the participant.

        Raises:
            SoapFault: (Sender) for unknown activities.
        """
        activity = self.activity(activity_id)
        protocol = self.protocol_for(activity.context.coordination_type)
        participant = activity.find_participant(participant_epr.address, protocol_id)
        if participant is not None:
            participant.metadata = dict(metadata or {})
        else:
            participant = Participant(
                protocol=protocol_id,
                endpoint=participant_epr,
                metadata=dict(metadata or {}),
            )
            activity.add_participant(participant)
        return protocol.on_register(activity, participant)

    def activity(self, activity_id: str) -> Activity:
        """Look up an activity.

        Raises:
            SoapFault: (Sender) when the activity does not exist.
        """
        try:
            return self._activities[activity_id]
        except KeyError:
            raise sender_fault(f"unknown activity: {activity_id!r}") from None

    def activities(self) -> List[Activity]:
        """Every known activity."""
        return list(self._activities.values())

    def __contains__(self, activity_id: str) -> bool:
        return activity_id in self._activities
