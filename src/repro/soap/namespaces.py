"""Namespace URIs used throughout the stack.

The standard namespaces are the real OASIS/W3C URIs (so captured envelopes
look like the 2008-era wire format the paper assumes); the WS-Gossip ones
are this project's own, mirroring the paper's proposed extension.
"""

SOAP11_ENV = "http://schemas.xmlsoap.org/soap/envelope/"
SOAP12_ENV = "http://www.w3.org/2003/05/soap-envelope"

WSA = "http://www.w3.org/2005/08/addressing"
WSA_ANONYMOUS = "http://www.w3.org/2005/08/addressing/anonymous"
WSA_NONE = "http://www.w3.org/2005/08/addressing/none"

# WS-Coordination 1.1 (OASIS WS-TX).
WSCOORD = "http://docs.oasis-open.org/ws-tx/wscoor/2006/06"

# WS-Notification base notification (OASIS WSN).
WSN = "http://docs.oasis-open.org/wsn/b-2"

# This project's extensions, in the spirit of the paper.
WSGOSSIP = "urn:ws-gossip:2008:core"
WSGOSSIP_COORD = "urn:ws-gossip:2008:coordination"
WSMEMBERSHIP = "urn:ws-membership:2003"

# Payload serialization namespace for repro.soap.serializer.
PAYLOAD = "urn:ws-gossip:2008:payload"
