"""WSDL 1.1 description generation.

A 2008-era WS stack advertises its port types as WSDL; tooling consumed it
to generate stubs.  This module renders a faithful WSDL 1.1 document for
any service mounted on a :class:`~repro.soap.runtime.SoapRuntime`: one
``portType`` operation per registered action, a document-literal SOAP
binding carrying the action as ``soapAction``, and a ``service`` element
with the endpoint's concrete address.

The generated documents are real XML and round-trip through
:func:`parse_wsdl` (used by the tests and by the CLI's ``describe``
command) -- enough for interop demos, though no external tooling is
assumed.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.soap.runtime import SoapRuntime
from repro.soap.service import Service
from repro.xmlutil import canonical_bytes, parse_bytes, qname

WSDL_NS = "http://schemas.xmlsoap.org/wsdl/"
WSDL_SOAP_NS = "http://schemas.xmlsoap.org/wsdl/soap/"

_DEFINITIONS = qname(WSDL_NS, "definitions")
_PORT_TYPE = qname(WSDL_NS, "portType")
_OPERATION = qname(WSDL_NS, "operation")
_INPUT = qname(WSDL_NS, "input")
_BINDING = qname(WSDL_NS, "binding")
_SERVICE = qname(WSDL_NS, "service")
_PORT = qname(WSDL_NS, "port")
_SOAP_BINDING = qname(WSDL_SOAP_NS, "binding")
_SOAP_OPERATION = qname(WSDL_SOAP_NS, "operation")
_SOAP_ADDRESS = qname(WSDL_SOAP_NS, "address")


def _operation_name(action: str) -> str:
    """A WSDL operation name derived from an action URI."""
    tail = action.rpartition("/")[2] or action.rpartition(":")[2]
    return tail or "Operation"


@dataclass
class WsdlOperation:
    """One parsed operation."""

    name: str
    action: str


@dataclass
class WsdlDescription:
    """Parsed summary of a generated WSDL document."""

    service_name: str
    endpoint: str
    operations: List[WsdlOperation] = field(default_factory=list)

    def actions(self) -> List[str]:
        """The soapAction URIs of every operation."""
        return [operation.action for operation in self.operations]


def generate_wsdl(
    runtime: SoapRuntime,
    path: str,
    service_name: Optional[str] = None,
    target_namespace: str = "urn:ws-gossip:2008:wsdl",
) -> bytes:
    """Render WSDL 1.1 bytes for the service mounted at ``path``.

    Raises:
        ValueError: when no service is mounted there.
    """
    service = runtime.service_at(path)
    if service is None:
        raise ValueError(f"no service mounted at {path!r}")
    name = service_name or type(service).__name__

    root = ET.Element(_DEFINITIONS)
    root.set("name", name)
    root.set("targetNamespace", target_namespace)

    port_type = ET.SubElement(root, _PORT_TYPE)
    port_type.set("name", f"{name}PortType")
    binding = ET.SubElement(root, _BINDING)
    binding.set("name", f"{name}Binding")
    binding.set("type", f"tns:{name}PortType")
    soap_binding = ET.SubElement(binding, _SOAP_BINDING)
    soap_binding.set("style", "document")
    soap_binding.set(
        "transport", "http://schemas.xmlsoap.org/soap/http"
    )

    for action in sorted(service.actions()):
        operation_name = _operation_name(action)
        pt_operation = ET.SubElement(port_type, _OPERATION)
        pt_operation.set("name", operation_name)
        ET.SubElement(pt_operation, _INPUT).set(
            "message", f"tns:{operation_name}Input"
        )
        b_operation = ET.SubElement(binding, _OPERATION)
        b_operation.set("name", operation_name)
        soap_operation = ET.SubElement(b_operation, _SOAP_OPERATION)
        soap_operation.set("soapAction", action)

    service_element = ET.SubElement(root, _SERVICE)
    service_element.set("name", name)
    port = ET.SubElement(service_element, _PORT)
    port.set("name", f"{name}Port")
    port.set("binding", f"tns:{name}Binding")
    address = ET.SubElement(port, _SOAP_ADDRESS)
    address.set("location", runtime.address_of(path))

    return canonical_bytes(root)


def parse_wsdl(data: bytes) -> WsdlDescription:
    """Parse a document produced by :func:`generate_wsdl`.

    Raises:
        ValueError: when the bytes are not a WSDL definitions document.
    """
    root = parse_bytes(data)
    if root.tag != _DEFINITIONS:
        raise ValueError(f"not a WSDL definitions document: {root.tag!r}")

    service_element = root.find(_SERVICE)
    if service_element is None:
        raise ValueError("WSDL document has no service element")
    address = service_element.find(f"{_PORT}/{_SOAP_ADDRESS}")
    if address is None or address.get("location") is None:
        raise ValueError("WSDL service has no soap:address")

    operations: List[WsdlOperation] = []
    binding = root.find(_BINDING)
    if binding is not None:
        for operation in binding.findall(_OPERATION):
            soap_operation = operation.find(_SOAP_OPERATION)
            if soap_operation is None:
                continue
            operations.append(
                WsdlOperation(
                    name=operation.get("name", ""),
                    action=soap_operation.get("soapAction", ""),
                )
            )
    return WsdlDescription(
        service_name=service_element.get("name", ""),
        endpoint=address.get("location", ""),
        operations=operations,
    )


def describe_runtime(runtime: SoapRuntime) -> Dict[str, WsdlDescription]:
    """WSDL descriptions for every service mounted on a runtime."""
    descriptions = {}
    for path in runtime.service_paths():
        descriptions[path] = parse_wsdl(generate_wsdl(runtime, path))
    return descriptions
