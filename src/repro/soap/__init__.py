"""A from-scratch SOAP 1.1/1.2 stack.

This is the "compliant middleware stack" the paper requires on Initiator and
Disseminator nodes.  The pieces:

* :mod:`repro.soap.namespaces` -- the namespace URIs used across the repo.
* :mod:`repro.soap.envelope`   -- envelope construction and parsing.
* :mod:`repro.soap.fault`      -- SOAP faults as exceptions and as XML.
* :mod:`repro.soap.serializer` -- Python values <-> XML payload elements.
* :mod:`repro.soap.handler`    -- the handler chain (where the gossip layer
  plugs in, per the paper's Figure 1 deployment story).
* :mod:`repro.soap.service`    -- service base class with operation routing.
* :mod:`repro.soap.runtime`    -- the transport-agnostic per-node engine.
"""

from repro.soap.envelope import Envelope
from repro.soap.fault import FaultCode, SoapFault
from repro.soap.handler import Direction, Handler, HandlerChain, MessageContext
from repro.soap.runtime import SoapRuntime
from repro.soap.serializer import from_element, to_element
from repro.soap.service import Service, operation

__all__ = [
    "Direction",
    "Envelope",
    "FaultCode",
    "Handler",
    "HandlerChain",
    "MessageContext",
    "Service",
    "SoapFault",
    "SoapRuntime",
    "from_element",
    "operation",
    "to_element",
]
