"""Payload serialization: plain Python values <-> XML elements.

The WS-Gossip services exchange structured payloads (peer lists, parameter
maps, stock ticks).  This module maps a small, closed set of Python types
onto XML so every payload is real wire XML yet round-trips exactly:

``None`` | ``bool`` | ``int`` | ``float`` | ``str`` | ``bytes`` |
``list`` of values | ``dict`` with ``str`` keys.

The value type is recorded in a ``t`` attribute; lists nest ``item``
children and dicts nest ``entry`` children with a ``k`` key attribute.
"""

from __future__ import annotations

import base64
import math
import xml.etree.ElementTree as ET
from typing import Any

from repro.soap import namespaces as ns
from repro.xmlutil import qname


class SerializationError(ValueError):
    """Raised for unsupported types or malformed payload XML."""


_ITEM_TAG = qname(ns.PAYLOAD, "item")
_ENTRY_TAG = qname(ns.PAYLOAD, "entry")


def to_element(tag: str, value: Any) -> ET.Element:
    """Serialize ``value`` into an element named ``tag``.

    Raises:
        SerializationError: for types outside the supported set.
    """
    element = ET.Element(tag)
    _fill(element, value)
    return element


def _fill(element: ET.Element, value: Any) -> None:
    if value is None:
        element.set("t", "null")
    elif isinstance(value, bool):  # before int: bool is an int subclass
        element.set("t", "bool")
        element.text = "true" if value else "false"
    elif isinstance(value, int):
        element.set("t", "int")
        element.text = str(value)
    elif isinstance(value, float):
        element.set("t", "float")
        element.text = repr(value)  # repr round-trips doubles exactly
    elif isinstance(value, str):
        if "\r" in value:
            # XML 1.0 line-ending normalization turns a literal CR into LF
            # on parse, so CR-bearing strings ride base64-encoded instead.
            element.set("t", "str64")
            element.text = base64.b64encode(value.encode("utf-8")).decode("ascii")
        else:
            element.set("t", "str")
            element.text = value
    elif isinstance(value, (bytes, bytearray)):
        element.set("t", "bytes")
        element.text = base64.b64encode(bytes(value)).decode("ascii")
    elif isinstance(value, (list, tuple)):
        element.set("t", "list")
        for item in value:
            child = ET.SubElement(element, _ITEM_TAG)
            _fill(child, item)
    elif isinstance(value, dict):
        element.set("t", "map")
        for key, item in value.items():
            if not isinstance(key, str):
                raise SerializationError(
                    f"map keys must be str, got {type(key).__name__}"
                )
            child = ET.SubElement(element, _ENTRY_TAG)
            child.set("k", key)
            _fill(child, item)
    else:
        raise SerializationError(f"unsupported type: {type(value).__name__}")


def from_element(element: ET.Element) -> Any:
    """Deserialize an element produced by :func:`to_element`.

    Raises:
        SerializationError: on unknown ``t`` tags or malformed content.
    """
    kind = element.get("t")
    text = element.text or ""
    if kind == "null":
        return None
    if kind == "bool":
        if text == "true":
            return True
        if text == "false":
            return False
        raise SerializationError(f"bad bool text: {text!r}")
    if kind == "int":
        try:
            return int(text)
        except ValueError as exc:
            raise SerializationError(f"bad int text: {text!r}") from exc
    if kind == "float":
        try:
            return float(text)
        except ValueError as exc:
            raise SerializationError(f"bad float text: {text!r}") from exc
    if kind == "str":
        return text
    if kind == "str64":
        try:
            return base64.b64decode(text.encode("ascii"), validate=True).decode(
                "utf-8"
            )
        except Exception as exc:
            raise SerializationError(f"bad str64 payload: {text!r}") from exc
    if kind == "bytes":
        try:
            return base64.b64decode(text.encode("ascii"), validate=True)
        except Exception as exc:
            raise SerializationError(f"bad base64 payload: {text!r}") from exc
    if kind == "list":
        return [from_element(child) for child in element]
    if kind == "map":
        result = {}
        for child in element:
            key = child.get("k")
            if key is None:
                raise SerializationError("map entry missing key attribute")
            result[key] = from_element(child)
        return result
    raise SerializationError(f"unknown payload type tag: {kind!r}")
