"""The SOAP handler chain -- the paper's "middleware stack".

Figure 1 of the paper deploys gossip by *configuring an additional handler,
the gossip layer, in the middleware stack*.  This module provides that
stack: an ordered chain of :class:`Handler` objects through which every
message passes, outbound before hitting the transport and inbound before
dispatch.

A handler may mutate the context, pass the message on (return ``True``), or
consume it (return ``False``) -- consuming is how the gossip layer takes
over routing without the application noticing.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Any, Dict, List, Optional

from repro.soap.envelope import Envelope
from repro.wsa.addressing import AddressingHeaders

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.soap.runtime import SoapRuntime


class Direction(enum.Enum):
    """Which way a message is travelling through the stack."""

    INBOUND = "inbound"
    OUTBOUND = "outbound"


class MessageContext:
    """Everything the stack knows about one message in flight.

    Attributes:
        envelope: the SOAP envelope (mutable).
        direction: inbound or outbound.
        addressing: the WS-A properties (kept in sync with the envelope by
            the runtime at chain boundaries).
        destination: transport address the message is going to (outbound).
        source: transport address it came from, if the transport knows.
        properties: scratch space for handlers (e.g. the gossip layer marks
            messages it has re-routed).
        runtime: the owning runtime, so handlers can send further messages.
    """

    def __init__(
        self,
        envelope: Envelope,
        direction: Direction,
        addressing: Optional[AddressingHeaders] = None,
        destination: Optional[str] = None,
        source: Optional[str] = None,
        runtime: Optional["SoapRuntime"] = None,
    ) -> None:
        self.envelope = envelope
        self.direction = direction
        self.addressing = addressing if addressing is not None else AddressingHeaders()
        self.destination = destination
        self.source = source
        self.properties: Dict[str, Any] = {}
        self.runtime = runtime

    def __repr__(self) -> str:
        return (
            f"MessageContext({self.direction.value}, "
            f"action={self.addressing.action!r}, to={self.destination!r})"
        )


class Handler:
    """Base handler.  Override one or both directions.

    Both hooks return ``True`` to continue the chain or ``False`` to consume
    the message (no further handlers, no dispatch / no transport send).
    """

    def on_outbound(self, context: MessageContext) -> bool:
        """Called before the transport send; False consumes the message."""
        return True

    def on_inbound(self, context: MessageContext) -> bool:
        """Called before dispatch; False consumes the message."""
        return True


class HandlerChain:
    """An ordered list of handlers.

    Outbound messages traverse the list front-to-back; inbound messages
    back-to-front (the conventional symmetric stack ordering: the handler
    closest to the transport sees inbound messages first).
    """

    def __init__(self, handlers: Optional[List[Handler]] = None) -> None:
        self._handlers: List[Handler] = list(handlers) if handlers else []

    def add(self, handler: Handler) -> None:
        """Append a handler at the application end of the stack."""
        self._handlers.append(handler)

    def add_first(self, handler: Handler) -> None:
        """Insert a handler at the transport end of the stack."""
        self._handlers.insert(0, handler)

    def remove(self, handler: Handler) -> None:
        """Remove a handler (ValueError if absent)."""
        self._handlers.remove(handler)

    def handlers(self) -> List[Handler]:
        """A copy of the chain, transport end first."""
        return list(self._handlers)

    def run_outbound(self, context: MessageContext) -> bool:
        """Run the outbound path; ``False`` when some handler consumed it."""
        for handler in self._handlers:
            if not handler.on_outbound(context):
                return False
        return True

    def run_inbound(self, context: MessageContext) -> bool:
        """Run the inbound path; ``False`` when some handler consumed it."""
        for handler in reversed(self._handlers):
            if not handler.on_inbound(context):
                return False
        return True

    def __len__(self) -> int:
        return len(self._handlers)
