"""WS-ReliableMessaging-style per-link reliability (ack + retransmit).

The 2008 WS-* answer to message loss was transport-layer reliability:
WS-ReliableMessaging numbers messages per destination, the receiver acks,
and the sender retransmits until acked (or gives up).  This module
implements that pattern as a SOAP handler pair in one
:class:`ReliableLayer`, so baselines can be made "reliable" the WS way --
and experiment E12 can measure what that costs compared with gossip's
protocol-level redundancy.

Semantics:

* outbound application messages gain a ``Sequence`` header
  ``(channel id, sequence number)`` and are retransmitted every
  ``retry_interval`` until acked, at most ``max_retries`` times;
* the receiving layer acks every sequenced message and consumes
  duplicates, so the application sees exactly-once per link (loss is
  repaired; a crashed receiver is NOT -- reliability is not resilience,
  which is precisely the distinction the experiment shows);
* acks and retransmissions bypass the outbound chain (they are the
  layer's own control traffic).
"""

from __future__ import annotations

import uuid
import xml.etree.ElementTree as ET
from typing import Callable, Dict, Optional, Set, Tuple

from repro.core.scheduling import Scheduler
from repro.obs.hub import hub_of
from repro.soap import namespaces as ns
from repro.soap.envelope import Envelope
from repro.soap.handler import Direction, Handler, MessageContext
from repro.soap.runtime import SoapRuntime
from repro.transport.base import split_address
from repro.xmlutil import qname

WSRM = "urn:ws-rm-lite:2008"
ACK_ACTION = f"{WSRM}/Ack"

_SEQUENCE_TAG = qname(WSRM, "Sequence")
_CHANNEL = qname(WSRM, "Channel")
_NUMBER = qname(WSRM, "Number")


def _sequence_header(channel: str, number: int) -> ET.Element:
    root = ET.Element(_SEQUENCE_TAG)
    channel_element = ET.SubElement(root, _CHANNEL)
    channel_element.text = channel
    number_element = ET.SubElement(root, _NUMBER)
    number_element.text = str(number)
    return root


def _parse_sequence(envelope: Envelope) -> Optional[Tuple[str, int]]:
    element = envelope.header(_SEQUENCE_TAG)
    if element is None:
        return None
    channel = element.findtext(_CHANNEL)
    number_text = element.findtext(_NUMBER)
    if channel is None or number_text is None:
        raise ValueError("malformed Sequence header")
    try:
        return channel, int(number_text)
    except ValueError:
        raise ValueError(f"malformed sequence number: {number_text!r}") from None


class ReliableLayer(Handler):
    """Ack/retransmit reliability as a middleware handler.

    Install with :func:`install_reliability`; every *application* message
    the node sends becomes reliable.  Control traffic (this layer's acks)
    and already-sequenced retransmissions are left alone.

    Args:
        runtime: the node's runtime.
        scheduler: timers for retransmission.
        retry_interval: seconds between retransmissions.
        max_retries: attempts before giving up (counted per message).
        on_dead_letter: optional callback ``(destination, number, data)``
            invoked when a message exhausts its retries unacked -- the
            abandonment is no longer silent (experiment E12 counts it).
    """

    def __init__(
        self,
        runtime: SoapRuntime,
        scheduler: Scheduler,
        retry_interval: float = 0.5,
        max_retries: int = 8,
        on_dead_letter: Optional[Callable[[str, int, bytes], None]] = None,
    ) -> None:
        if retry_interval <= 0:
            raise ValueError(f"retry_interval must be positive: {retry_interval!r}")
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0: {max_retries!r}")
        self.runtime = runtime
        self.scheduler = scheduler
        self._health_stats = hub_of(runtime.metrics).health
        self.retry_interval = retry_interval
        self.max_retries = max_retries
        self.on_dead_letter = on_dead_letter
        #: Messages abandoned after ``max_retries`` without an ack.
        self.dead_letters = 0
        self.channel_id = f"urn:ws-rm:channel:{uuid.uuid4()}"
        self._next_number = 0
        # In-flight: (destination, number) -> [bytes, retries_left]
        self._unacked: Dict[Tuple[str, int], list] = {}
        # Receiver-side dedup: channel -> delivered numbers.
        self._delivered: Dict[str, Set[int]] = {}

    # -- sender side -----------------------------------------------------------

    def on_outbound(self, context: MessageContext) -> bool:
        """Sequence the outgoing message and arm its retransmit timer."""
        if context.addressing.action == ACK_ACTION:
            return True  # our own control traffic
        if context.envelope.header(_SEQUENCE_TAG) is not None:
            return True  # already sequenced (retransmission path)
        destination = context.destination
        if destination is None:
            return True
        number = self._next_number
        self._next_number += 1
        context.envelope.add_header(_sequence_header(self.channel_id, number))
        # Serialize now (after the full chain will run, the runtime
        # re-applies addressing; capture bytes at delivery time instead).
        context.properties["rm.number"] = number
        self.runtime.metrics.counter("rm.sequenced").inc()
        # Defer capturing the wire bytes until the send completes: schedule
        # at time zero is unnecessary -- we rebuild the bytes here with the
        # current addressing state, which send() has already finalized.
        context.addressing.apply(context.envelope)
        data = context.envelope.to_bytes()
        key = (destination, number)
        self._unacked[key] = [data, self.max_retries]
        self.scheduler.call_after(
            self.retry_interval, lambda: self._retransmit(key)
        )
        return True

    def _retransmit(self, key: Tuple[str, int]) -> None:
        entry = self._unacked.get(key)
        if entry is None:
            return  # acked
        data, retries_left = entry
        if retries_left <= 0:
            del self._unacked[key]
            self.dead_letters += 1
            self._health_stats.dead_letters += 1
            self.runtime.metrics.counter("rm.gave-up").inc()
            if self.on_dead_letter is not None:
                destination, number = key
                self.on_dead_letter(destination, number, data)
            return
        entry[1] = retries_left - 1
        self.runtime.metrics.counter("rm.retransmit").inc()
        self.runtime.transport.send(key[0], data)
        self.scheduler.call_after(
            self.retry_interval, lambda: self._retransmit(key)
        )

    @property
    def unacked_count(self) -> int:
        return len(self._unacked)

    # -- receiver side -----------------------------------------------------------

    def on_inbound(self, context: MessageContext) -> bool:
        """Ack sequenced arrivals, consume duplicates and acks."""
        if context.addressing.action == ACK_ACTION:
            self._handle_ack(context)
            return False
        try:
            sequence = _parse_sequence(context.envelope)
        except ValueError:
            self.runtime.metrics.counter("rm.malformed").inc()
            return False
        if sequence is None:
            return True  # unsequenced traffic passes through
        channel, number = sequence
        self._send_ack(context, channel, number)
        delivered = self._delivered.setdefault(channel, set())
        if number in delivered:
            self.runtime.metrics.counter("rm.duplicate").inc()
            return False
        delivered.add(number)
        return True

    def _send_ack(self, context: MessageContext, channel: str, number: int) -> None:
        source = context.source
        if source is None:
            return
        scheme, authority, _ = split_address(source)
        self.runtime.metrics.counter("rm.ack-sent").inc()
        self.runtime.send(
            f"{scheme}://{authority}/rm",
            ACK_ACTION,
            value={"channel": channel, "number": number,
                   "acker": self.runtime.base_address},
        )

    def _handle_ack(self, context: MessageContext) -> None:
        from repro.soap.serializer import from_element

        body = context.envelope.body
        if body is None or body.get("t") is None:
            return
        try:
            value = from_element(body)
        except Exception:
            self.runtime.metrics.counter("rm.malformed").inc()
            return
        if not isinstance(value, dict):
            return
        number = value.get("number")
        acker = value.get("acker")
        if not isinstance(number, int) or not isinstance(acker, str):
            return
        # The ack names the acker's base address; our in-flight keys are
        # full destination addresses on that authority.
        for key in [key for key in self._unacked if key[1] == number]:
            destination, _ = key
            if destination.startswith(acker):
                del self._unacked[key]
                self.runtime.metrics.counter("rm.acked").inc()


def install_reliability(
    runtime: SoapRuntime,
    scheduler: Scheduler,
    retry_interval: float = 0.5,
    max_retries: int = 8,
    on_dead_letter: Optional[Callable[[str, int, bytes], None]] = None,
) -> ReliableLayer:
    """Install a :class:`ReliableLayer` at the transport end of the stack."""
    layer = ReliableLayer(
        runtime, scheduler, retry_interval, max_retries,
        on_dead_letter=on_dead_letter,
    )
    runtime.chain.add_first(layer)
    return layer
