"""Node introspection: the ``/status`` port type.

Production middleware exposes its internals; this service reports a
node's runtime state over SOAP itself -- mounted services, metric
counters, and (when a gossip layer is attached) per-activity engine state
(style, view size, seen count, registration state).  The CLI and the
operations example query it like any other service.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.obs.hub import NodeScope, hub_of
from repro.soap import namespaces as ns
from repro.soap.handler import MessageContext
from repro.soap.runtime import SoapRuntime
from repro.soap.service import Service, operation

STATUS_ACTION = f"{ns.WSGOSSIP}/status/Get"
STATUS_SERVICE_PATH = "/status"


class StatusService(Service):
    """Reports runtime and gossip-layer state.

    Args:
        runtime: the node's runtime.
        gossip_layer: optional :class:`repro.core.handler.GossipLayer`
            whose engines should be included.
        extra: optional callable returning additional application-defined
            status fields (merged under ``"app"``).
    """

    def __init__(
        self,
        runtime: SoapRuntime,
        gossip_layer=None,
        extra=None,
    ) -> None:
        super().__init__()
        self._runtime = runtime
        self._gossip_layer = gossip_layer
        self._extra = extra

    def snapshot(self) -> Dict[str, Any]:
        """The status document (also returned by the SOAP operation)."""
        # Deployment-wide counters come from the hub behind the node's
        # metrics sink (pre-hub behaviour: the shared registry); when the
        # sink is node-scoped, this node's own counts are reported too.
        metrics = self._runtime.metrics
        status: Dict[str, Any] = {
            "address": self._runtime.base_address,
            "services": self._runtime.service_paths(),
            "counters": dict(hub_of(metrics).counters()),
        }
        if isinstance(metrics, NodeScope):
            status["node_counters"] = dict(metrics.counters())
        if self._gossip_layer is not None:
            activities = {}
            for engine in self._gossip_layer.engines():
                activities[engine.activity_id] = {
                    "style": engine.params.style.value,
                    "fanout": engine.params.fanout,
                    "rounds": engine.params.rounds,
                    "ordered": engine.params.ordered,
                    "registered": engine.registered,
                    "view_size": len(engine.current_view()),
                    "seen": engine.store.seen_count,
                    "retained": len(engine.store),
                }
            status["activities"] = activities
        if self._extra is not None:
            extra = self._extra()
            if isinstance(extra, dict):
                status["app"] = extra
        return status

    @operation(STATUS_ACTION)
    def get(self, context: MessageContext, value: Any) -> Dict[str, Any]:
        """SOAP operation: return the status document."""
        return self.snapshot()


def install_status(
    runtime: SoapRuntime, gossip_layer=None, extra=None
) -> StatusService:
    """Mount a :class:`StatusService` at the conventional ``/status``."""
    service = StatusService(runtime, gossip_layer=gossip_layer, extra=extra)
    runtime.add_service(STATUS_SERVICE_PATH, service)
    return service
