"""Service base class with action-based operation routing.

A service is a class whose methods are marked with :func:`operation`,
keyed by WS-A action URI.  The runtime dispatches inbound messages to the
operation matching their ``wsa:Action`` header.

Operations receive ``(context, value)`` where ``value`` is the
deserialized body payload (or ``None`` for an empty body), and may return:

* ``None`` -- one-way, no reply;
* a plain Python value -- the runtime wraps it in a ``<tag>Response`` body
  with action ``<action>Response``;
* a :class:`Reply` -- full control over reply action/tag/value.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

from repro.soap.handler import MessageContext


@dataclass
class Reply:
    """Explicit reply specification from an operation."""

    value: Any
    action: Optional[str] = None
    tag: Optional[str] = None


_OPERATION_ATTR = "_ws_operation_action"


def operation(action: str) -> Callable[[Callable], Callable]:
    """Mark a method as the operation handling WS-A ``action``."""

    def mark(method: Callable) -> Callable:
        setattr(method, _OPERATION_ATTR, action)
        return method

    return mark


class Service:
    """Base class for SOAP services.

    Subclasses define operations with the :func:`operation` decorator and
    are mounted on a runtime at a path::

        class Ping(Service):
            @operation("urn:example:ping")
            def ping(self, context, value):
                return {"echo": value}

        runtime.add_service("/ping", Ping())
    """

    def __init__(self) -> None:
        self._operations: Dict[str, Callable[[MessageContext, Any], Any]] = {}
        for name in dir(type(self)):
            method = getattr(self, name, None)
            action = getattr(method, _OPERATION_ATTR, None)
            if action is not None:
                if action in self._operations:
                    raise ValueError(f"duplicate operation for action {action!r}")
                self._operations[action] = method

    def add_operation(
        self, action: str, handler: Callable[[MessageContext, Any], Any]
    ) -> None:
        """Register an operation at runtime (used by application nodes that
        bind callbacks rather than subclassing).

        Raises:
            ValueError: if the action is already handled.
        """
        if action in self._operations:
            raise ValueError(f"duplicate operation for action {action!r}")
        self._operations[action] = handler

    def actions(self) -> Dict[str, Callable[[MessageContext, Any], Any]]:
        """Mapping of action URI to bound operation method."""
        return dict(self._operations)

    def lookup(self, action: str) -> Optional[Callable[[MessageContext, Any], Any]]:
        """The operation for ``action``, or ``None``."""
        return self._operations.get(action)
