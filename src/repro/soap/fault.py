"""SOAP faults, both as Python exceptions and as wire XML.

A :class:`SoapFault` raised inside a service operation is converted by the
runtime into a fault reply; on the client side a fault reply parses back
into the same exception type.
"""

from __future__ import annotations

import enum
import xml.etree.ElementTree as ET
from typing import Optional

from repro.soap import namespaces as ns
from repro.xmlutil import qname


class FaultCode(enum.Enum):
    """The standard SOAP fault code families."""

    VERSION_MISMATCH = "VersionMismatch"
    MUST_UNDERSTAND = "MustUnderstand"
    SENDER = "Sender"  # SOAP 1.1 "Client"
    RECEIVER = "Receiver"  # SOAP 1.1 "Server"

    @property
    def soap11_name(self) -> str:
        if self is FaultCode.SENDER:
            return "Client"
        if self is FaultCode.RECEIVER:
            return "Server"
        return self.value

    @classmethod
    def from_wire(cls, name: str) -> "FaultCode":
        bare = name.rpartition(":")[2]
        mapping = {
            "Client": cls.SENDER,
            "Server": cls.RECEIVER,
            "Sender": cls.SENDER,
            "Receiver": cls.RECEIVER,
            "MustUnderstand": cls.MUST_UNDERSTAND,
            "VersionMismatch": cls.VERSION_MISMATCH,
        }
        try:
            return mapping[bare]
        except KeyError:
            raise ValueError(f"unknown fault code: {name!r}") from None


class SoapFault(Exception):
    """A SOAP fault.

    Attributes:
        code: standard fault code family.
        reason: human-readable fault string.
        detail: optional application-specific detail string.
    """

    def __init__(
        self,
        code: FaultCode,
        reason: str,
        detail: Optional[str] = None,
    ) -> None:
        super().__init__(reason)
        self.code = code
        self.reason = reason
        self.detail = detail

    # -- wire form ----------------------------------------------------------

    def to_element(self, version: str = "1.1") -> ET.Element:
        """Build the ``Fault`` body element for the given SOAP version."""
        if version == "1.1":
            fault = ET.Element(qname(ns.SOAP11_ENV, "Fault"))
            # SOAP 1.1 faultcode/faultstring are unqualified by spec.
            code = ET.SubElement(fault, "faultcode")
            code.text = f"soap:{self.code.soap11_name}"
            reason = ET.SubElement(fault, "faultstring")
            reason.text = self.reason
            if self.detail is not None:
                detail = ET.SubElement(fault, "detail")
                detail.text = self.detail
            return fault
        fault = ET.Element(qname(ns.SOAP12_ENV, "Fault"))
        code = ET.SubElement(fault, qname(ns.SOAP12_ENV, "Code"))
        value = ET.SubElement(code, qname(ns.SOAP12_ENV, "Value"))
        value.text = f"soap:{self.code.value}"
        reason = ET.SubElement(fault, qname(ns.SOAP12_ENV, "Reason"))
        text = ET.SubElement(reason, qname(ns.SOAP12_ENV, "Text"))
        text.text = self.reason
        if self.detail is not None:
            detail = ET.SubElement(fault, qname(ns.SOAP12_ENV, "Detail"))
            detail.text = self.detail
        return fault

    @classmethod
    def from_element(cls, fault: ET.Element) -> "SoapFault":
        """Parse a ``Fault`` element from either SOAP version.

        Raises:
            ValueError: if the element does not look like a fault.
        """
        if fault.tag == qname(ns.SOAP11_ENV, "Fault"):
            code_text = fault.findtext("faultcode") or "Server"
            reason = fault.findtext("faultstring") or ""
            detail = fault.findtext("detail")
            return cls(FaultCode.from_wire(code_text), reason, detail)
        if fault.tag == qname(ns.SOAP12_ENV, "Fault"):
            code_text = (
                fault.findtext(
                    f"{qname(ns.SOAP12_ENV, 'Code')}/{qname(ns.SOAP12_ENV, 'Value')}"
                )
                or "Receiver"
            )
            reason = (
                fault.findtext(
                    f"{qname(ns.SOAP12_ENV, 'Reason')}/{qname(ns.SOAP12_ENV, 'Text')}"
                )
                or ""
            )
            detail = fault.findtext(qname(ns.SOAP12_ENV, "Detail"))
            return cls(FaultCode.from_wire(code_text), reason, detail)
        raise ValueError(f"not a SOAP Fault element: {fault.tag!r}")

    def __repr__(self) -> str:
        return f"SoapFault({self.code.value!r}, {self.reason!r})"


def sender_fault(reason: str, detail: Optional[str] = None) -> SoapFault:
    """Shorthand for a Sender (caller error) fault."""
    return SoapFault(FaultCode.SENDER, reason, detail)


def receiver_fault(reason: str, detail: Optional[str] = None) -> SoapFault:
    """Shorthand for a Receiver (service error) fault."""
    return SoapFault(FaultCode.RECEIVER, reason, detail)
