"""Typed client proxies over the one-way runtime.

Application code that talks to a known service is nicer with a proxy than
with raw ``runtime.send`` calls::

    quotes = ServiceProxy(runtime, "sim://market/quotes", {
        "get_quote": "urn:stock/GetQuote",
        "subscribe": "urn:stock/Subscribe",
    })
    pending = quotes.get_quote({"symbol": "SWX"})
    ...  # drive the event loop / wait
    price = pending.value

:class:`PendingReply` adapts the callback style to a future-ish object
that works in both worlds: poll ``done``/``value`` inside the simulator,
or ``wait()`` on real transports.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Optional

from repro.soap.fault import SoapFault
from repro.soap.runtime import SoapRuntime


class PendingReply:
    """A reply that has not arrived yet.

    Attributes become meaningful once :attr:`done` is True.  A fault reply
    is surfaced by :attr:`value` raising the :class:`SoapFault`.
    """

    def __init__(self) -> None:
        self._event = threading.Event()
        self._value: Any = None
        self._fault: Optional[SoapFault] = None

    def _resolve(self, context, value: Any) -> None:
        if isinstance(value, SoapFault):
            self._fault = value
        else:
            self._value = value
        self._event.set()

    @property
    def done(self) -> bool:
        return self._event.is_set()

    @property
    def value(self) -> Any:
        """The reply payload.

        Raises:
            RuntimeError: if the reply has not arrived yet.
            SoapFault: if the service faulted.
        """
        if not self._event.is_set():
            raise RuntimeError("reply has not arrived yet")
        if self._fault is not None:
            raise self._fault
        return self._value

    @property
    def fault(self) -> Optional[SoapFault]:
        return self._fault if self._event.is_set() else None

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block a real thread until the reply lands (HTTP transports).

        Never call this inside a simulation -- drive the simulator instead
        and poll :attr:`done`.
        """
        return self._event.wait(timeout)


class ServiceProxy:
    """Callable stubs for a remote service's operations.

    Args:
        runtime: the local runtime to send through.
        address: the remote service address.
        operations: mapping of Python method name to WS-A action URI.

    Each generated method takes the payload value and keyword ``one_way``
    (default False).  Two-way calls return a :class:`PendingReply`;
    one-way calls return the ``MessageID``.
    """

    def __init__(
        self,
        runtime: SoapRuntime,
        address: str,
        operations: Dict[str, str],
    ) -> None:
        if not operations:
            raise ValueError("a proxy needs at least one operation")
        self._runtime = runtime
        self._address = address
        self._operations = dict(operations)
        for name in operations:
            if hasattr(type(self), name) or name.startswith("_"):
                raise ValueError(f"operation name not allowed: {name!r}")

    def __getattr__(self, name: str):
        try:
            action = self._operations[name]
        except KeyError:
            raise AttributeError(name) from None

        def call(value: Any = None, one_way: bool = False):
            if one_way:
                return self._runtime.send(self._address, action, value=value)
            pending = PendingReply()
            self._runtime.send(
                self._address, action, value=value, on_reply=pending._resolve
            )
            return pending

        call.__name__ = name
        return call

    def operations(self) -> Dict[str, str]:
        """Mapping of method name to action URI."""
        return dict(self._operations)

    def __repr__(self) -> str:
        return f"ServiceProxy({self._address!r}, ops={sorted(self._operations)})"
