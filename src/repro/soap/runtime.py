"""The per-node SOAP engine: send, receive, dispatch.

One :class:`SoapRuntime` runs on every node (simulated or real).  It is
transport-agnostic: anything with a ``send(address, data: bytes)`` method
works -- :class:`repro.transport.inmem.SimTransport` inside the simulator,
:class:`repro.transport.http.HttpTransport` for real deployments.

All messaging is one-way WS-Addressing style (see :mod:`repro.wsa`);
request/response is built from two one-way messages correlated by
``MessageID`` / ``RelatesTo``.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import Any, Callable, Dict, Optional, Protocol, Tuple, Union

from repro.simnet.metrics import MetricsRegistry
from repro.soap import namespaces as ns
from repro.soap.envelope import Envelope, EnvelopeError
from repro.soap.fault import FaultCode, SoapFault
from repro.soap.handler import Direction, HandlerChain, MessageContext
from repro.soap.serializer import SerializationError, from_element, to_element
from repro.soap.service import Reply, Service
from repro.wsa.addressing import AddressingHeaders, EndpointReference, new_message_id
from repro.xmlutil import qname

ReplyCallback = Callable[[MessageContext, Any], None]


class Transport(Protocol):
    """What the runtime needs from a transport binding."""

    def send(self, address: str, data: bytes) -> None:  # pragma: no cover
        """Deliver ``data`` to the node addressed by ``address``, best effort."""
        ...


def _default_tag(action: str) -> str:
    """Derive a body element tag from an action URI.

    ``urn:ws-gossip:2008:core/Gossip`` -> ``{urn:ws-gossip:2008:core}Gossip``.
    """
    base, sep, local = action.rpartition("/")
    if not sep or not local:
        return qname(ns.WSGOSSIP, action.rpartition(":")[2] or "Message")
    return qname(base, local)


class SoapRuntime:
    """Send/receive engine bound to one base address.

    Args:
        base_address: this node's address, e.g. ``sim://node-1`` or
            ``http://127.0.0.1:8001``.  Service paths are appended to it.
        transport: the wire binding.
        metrics: optional shared metrics registry.
    """

    def __init__(
        self,
        base_address: str,
        transport: Transport,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.base_address = base_address.rstrip("/")
        self.transport = transport
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.chain = HandlerChain()
        self._services: Dict[str, Service] = {}
        self._reply_callbacks: Dict[str, ReplyCallback] = {}
        self._preparse_gates: list = []

    def reset_volatile(self) -> None:
        """Drop in-flight conversational state (pending reply callbacks).

        Part of a crash-faithful process restart: the services, handler
        chain and preparse gates are configuration and survive, but a
        reply to a request sent before the crash must find no callback
        waiting -- the restarted process never sent it.
        """
        self._reply_callbacks.clear()

    # -- service hosting ------------------------------------------------------

    def add_service(self, path: str, service: Service) -> None:
        """Mount ``service`` at ``path`` (e.g. ``"/gossip"``).

        Raises:
            ValueError: if the path is taken or not absolute.
        """
        if not path.startswith("/"):
            raise ValueError(f"service path must start with '/': {path!r}")
        if path in self._services:
            raise ValueError(f"service path already mounted: {path!r}")
        self._services[path] = service

    def service_at(self, path: str) -> Optional[Service]:
        """The service mounted at ``path``, or ``None``."""
        return self._services.get(path)

    def service_paths(self) -> list:
        """Paths of every mounted service, sorted."""
        return sorted(self._services)

    def address_of(self, path: str) -> str:
        """Full address of a mounted path."""
        return self.base_address + path

    def epr(self, path: str, **reference_parameters: str) -> EndpointReference:
        """Endpoint reference for one of this node's services."""
        return EndpointReference(self.address_of(path), dict(reference_parameters))

    # -- sending ----------------------------------------------------------------

    def send(
        self,
        to: Union[str, EndpointReference],
        action: str,
        value: Any = None,
        tag: Optional[str] = None,
        reply_to_path: Optional[str] = None,
        relates_to: Optional[str] = None,
        extra_headers: Optional[list] = None,
        on_reply: Optional[ReplyCallback] = None,
    ) -> str:
        """Send a one-way message; returns its ``MessageID``.

        Args:
            to: destination address or EPR (EPR reference parameters are
                copied into headers, per WS-A).
            action: WS-A action URI; also names the body element by default.
            value: payload serialized via :mod:`repro.soap.serializer`
                (``None`` for an empty-bodied message).
            tag: override the body element tag.
            reply_to_path: local service path replies should go to; required
                when ``on_reply`` is given (defaults to ``"/replies"``).
            relates_to: correlate this message to a previous MessageID.
            extra_headers: additional header elements (e.g. gossip headers).
            on_reply: one-shot callback ``(context, value)`` invoked when a
                message relating to this one arrives; on a fault reply the
                value is the :class:`SoapFault`.
        """
        if isinstance(to, EndpointReference):
            destination = to.address
            reference_headers = [
                self._reference_parameter_header(key, text)
                for key, text in sorted(to.reference_parameters.items())
            ]
        else:
            destination = to
            reference_headers = []

        if isinstance(value, ET.Element):
            body = value  # pre-built XML body (e.g. a CoordinationContext)
        else:
            body = to_element(tag or _default_tag(action), value)
        envelope = Envelope(body=body)
        for element in reference_headers:
            envelope.add_header(element)
        if extra_headers:
            for element in extra_headers:
                envelope.add_header(element)

        message_id = new_message_id()
        addressing = AddressingHeaders(
            to=destination,
            action=action,
            message_id=message_id,
            relates_to=relates_to,
        )
        if on_reply is not None or reply_to_path is not None:
            addressing.reply_to = self.epr(reply_to_path or "/replies")
        if on_reply is not None:
            self._reply_callbacks[message_id] = on_reply

        self._dispatch_outbound(envelope, addressing, destination)
        return message_id

    def cancel_reply(self, message_id: str) -> bool:
        """Drop a pending reply callback (e.g. when retrying a request
        under a fresh MessageID).  Returns True if one was registered."""
        return self._reply_callbacks.pop(message_id, None) is not None

    @property
    def pending_replies(self) -> int:
        """Number of reply callbacks still waiting."""
        return len(self._reply_callbacks)

    def forward_envelope(self, to: str, envelope: Envelope) -> str:
        """Forward an existing envelope to a new destination.

        Used by the gossip layer: the body and non-addressing headers are
        preserved (the application invocation travels untouched); the WS-A
        ``To`` and ``MessageID`` are rewritten for the new hop.  Returns the
        fresh ``MessageID``.
        """
        addressing = AddressingHeaders.extract(envelope)
        addressing.to = to
        addressing.message_id = new_message_id()
        addressing.reply_to = None
        self._dispatch_outbound(envelope, addressing, to)
        return addressing.message_id

    def send_bytes(self, destination: str, data: bytes) -> None:
        """Send pre-serialized envelope bytes -- the zero-copy fast path.

        Used by the gossip layer to fan one encoded payload out to many
        peers: the same ``bytes`` object goes to every target, so the XML
        encode is paid once per message instead of once per copy.  The
        outbound handler chain is bypassed (the bytes are already the final
        wire form); dispatch at the receiver relies on path-based routing,
        which :meth:`_path_of` supports for any ``To`` header.
        """
        self.metrics.counter("soap.sent").inc()
        self.metrics.counter("soap.sent-shared").inc()
        self.transport.send(destination, data)

    def send_fault(
        self,
        to: Union[str, EndpointReference],
        fault: SoapFault,
        relates_to: Optional[str] = None,
    ) -> str:
        """Send a fault message (used by the dispatcher; public for tests)."""
        destination = to.address if isinstance(to, EndpointReference) else to
        envelope = Envelope(body=fault.to_element("1.1"))
        message_id = new_message_id()
        addressing = AddressingHeaders(
            to=destination,
            action=f"{ns.WSA}/fault",
            message_id=message_id,
            relates_to=relates_to,
        )
        self._dispatch_outbound(envelope, addressing, destination)
        return message_id

    def _dispatch_outbound(
        self, envelope: Envelope, addressing: AddressingHeaders, destination: str
    ) -> None:
        addressing.apply(envelope)
        context = MessageContext(
            envelope,
            Direction.OUTBOUND,
            addressing=addressing,
            destination=destination,
            runtime=self,
        )
        if not self.chain.run_outbound(context):
            self.metrics.counter("soap.outbound.consumed").inc()
            return
        # Handlers may have edited addressing; re-apply before serializing.
        context.addressing.apply(context.envelope)
        data = context.envelope.to_bytes()
        self.metrics.counter("soap.sent").inc()
        self.transport.send(context.destination, data)

    def _reference_parameter_header(self, key: str, text: str) -> ET.Element:
        element = ET.Element(qname(ns.WSGOSSIP, key))
        element.text = text
        return element

    # -- receiving ------------------------------------------------------------

    def add_preparse_gate(self, gate: Callable[[bytes, Optional[str]], bool]) -> None:
        """Install a pre-parse gate on the receive path.

        A gate sees the raw wire bytes before any XML parse and returns
        ``False`` to consume the message (no parse, no dispatch).  The
        gossip layer uses this to drop already-seen messages with a cheap
        byte scan -- the receive-side half of the zero-copy fast path.
        """
        self._preparse_gates.append(gate)

    def receive(self, data: bytes, source: Optional[str] = None) -> None:
        """Entry point for the transport: process one wire message.

        Malformed envelopes are counted and dropped (a real stack would
        return an HTTP-level error; there is no one to fault back to).
        """
        for gate in self._preparse_gates:
            if not gate(data, source):
                self.metrics.counter("soap.preparse-dropped").inc()
                return
        try:
            envelope = Envelope.from_bytes(data)
        except EnvelopeError:
            self.metrics.counter("soap.malformed").inc()
            return
        self.metrics.counter("soap.received").inc()

        addressing = AddressingHeaders.extract(envelope)
        context = MessageContext(
            envelope,
            Direction.INBOUND,
            addressing=addressing,
            source=source,
            destination=addressing.to,
            runtime=self,
        )
        if not self.chain.run_inbound(context):
            self.metrics.counter("soap.inbound.consumed").inc()
            return
        self.deliver_local(context)

    def deliver_local(self, context: MessageContext) -> None:
        """Dispatch a context past the handler chain: reply correlation
        first, then service operation dispatch.

        Public so the gossip handler can deliver a message locally while
        also re-routing copies to peers.
        """
        addressing = context.addressing
        if addressing.relates_to and self._handle_reply(context):
            return
        self._dispatch_to_service(context)

    def _handle_reply(self, context: MessageContext) -> bool:
        callback = self._reply_callbacks.pop(context.addressing.relates_to, None)
        if callback is None:
            return False
        envelope = context.envelope
        if envelope.is_fault:
            value: Any = SoapFault.from_element(envelope.body)
        else:
            try:
                value = self._body_value(envelope)
            except SerializationError:
                self.metrics.counter("soap.malformed-payload").inc()
                value = SoapFault(
                    FaultCode.SENDER, "reply payload failed to deserialize"
                )
        callback(context, value)
        return True

    def _dispatch_to_service(self, context: MessageContext) -> None:
        addressing = context.addressing
        path = self._path_of(addressing.to)
        service = self._services.get(path) if path is not None else None
        action = addressing.action

        if service is None or action is None:
            self.metrics.counter("soap.no-service").inc()
            self._maybe_fault(
                context,
                SoapFault(FaultCode.SENDER, f"no service at {addressing.to!r}"),
            )
            return
        op = service.lookup(action)
        if op is None:
            self.metrics.counter("soap.no-operation").inc()
            self._maybe_fault(
                context,
                SoapFault(FaultCode.SENDER, f"no operation for action {action!r}"),
            )
            return

        try:
            value = self._body_value(context.envelope)
        except SerializationError:
            self.metrics.counter("soap.malformed-payload").inc()
            self._maybe_fault(
                context,
                SoapFault(FaultCode.SENDER, "payload failed to deserialize"),
            )
            return
        try:
            result = op(context, value)
        except SoapFault as fault:
            self.metrics.counter("soap.faulted").inc()
            self._maybe_fault(context, fault)
            return
        if result is None:
            return
        self._send_reply(context, result)

    def _send_reply(self, context: MessageContext, result: Any) -> None:
        reply_to = context.addressing.reply_to
        if reply_to is None:
            self.metrics.counter("soap.reply-dropped").inc()
            return
        if isinstance(result, Reply):
            action = result.action or f"{context.addressing.action}Response"
            tag = result.tag
            value = result.value
        else:
            action = f"{context.addressing.action}Response"
            tag = None
            value = result
        self.send(
            reply_to,
            action,
            value=value,
            tag=tag,
            relates_to=context.addressing.message_id,
        )

    def _maybe_fault(self, context: MessageContext, fault: SoapFault) -> None:
        reply_to = context.addressing.reply_to
        if reply_to is not None:
            self.send_fault(reply_to, fault, relates_to=context.addressing.message_id)

    # -- small helpers -----------------------------------------------------------

    def _path_of(self, to: Optional[str]) -> Optional[str]:
        if to is None:
            return None
        if not to.startswith(self.base_address):
            # Addressed to someone else; in a correct deployment the
            # transport would not have delivered it here.  Dispatch by path
            # anyway (virtual hosting), matching permissive 2008 stacks.
            path = "/" + to.rstrip("/").rpartition("/")[2]
            return path
        remainder = to[len(self.base_address):]
        return remainder if remainder.startswith("/") else None

    @staticmethod
    def _body_value(envelope: Envelope) -> Any:
        body = envelope.body
        if body is None or body.get("t") is None:
            return None
        return from_element(body)

    def __repr__(self) -> str:
        return (
            f"SoapRuntime({self.base_address!r}, services={sorted(self._services)})"
        )
