"""SOAP envelope construction and parsing.

Supports both SOAP 1.1 (the 2008-era default the paper's stack would have
used) and SOAP 1.2.  An :class:`Envelope` owns a list of header blocks and a
single body element; serialization produces real on-the-wire XML, and
parsing round-trips it.

Serialization is **memoized**: ``to_bytes()`` encodes once and returns the
cached wire bytes until the envelope is mutated through its own API
(``add_header`` / ``remove_header`` / assigning ``body``), and
``from_bytes()`` seeds the cache with the original wire bytes -- so a
message that is received, stored and forwarded unchanged never pays a
second XML encode.  Code that mutates a header *element* in place (rather
than replacing it) must call :meth:`Envelope.invalidate`; nothing in this
repository does.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import Dict, List, Optional

from repro.obs.hub import current_hub
from repro.soap import namespaces as ns
from repro.xmlutil import canonical_bytes, local_name, parse_bytes, qname
from repro.xmlutil.text import XmlParseError

_ENVELOPE_NS = {"1.1": ns.SOAP11_ENV, "1.2": ns.SOAP12_ENV}
_NS_TO_VERSION = {uri: version for version, uri in _ENVELOPE_NS.items()}


class EnvelopeError(ValueError):
    """Raised when bytes are well-formed XML but not a SOAP envelope."""


# Cross-envelope parse sharing: a gossip fan-out hands the *same* wire
# bytes to several simulated receivers, and only the first one needs to
# pay the XML parse -- later receivers of equal bytes reuse the element
# tree.  Safe because nothing in this repository mutates a header/body
# *element* in place (see the module docstring); envelopes built from a
# shared tree still get their own header lists.  Bounded by wholesale
# clearing: the cache is a throughput optimization, not a correctness
# feature.
_PARSE_CACHE: Dict[bytes, ET.Element] = {}
_PARSE_CACHE_LIMIT = 2048


def clear_parse_cache() -> None:
    """Drop all shared parse-cache entries (tests/benchmarks call this)."""
    _PARSE_CACHE.clear()


class Envelope:
    """A SOAP envelope: header blocks plus one body element.

    Example:
        >>> body = ET.Element("{urn:example}ping")
        >>> env = Envelope(body=body)
        >>> round_tripped = Envelope.from_bytes(env.to_bytes())
        >>> round_tripped.body.tag
        '{urn:example}ping'
    """

    def __init__(
        self,
        body: Optional[ET.Element] = None,
        headers: Optional[List[ET.Element]] = None,
        version: str = "1.1",
    ) -> None:
        if version not in _ENVELOPE_NS:
            raise ValueError(f"unsupported SOAP version: {version!r}")
        self.version = version
        self._headers: List[ET.Element] = list(headers) if headers else []
        self._body = body
        self._wire: Optional[bytes] = None

    @property
    def envelope_namespace(self) -> str:
        return _ENVELOPE_NS[self.version]

    # -- memoization ---------------------------------------------------------

    def invalidate(self) -> None:
        """Drop the cached wire bytes; the next ``to_bytes()`` re-encodes."""
        self._wire = None

    @property
    def body(self) -> Optional[ET.Element]:
        return self._body

    @body.setter
    def body(self, element: Optional[ET.Element]) -> None:
        self._body = element
        self._wire = None

    @property
    def headers(self) -> List[ET.Element]:
        """The header-block list.  Replace blocks via ``add_header`` /
        ``remove_header``; mutating the list (or a block) directly requires
        an explicit :meth:`invalidate`."""
        return self._headers

    @headers.setter
    def headers(self, elements: List[ET.Element]) -> None:
        self._headers = elements
        self._wire = None

    # -- header access ------------------------------------------------------

    def add_header(self, element: ET.Element) -> None:
        """Append a header block."""
        self._headers.append(element)
        self._wire = None

    def header(self, tag: str) -> Optional[ET.Element]:
        """First header block with the given ElementTree tag, or ``None``."""
        for element in self._headers:
            if element.tag == tag:
                return element
        return None

    def headers_named(self, tag: str) -> List[ET.Element]:
        """All header blocks with the given tag."""
        return [element for element in self._headers if element.tag == tag]

    def remove_header(self, tag: str) -> int:
        """Remove all header blocks with the given tag; returns how many."""
        before = len(self._headers)
        self._headers = [element for element in self._headers if element.tag != tag]
        removed = before - len(self._headers)
        if removed:
            self._wire = None
        return removed

    def header_text(self, tag: str) -> Optional[str]:
        """Text content of the first matching header, or ``None``."""
        element = self.header(tag)
        return element.text if element is not None else None

    # -- body helpers --------------------------------------------------------

    @property
    def is_fault(self) -> bool:
        """True when the body is a SOAP Fault element."""
        return self._body is not None and local_name(self._body.tag) == "Fault"

    # -- serialization ---------------------------------------------------------

    def to_element(self) -> ET.Element:
        """Build the ``Envelope`` element tree."""
        env_ns = self.envelope_namespace
        root = ET.Element(qname(env_ns, "Envelope"))
        if self._headers:
            header = ET.SubElement(root, qname(env_ns, "Header"))
            header.extend(self._headers)
        body = ET.SubElement(root, qname(env_ns, "Body"))
        if self._body is not None:
            body.append(self._body)
        return root

    def to_bytes(self) -> bytes:
        """Serialize to UTF-8 XML bytes with declaration.

        Memoized: returns the same ``bytes`` object until the envelope is
        mutated, so fan-out sends and store retention share one buffer.
        """
        if self._wire is not None:
            current_hub().wire.serialize_reused += 1
            return self._wire
        current_hub().wire.serialize_count += 1
        self._wire = canonical_bytes(self.to_element())
        return self._wire

    @classmethod
    def from_element(cls, root: ET.Element) -> "Envelope":
        """Build an envelope from a parsed ``Envelope`` element.

        Raises:
            EnvelopeError: if the root is not a SOAP envelope or the body
                is missing.
        """
        version = None
        if root.tag.startswith("{"):
            uri = root.tag[1:].partition("}")[0]
            version = _NS_TO_VERSION.get(uri)
        if version is None or local_name(root.tag) != "Envelope":
            raise EnvelopeError(f"not a SOAP envelope root: {root.tag!r}")
        env_ns = _ENVELOPE_NS[version]

        header_element = root.find(qname(env_ns, "Header"))
        headers = list(header_element) if header_element is not None else []

        body_element = root.find(qname(env_ns, "Body"))
        if body_element is None:
            raise EnvelopeError("SOAP envelope has no Body")
        children = list(body_element)
        if len(children) > 1:
            raise EnvelopeError(f"SOAP Body has {len(children)} children; expected <= 1")
        body = children[0] if children else None
        return cls(body=body, headers=headers, version=version)

    @classmethod
    def from_bytes(cls, data: bytes) -> "Envelope":
        """Parse wire bytes into an envelope.

        The original bytes seed the serialization cache, so an envelope
        that is parsed and re-sent unmodified is never re-encoded.

        Raises:
            EnvelopeError: malformed XML or not an envelope.
        """
        data = data if isinstance(data, bytes) else bytes(data)
        root = _PARSE_CACHE.get(data)
        if root is not None:
            current_hub().wire.parse_reused += 1
        else:
            try:
                root = parse_bytes(data)
            except XmlParseError as exc:
                raise EnvelopeError(str(exc)) from exc
            current_hub().wire.parse_count += 1
            if len(_PARSE_CACHE) >= _PARSE_CACHE_LIMIT:
                _PARSE_CACHE.clear()
            _PARSE_CACHE[data] = root
        envelope = cls.from_element(root)
        envelope._wire = data
        return envelope

    def __repr__(self) -> str:
        body_tag = self._body.tag if self._body is not None else None
        return (
            f"Envelope(version={self.version!r}, headers={len(self._headers)}, "
            f"body={body_tag!r})"
        )
