"""Asyncio real-network transports: UDP datagrams and keep-alive HTTP.

The synchronous localhost binding (:mod:`repro.transport.http`) spends a
thread per request, which caps a live mesh at a few dozen nodes.  This
module runs the same middleware stack over real sockets on **one event
loop**, so hundreds to thousands of nodes fit in a single process:

* :class:`AioUdpTransport` -- one datagram socket per node; an envelope
  (or a multi-rumor :class:`~repro.core.batch.GossipBatch` frame up to
  ``max_batch_bytes``) rides verbatim as one datagram.  Addresses look
  like ``udp://127.0.0.1:9001/app``.
* :class:`AioHttpTransport` -- HTTP/1.1 keep-alive client with a
  per-destination connection pool and multiplexed request pipelining
  (many in-flight POSTs share one socket, responses matched in FIFO
  order, the py-unsserv ``multiplex=True`` RPC idiom).
* :class:`AsyncUdpNode` / :class:`AsyncHttpNode` -- the server edges: a
  :class:`~repro.soap.runtime.SoapRuntime` fed by the loop.  The HTTP
  edge speaks the versioned ``/v1/`` node API from
  :mod:`repro.transport.edge` (``POST /v1/gossip``, ``GET /v1/metrics``,
  ``GET /v1/health``, idempotent ingest).

Both transports subclass :class:`~repro.transport.base.ResilientTransport`
and keep its whole observable contract -- bounded retry with backoff,
per-destination circuit breakers, structured
:class:`~repro.transport.base.SendOutcome` listeners, ``inject_fault`` --
but run the orchestration as a coroutine per logical send instead of
blocking a worker thread.

Sync facade: ``send(address, data)`` stays an ordinary synchronous call.
From outside the loop it schedules the send coroutine thread-safely; from
a loop callback (engine timers under :class:`AioScheduler`, inbound
dispatch) it spawns a task directly.  Existing sync callers --
``GossipLayer``, ``SoapRuntime``, the role classes -- need no changes.
When no loop is supplied, a process-wide background loop thread
(:func:`shared_loop`) hosts everything, so plain scripts and tests can
use the async transports without writing any ``async def``.
"""

from __future__ import annotations

import asyncio
import random
import socket
import threading
import time
import uuid
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.obs.export import prometheus_text
from repro.obs.hub import MetricsHub, default_hub, hub_of
from repro.simnet.metrics import HealthStats
from repro.soap.runtime import SoapRuntime
from repro.transport.base import (
    BreakerPolicy,
    CircuitBreaker,
    ResilientTransport,
    RetryPolicy,
    SendError,
    SendOutcome,
    parse_retry_after,
    split_address,
)
from repro.transport.edge import (
    GOSSIP_PATH,
    HEALTH_PATH,
    IDEMPOTENCY_KEY_HEADER,
    JSON_CONTENT_TYPE,
    LEGACY_METRICS_PATH,
    METRICS_PATH,
    PROMETHEUS_CONTENT_TYPE,
    EdgeAdmission,
    IdempotencyIndex,
    deprecation_headers,
    health_payload,
    ingest_response,
    obs_response,
    strip_query,
)

#: Largest datagram the loopback/UDP path will attempt (IPv4 ceiling).
MAX_DATAGRAM_BYTES = 65507

_STATUS_REASONS = {
    200: "OK",
    202: "Accepted",
    204: "No Content",
    404: "Not Found",
    429: "Too Many Requests",
}


# -- the shared background loop (sync facade) ---------------------------------


class LoopThread:
    """An event loop running on a daemon thread.

    Hosts the async transports for synchronous callers: the loop is
    created eagerly (so its identity is known before the thread spins up)
    and runs forever until :meth:`stop`.
    """

    def __init__(self, name: str = "repro-aio") -> None:
        self.loop = asyncio.new_event_loop()
        self._thread = threading.Thread(target=self._run, name=name, daemon=True)
        self._started = threading.Event()

    def _run(self) -> None:
        asyncio.set_event_loop(self.loop)
        self._started.set()
        self.loop.run_forever()

    def start(self) -> "LoopThread":
        if not self._thread.is_alive():
            self._thread.start()
            self._started.wait(5.0)
        return self

    def stop(self) -> None:
        """Stop the loop and join the thread (idempotent)."""
        if self._thread.is_alive():
            self.loop.call_soon_threadsafe(self.loop.stop)
            self._thread.join(timeout=5.0)


_shared_loop_lock = threading.Lock()
_shared_loop_thread: Optional[LoopThread] = None


def shared_loop() -> asyncio.AbstractEventLoop:
    """The process-wide background loop, started on first use."""
    global _shared_loop_thread
    with _shared_loop_lock:
        if _shared_loop_thread is None:
            _shared_loop_thread = LoopThread().start()
        return _shared_loop_thread.loop


def resolve_loop(loop: Optional[asyncio.AbstractEventLoop]) -> asyncio.AbstractEventLoop:
    """``loop``, else the currently running loop, else :func:`shared_loop`."""
    if loop is not None:
        return loop
    try:
        return asyncio.get_running_loop()
    except RuntimeError:
        return shared_loop()


def _on_loop(loop: asyncio.AbstractEventLoop) -> bool:
    try:
        return asyncio.get_running_loop() is loop
    except RuntimeError:
        return False


def run_on_loop(loop: asyncio.AbstractEventLoop, coro, timeout: float = 10.0):
    """Run ``coro`` on ``loop`` from a foreign thread and wait for it."""
    if _on_loop(loop):
        raise RuntimeError(
            "run_on_loop called from the loop itself; await the coroutine instead"
        )
    return asyncio.run_coroutine_threadsafe(coro, loop).result(timeout)


# -- timers -------------------------------------------------------------------


class AioScheduler:
    """The engine's :class:`~repro.core.scheduling.Scheduler` over a loop.

    ``now`` is the loop's monotonic clock; ``call_after`` maps to
    ``loop.call_later`` (scheduled thread-safely when invoked off-loop).
    ``close`` flips a flag that silences every outstanding timer --
    orderly node shutdown without having to track handles.
    """

    def __init__(self, loop: Optional[asyncio.AbstractEventLoop] = None) -> None:
        self._loop = resolve_loop(loop)
        self._closed = False

    @property
    def now(self) -> float:
        return self._loop.time()

    def call_after(self, delay: float, callback: Callable[[], None]):
        if self._closed:
            return _NullHandle()
        timer = _AioTimer(self)

        def guarded() -> None:
            if not self._closed and not timer.cancelled:
                callback()

        if _on_loop(self._loop):
            timer.bind(self._loop.call_later(delay, guarded))
        else:
            self._loop.call_soon_threadsafe(
                lambda: timer.bind(self._loop.call_later(delay, guarded))
            )
        return timer

    def close(self) -> None:
        """Silence all outstanding timers (node shutdown)."""
        self._closed = True


class _AioTimer:
    """Cancellable wrapper around a (possibly not-yet-created) TimerHandle."""

    __slots__ = ("_scheduler", "_handle", "cancelled")

    def __init__(self, scheduler: AioScheduler) -> None:
        self._scheduler = scheduler
        self._handle: Optional[asyncio.TimerHandle] = None
        self.cancelled = False

    def bind(self, handle: asyncio.TimerHandle) -> None:
        self._handle = handle
        if self.cancelled:
            handle.cancel()

    def cancel(self) -> None:
        self.cancelled = True
        if self._handle is not None:
            self._handle.cancel()


class _NullHandle:
    __slots__ = ()

    def cancel(self) -> None:
        pass


# -- the async resilient send path --------------------------------------------


class AsyncResilientTransport(ResilientTransport):
    """Shared asyncio send path: the resilient contract, one task per send.

    Subclasses implement the coroutine :meth:`_asend_once` (one delivery
    attempt, raising on failure).  Retry backoff is ``asyncio.sleep`` --
    no thread blocks -- and breaker state, fault hooks and outcome
    listeners are exactly the base class's.
    """

    def __init__(
        self,
        loop: Optional[asyncio.AbstractEventLoop] = None,
        retry: Optional[RetryPolicy] = None,
        breaker: Optional[BreakerPolicy] = None,
        rng: Optional[random.Random] = None,
        stats: Optional[HealthStats] = None,
    ) -> None:
        super().__init__(retry=retry, breaker=breaker, rng=rng, stats=stats)
        self.loop = resolve_loop(loop)
        self._tasks: set = set()
        self._queued = 0
        self._queued_lock = threading.Lock()
        self._closed = False
        self.send_errors = 0

    # -- the sync facade ------------------------------------------------------

    def send(self, address: str, data: bytes) -> None:
        """Schedule one resilient send on the loop (callable anywhere).

        Misuse (an address without a scheme) raises ``ValueError`` right
        here, synchronously, matching the base transport; wire failures
        are reported asynchronously through :class:`SendOutcome`.
        """
        split_address(address)  # validate eagerly: misuse is the caller's bug
        if self._closed:
            return  # shutting down: drop, exactly like a lost datagram
        if _on_loop(self.loop):
            self._spawn(address, data)
        else:
            with self._queued_lock:
                self._queued += 1
            self.loop.call_soon_threadsafe(self._spawn_queued, address, data)

    def _spawn_queued(self, address: str, data: bytes) -> None:
        with self._queued_lock:
            self._queued -= 1
        self._spawn(address, data)

    def _spawn(self, address: str, data: bytes) -> None:
        task = self.loop.create_task(self._asend(address, data))
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    @property
    def in_flight(self) -> int:
        """Logical sends queued or running (0 = idle)."""
        with self._queued_lock:
            return self._queued + len(self._tasks)

    def drain(self, timeout: float = 10.0) -> bool:
        """Block (off-loop) until every scheduled send finished."""
        deadline = time.monotonic() + timeout
        while self.in_flight:
            if time.monotonic() > deadline:
                return False
            time.sleep(0.002)
        return True

    async def adrain(self) -> None:
        """Await (on-loop) until every scheduled send finished."""
        while self._tasks or self._queued:
            pending = list(self._tasks)
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
            else:
                await asyncio.sleep(0.001)

    def close(self) -> None:
        """Stop accepting sends and release sockets (sync, idempotent)."""
        if self._closed:
            return
        self._closed = True
        if _on_loop(self.loop):
            self.loop.create_task(self._aclose())
        elif self.loop.is_running():
            try:
                run_on_loop(self.loop, self._aclose(), timeout=5.0)
            except Exception:
                pass

    async def aclose(self) -> None:
        self._closed = True
        await self._aclose()

    async def _aclose(self) -> None:
        for task in list(self._tasks):
            task.cancel()

    # -- the coroutine mirror of ResilientTransport._attempt ------------------

    async def _asend(self, address: str, data: bytes) -> None:
        # One token per *logical* send, stable across its retries: the HTTP
        # binding sends it as the Idempotency-Key, so a retried POST whose
        # first attempt actually landed is answered as a replay instead of
        # ingesting twice.  Distinct sends of the same bytes (gossip
        # redundancy) get distinct tokens and are never edge-deduped.
        token = uuid.uuid4().hex
        breaker = self.breaker_for(address)
        if breaker is not None:
            with self._breaker_lock:
                allowed = breaker.allow(self._clock())
            if not allowed:
                self._health_stats.sends_suppressed += 1
                self._emit(
                    SendOutcome(address, ok=False, error="circuit-open", attempts=0)
                )
                return
        attempt = 1
        while True:
            try:
                injected = self._fault_hook(address) if self._fault_hook else None
                if injected is not None:
                    raise SendError(injected, address)
                await self._asend_once(address, data, token)
            except asyncio.CancelledError:
                raise
            except Exception as exc:  # noqa: BLE001 - every failure is an outcome
                retry_after = getattr(exc, "retry_after", None)
                if retry_after is not None:
                    # Receiver-requested backoff (HTTP 429): breaker and
                    # failure counters are left alone -- the peer is
                    # alive, just saturated (see ResilientTransport.
                    # _attempt_failed, the sync twin of this branch).
                    if attempt <= self._retry.max_retries:
                        self._overload_stats.retry_after_honored += 1
                        self._health_stats.retries += 1
                        await asyncio.sleep(max(0.0, retry_after))
                        attempt += 1
                        continue
                    error = (
                        exc.reason if isinstance(exc, SendError)
                        else type(exc).__name__
                    )
                    self._emit(
                        SendOutcome(
                            address, ok=False, error=error,
                            attempts=attempt, exception=exc,
                        )
                    )
                    return
                self._health_stats.send_failures += 1
                opened = False
                if breaker is not None:
                    with self._breaker_lock:
                        breaker.record_failure(self._clock())
                        opened = breaker.state != CircuitBreaker.CLOSED
                if attempt <= self._retry.max_retries and not opened:
                    self._health_stats.retries += 1
                    await asyncio.sleep(
                        self._retry.delay(attempt, self._resilience_rng)
                    )
                    attempt += 1
                    continue
                error = (
                    exc.reason if isinstance(exc, SendError) else type(exc).__name__
                )
                self._emit(
                    SendOutcome(
                        address, ok=False, error=error,
                        attempts=attempt, exception=exc,
                    )
                )
                return
            else:
                if breaker is not None:
                    with self._breaker_lock:
                        breaker.record_success()
                self._emit(SendOutcome(address, ok=True, attempts=attempt))
                return

    def _emit(self, outcome: SendOutcome) -> None:
        if not outcome.ok:
            # Best-effort one-way messaging, like the sync HTTP binding:
            # gossip redundancy covers losses; the counter records them.
            self.send_errors += 1
        super()._emit(outcome)

    async def _asend_once(self, address: str, data: bytes, token: str) -> None:
        """One delivery attempt; raise on failure.

        ``token`` identifies the logical send (stable across retries);
        bindings with an idempotent edge forward it, datagram bindings
        ignore it.
        """
        raise NotImplementedError


# -- UDP ----------------------------------------------------------------------


class _UdpProtocol(asyncio.DatagramProtocol):
    """Feeds received datagrams to a callback (the node's runtime)."""

    def __init__(self, on_datagram: Optional[Callable[[bytes, Tuple], None]]) -> None:
        self._on_datagram = on_datagram

    def datagram_received(self, data: bytes, addr) -> None:
        if self._on_datagram is not None:
            self._on_datagram(data, addr)

    def error_received(self, exc) -> None:  # pragma: no cover - ICMP noise
        pass


def _udp_socket(host: str, port: int, buffer_bytes: int) -> socket.socket:
    sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
    try:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, buffer_bytes)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_SNDBUF, buffer_bytes)
    except OSError:  # pragma: no cover - platform caps are advisory
        pass
    sock.setblocking(False)
    sock.bind((host, port))
    return sock


class AioUdpTransport(AsyncResilientTransport):
    """Sends envelope bytes as single datagrams to ``udp://`` addresses.

    One socket serves the whole node: when constructed by
    :class:`AsyncUdpNode` the endpoint is shared with the receive path;
    standalone (client-only) use binds an ephemeral socket on first send.
    Datagrams above ``max_datagram_bytes`` fail with a structured
    ``oversize-datagram`` outcome -- size your engine's
    ``max_batch_bytes`` below the ceiling so batch frames ride verbatim.
    """

    def __init__(
        self,
        loop: Optional[asyncio.AbstractEventLoop] = None,
        retry: Optional[RetryPolicy] = None,
        breaker: Optional[BreakerPolicy] = None,
        rng: Optional[random.Random] = None,
        max_datagram_bytes: int = MAX_DATAGRAM_BYTES,
        buffer_bytes: int = 1 << 22,
    ) -> None:
        super().__init__(loop=loop, retry=retry, breaker=breaker, rng=rng)
        self.max_datagram_bytes = max_datagram_bytes
        self._buffer_bytes = buffer_bytes
        self._endpoint: Optional[asyncio.DatagramTransport] = None
        self._endpoint_lock = asyncio.Lock()
        self._resolved: Dict[str, Tuple[str, int]] = {}

    def bind_endpoint(self, endpoint: asyncio.DatagramTransport) -> None:
        """Adopt an existing datagram endpoint (the owning node's socket)."""
        self._endpoint = endpoint

    async def _ensure_endpoint(self) -> asyncio.DatagramTransport:
        if self._endpoint is not None and not self._endpoint.is_closing():
            return self._endpoint
        async with self._endpoint_lock:
            if self._endpoint is None or self._endpoint.is_closing():
                sock = _udp_socket("127.0.0.1", 0, self._buffer_bytes)
                self._endpoint, _ = await self.loop.create_datagram_endpoint(
                    lambda: _UdpProtocol(None), sock=sock
                )
            return self._endpoint

    def _resolve(self, address: str) -> Tuple[str, int]:
        cached = self._resolved.get(address)
        if cached is not None:
            return cached
        _, authority, _ = split_address(address)
        host, _, port_text = authority.rpartition(":")
        try:
            resolved = (host or "127.0.0.1", int(port_text))
        except ValueError:
            raise ValueError(f"udp address needs host:port: {address!r}") from None
        self._resolved[address] = resolved
        return resolved

    async def _asend_once(self, address: str, data: bytes, token: str) -> None:
        if len(data) > self.max_datagram_bytes:
            raise SendError("oversize-datagram", address)
        target = self._resolve(address)
        endpoint = await self._ensure_endpoint()
        endpoint.sendto(data, target)

    async def _aclose(self) -> None:
        await super()._aclose()
        if self._endpoint is not None:
            self._endpoint.close()
            self._endpoint = None


# -- HTTP/1.1 keep-alive client ----------------------------------------------


def _build_request(
    method: str,
    authority: str,
    path: str,
    body: bytes = b"",
    headers: Optional[Dict[str, str]] = None,
) -> bytes:
    lines = [
        f"{method} {path or '/'} HTTP/1.1",
        f"Host: {authority}",
        "Connection: keep-alive",
        f"Content-Length: {len(body)}",
    ]
    if body:
        lines.append("Content-Type: text/xml; charset=utf-8")
    for name, value in (headers or {}).items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body


async def _read_response(
    reader: asyncio.StreamReader,
) -> Tuple[int, Dict[str, str], bytes]:
    status_line = await reader.readline()
    if not status_line:
        raise SendError("connection-closed")
    parts = status_line.split(None, 2)
    if len(parts) < 2 or not parts[1].isdigit():
        raise SendError("malformed-status-line")
    status = int(parts[1])
    headers: Dict[str, str] = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n"):
            break
        if not line:
            raise SendError("connection-closed")
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0") or 0)
    body = await reader.readexactly(length) if length > 0 else b""
    return status, headers, body


class _PipelinedConnection:
    """One keep-alive socket multiplexing many in-flight requests.

    Requests are written as soon as the writer is free (pipelining); a
    reader task matches responses to waiters in FIFO order, which is what
    HTTP/1.1 guarantees.  Any transport error fails every in-flight
    waiter -- the resilient send path above then retries per policy on a
    fresh connection.
    """

    def __init__(self, host: str, port: int, loop: asyncio.AbstractEventLoop) -> None:
        self._host = host
        self._port = port
        self._loop = loop
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._reader_task: Optional[asyncio.Task] = None
        self._write_lock = asyncio.Lock()
        self._waiters: Deque[asyncio.Future] = deque()
        #: Sockets opened over this slot's lifetime (tests assert reuse).
        self.connects = 0
        self.requests = 0

    @property
    def in_flight(self) -> int:
        return len(self._waiters)

    def _alive(self) -> bool:
        return self._writer is not None and not self._writer.is_closing()

    async def _ensure_open(self) -> None:
        if self._alive():
            return
        self._reader, self._writer = await asyncio.open_connection(
            self._host, self._port
        )
        self.connects += 1
        self._reader_task = self._loop.create_task(self._read_loop())

    async def request(self, raw: bytes) -> Tuple[int, Dict[str, str], bytes]:
        async with self._write_lock:
            await self._ensure_open()
            waiter: asyncio.Future = self._loop.create_future()
            self._waiters.append(waiter)
            self.requests += 1
            self._writer.write(raw)
            await self._writer.drain()
        return await waiter

    async def _read_loop(self) -> None:
        error: Optional[BaseException] = None
        try:
            while True:
                response = await _read_response(self._reader)
                if not self._waiters:
                    break  # unsolicited bytes: drop the connection
                waiter = self._waiters.popleft()
                if not waiter.done():
                    waiter.set_result(response)
                if response[1].get("connection", "").lower() == "close":
                    break
        except asyncio.CancelledError:
            error = SendError("connection-closed")
        except Exception as exc:  # noqa: BLE001 - surfaces via the waiters
            error = exc
        finally:
            self._fail_waiters(error or SendError("connection-closed"))
            self._teardown()

    def _fail_waiters(self, error: BaseException) -> None:
        while self._waiters:
            waiter = self._waiters.popleft()
            if not waiter.done():
                waiter.set_exception(error)

    def _teardown(self) -> None:
        if self._writer is not None:
            self._writer.close()
        self._reader = None
        self._writer = None

    def close(self) -> None:
        if self._reader_task is not None:
            self._reader_task.cancel()
        self._teardown()


class AioHttpTransport(AsyncResilientTransport):
    """POSTs envelope bytes over pooled, pipelined keep-alive connections.

    Destinations are pooled by authority (``host:port``): up to
    ``pool_size`` sockets per peer, each multiplexing up to
    ``max_inflight`` pipelined requests before the pool opens another.
    By default every envelope is POSTed to the versioned ingest resource
    (``/v1/gossip``) -- the WS-Addressing ``To`` header routes it to the
    right service on the receiving node; set ``ingest_path=None`` to POST
    to each address's literal path (the legacy, pre-``/v1/`` contract).
    """

    def __init__(
        self,
        loop: Optional[asyncio.AbstractEventLoop] = None,
        retry: Optional[RetryPolicy] = None,
        breaker: Optional[BreakerPolicy] = None,
        rng: Optional[random.Random] = None,
        pool_size: int = 2,
        max_inflight: int = 32,
        ingest_path: Optional[str] = GOSSIP_PATH,
    ) -> None:
        super().__init__(loop=loop, retry=retry, breaker=breaker, rng=rng)
        if pool_size < 1:
            raise ValueError(f"pool_size must be >= 1: {pool_size!r}")
        if max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1: {max_inflight!r}")
        self.pool_size = pool_size
        self.max_inflight = max_inflight
        self.ingest_path = ingest_path
        self._pools: Dict[str, List[_PipelinedConnection]] = {}

    def _connection_for(self, authority: str) -> _PipelinedConnection:
        pool = self._pools.get(authority)
        if pool is None:
            pool = []
            self._pools[authority] = pool
        idle = min(pool, key=lambda conn: conn.in_flight, default=None)
        if idle is not None and (
            idle.in_flight < self.max_inflight or len(pool) >= self.pool_size
        ):
            return idle
        host, _, port_text = authority.rpartition(":")
        connection = _PipelinedConnection(
            host or "127.0.0.1", int(port_text), self.loop
        )
        pool.append(connection)
        return connection

    def pool_stats(self) -> Dict[str, Dict[str, int]]:
        """Per-destination pool counters (tests and the soak report)."""
        return {
            authority: {
                "connections": len(pool),
                "connects": sum(conn.connects for conn in pool),
                "requests": sum(conn.requests for conn in pool),
                "in_flight": sum(conn.in_flight for conn in pool),
            }
            for authority, pool in self._pools.items()
        }

    async def _asend_once(self, address: str, data: bytes, token: str) -> None:
        _, authority, path = split_address(address)
        request_path = self.ingest_path if self.ingest_path is not None else path
        raw = _build_request(
            "POST", authority, request_path or "/", data,
            headers={IDEMPOTENCY_KEY_HEADER: token},
        )
        status, response_headers, _ = await self._connection_for(
            authority
        ).request(raw)
        if status == 429:
            raise SendError(
                "http-429",
                address,
                retry_after=parse_retry_after(
                    response_headers.get("retry-after")
                ),
            )
        if status >= 300:
            raise SendError(f"http-{status}", address)

    async def get(
        self, url: str, headers: Optional[Dict[str, str]] = None
    ) -> Tuple[int, Dict[str, str], bytes]:
        """One pooled GET (metrics scraping, health probes)."""
        _, authority, path = split_address(url)
        raw = _build_request("GET", authority, path or "/", headers=headers)
        return await self._connection_for(authority).request(raw)

    async def post(
        self, url: str, body: bytes, headers: Optional[Dict[str, str]] = None
    ) -> Tuple[int, Dict[str, str], bytes]:
        """One pooled POST returning the full response (edge tests)."""
        _, authority, path = split_address(url)
        raw = _build_request("POST", authority, path or "/", body, headers=headers)
        return await self._connection_for(authority).request(raw)

    async def _aclose(self) -> None:
        await super()._aclose()
        for pool in self._pools.values():
            for connection in pool:
                connection.close()
        self._pools.clear()


# -- the server edges ---------------------------------------------------------


class _AsyncNodeBase:
    """Shared shell of the asyncio node edges: hub, runtime, lifecycle."""

    scheme = "http"

    def __init__(
        self,
        host: str,
        port: int,
        loop: Optional[asyncio.AbstractEventLoop],
        transport: AsyncResilientTransport,
        hub: Optional[MetricsHub] = None,
    ) -> None:
        self.loop = transport.loop
        self.host = host
        self.port = port
        self.transport = transport
        self.base_address = f"{self.scheme}://{host}:{port}"
        # Per-node hub (chained to the default) -- what GET /v1/metrics
        # serves.  Pass an explicit hub to serve a wider scope instead
        # (the soak harness's metrics edge exports the default hub, i.e.
        # the whole mesh's aggregated stat groups).
        self.hub = hub if hub is not None else MetricsHub(
            parent=default_hub(), name=self.base_address
        )
        self.runtime = SoapRuntime(self.base_address, transport, metrics=self.hub)
        self._started = False

    # Sync lifecycle (foreign thread) -----------------------------------------

    def start(self) -> None:
        """Start serving (from outside the loop; see :meth:`astart`)."""
        if self._started:
            return
        run_on_loop(self.loop, self.astart())

    def stop(self) -> None:
        """Stop serving and close the outbound transport."""
        if not self._started:
            return
        run_on_loop(self.loop, self.astop())

    def __enter__(self):
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # Async lifecycle (on the loop) -------------------------------------------

    async def astart(self) -> None:
        raise NotImplementedError

    async def astop(self) -> None:
        raise NotImplementedError

    async def __aenter__(self):
        await self.astart()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.astop()


class AsyncUdpNode(_AsyncNodeBase):
    """A SOAP runtime served over a real UDP socket on the event loop.

    The node's single datagram socket both receives (datagrams feed
    ``runtime.receive``) and sends (shared with its
    :class:`AioUdpTransport`).  Addresses: ``udp://host:port/path``.
    """

    scheme = "udp"

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        loop: Optional[asyncio.AbstractEventLoop] = None,
        buffer_bytes: int = 1 << 22,
        max_datagram_bytes: int = MAX_DATAGRAM_BYTES,
        hub: Optional[MetricsHub] = None,
    ) -> None:
        transport = AioUdpTransport(
            loop=loop,
            max_datagram_bytes=max_datagram_bytes,
            buffer_bytes=buffer_bytes,
        )
        # Bind eagerly so the node's address is known before start().
        self._sock = _udp_socket(host, port, buffer_bytes)
        bound_host, bound_port = self._sock.getsockname()[:2]
        super().__init__(bound_host, bound_port, loop, transport, hub=hub)
        self.datagrams_received = 0

    async def astart(self) -> None:
        if self._started:
            return
        endpoint, _ = await self.loop.create_datagram_endpoint(
            lambda: _UdpProtocol(self._on_datagram), sock=self._sock
        )
        self.transport.bind_endpoint(endpoint)
        self._started = True

    async def astop(self) -> None:
        if not self._started:
            return
        self._started = False
        await self.transport.aclose()

    def _on_datagram(self, data: bytes, addr) -> None:
        self.datagrams_received += 1
        self.runtime.receive(data, source=f"udp://{addr[0]}:{addr[1]}")


class AsyncHttpNode(_AsyncNodeBase):
    """A SOAP runtime served over asyncio keep-alive HTTP/1.1.

    Speaks the versioned node-edge API (docs/WIRE.md):

    * ``POST /v1/gossip`` -- idempotent envelope ingest (202, or 200 with
      ``Idempotent-Replay: true`` for a retried publish).
    * ``GET /v1/metrics`` -- the node's hub, Prometheus text format.
    * ``GET /v1/health`` -- liveness JSON.

    Legacy unversioned paths still answer, with a ``Deprecation`` header.
    Thousands of connections share the one event loop; no thread per
    request.
    """

    scheme = "http"

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        loop: Optional[asyncio.AbstractEventLoop] = None,
        idempotency_capacity: int = 65536,
        backlog: int = 512,
        hub: Optional[MetricsHub] = None,
        admission: Optional[EdgeAdmission] = None,
    ) -> None:
        transport = AioHttpTransport(loop=loop)
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(backlog)
        self._listener.setblocking(False)
        bound_host, bound_port = self._listener.getsockname()[:2]
        super().__init__(bound_host, bound_port, loop, transport, hub=hub)
        self.idempotency = IdempotencyIndex(idempotency_capacity)
        #: Optional token-bucket gate on POST ingest (None = admit all).
        self.admission = admission
        self._server: Optional[asyncio.base_events.Server] = None
        self.requests_served = 0

    async def astart(self) -> None:
        if self._started:
            return
        self._server = await asyncio.start_server(
            self._serve_connection, sock=self._listener
        )
        self._started = True

    async def astop(self) -> None:
        if not self._started:
            return
        self._started = False
        self._server.close()
        await self._server.wait_closed()
        await self.transport.aclose()

    # -- request handling -----------------------------------------------------

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                method, path, headers, body = request
                status, extra, payload = self._route(method, path, headers, body)
                self.requests_served += 1
                keep_alive = headers.get("connection", "").lower() != "close"
                writer.write(
                    self._render_response(status, extra, payload, keep_alive)
                )
                await writer.drain()
                if not keep_alive:
                    break
        except (
            asyncio.IncompleteReadError,
            ConnectionError,
            asyncio.CancelledError,
        ):
            pass
        finally:
            writer.close()

    @staticmethod
    async def _read_request(reader: asyncio.StreamReader):
        request_line = await reader.readline()
        if not request_line:
            return None
        parts = request_line.split()
        if len(parts) < 2:
            return None
        method = parts[0].decode("latin-1").upper()
        path = parts[1].decode("latin-1")
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n"):
                break
            if not line:
                return None
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or 0)
        body = await reader.readexactly(length) if length > 0 else b""
        return method, path, headers, body

    def _route(
        self, method: str, path: str, headers: Dict[str, str], body: bytes
    ) -> Tuple[int, Dict[str, str], bytes]:
        raw_path = path
        path = strip_query(path)
        if method == "POST":
            status, extra, process = ingest_response(
                self.idempotency, headers, body, self.hub.wire,
                admission=self.admission,
                overload_stats=self.hub.overload,
            )
            if path != GOSSIP_PATH:
                extra.update(deprecation_headers(GOSSIP_PATH))
            if process:
                try:
                    self.runtime.receive(body, source=None)
                except Exception:  # noqa: BLE001 - a raising service must
                    pass  # not take the connection (or its pipeline) down
            return status, extra, b""
        if method == "GET":
            if path == HEALTH_PATH:
                payload = health_payload(
                    self.base_address,
                    self.runtime.service_paths(),
                    extra={"requests_served": self.requests_served},
                )
                return 200, {"Content-Type": JSON_CONTENT_TYPE}, payload
            # Observability read models get the raw path: pagination rides
            # in the query string (shared with the sync binding).
            obs = obs_response(hub_of(self.runtime.metrics), raw_path)
            if obs is not None:
                return obs
            if path in (METRICS_PATH, LEGACY_METRICS_PATH):
                text = prometheus_text(hub_of(self.runtime.metrics))
                extra = {"Content-Type": PROMETHEUS_CONTENT_TYPE}
                if path == LEGACY_METRICS_PATH:
                    extra.update(deprecation_headers(METRICS_PATH))
                return 200, extra, text.encode("utf-8")
        return 404, {}, b""

    @staticmethod
    def _render_response(
        status: int, headers: Dict[str, str], body: bytes, keep_alive: bool
    ) -> bytes:
        reason = _STATUS_REASONS.get(status, "OK")
        lines = [
            f"HTTP/1.1 {status} {reason}",
            f"Content-Length: {len(body)}",
            "Connection: " + ("keep-alive" if keep_alive else "close"),
        ]
        for name, value in headers.items():
            lines.append(f"{name}: {value}")
        return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body
