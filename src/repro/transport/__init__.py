"""Transport bindings for the SOAP runtime.

* :mod:`repro.transport.inmem` -- binds runtimes to the discrete-event
  simulator (addresses ``sim://node/path``).
* :mod:`repro.transport.http`  -- real localhost HTTP (addresses
  ``http://host:port/path``), used by the examples.
* :class:`LoopbackTransport`   -- delivers straight back to a registry of
  runtimes with no latency; used by unit tests.
"""

from repro.transport.base import LoopbackTransport
from repro.transport.inmem import SimTransport, WsProcess, sim_address
from repro.transport.http import HttpNode

__all__ = ["HttpNode", "LoopbackTransport", "SimTransport", "WsProcess", "sim_address"]
