"""Transport bindings for the SOAP runtime.

* :mod:`repro.transport.inmem` -- binds runtimes to the discrete-event
  simulator (addresses ``sim://node/path``).
* :mod:`repro.transport.http`  -- real localhost HTTP (addresses
  ``http://host:port/path``), used by the examples.
* :class:`LoopbackTransport`   -- delivers straight back to a registry of
  runtimes with no latency; used by unit tests.
* :mod:`repro.transport.aio`   -- asyncio real-network family: UDP
  datagrams (``udp://host:port/path``) and keep-alive pipelined HTTP,
  with :class:`AsyncUdpNode` / :class:`AsyncHttpNode` server edges so
  hundreds of nodes share one event loop (see docs/DEPLOY.md).
* :mod:`repro.transport.edge`  -- the versioned ``/v1`` node-edge HTTP
  contract (paths, idempotent ingest, deprecation headers) shared by the
  sync and asyncio HTTP edges (see docs/WIRE.md).
* :mod:`repro.transport.base`  -- the shared resilient send path: bounded
  retry (:class:`RetryPolicy`), per-destination circuit breakers
  (:class:`BreakerPolicy`, :class:`CircuitBreaker`), and structured
  :class:`SendOutcome` callbacks (see docs/RESILIENCE.md).
"""

from repro.transport.base import (
    BreakerPolicy,
    CircuitBreaker,
    LoopbackTransport,
    ResilientTransport,
    RetryPolicy,
    SendError,
    SendOutcome,
)
from repro.transport.inmem import SimTransport, WsProcess, sim_address
from repro.transport.http import HttpNode, HttpTransport
from repro.transport.aio import (
    AioHttpTransport,
    AioScheduler,
    AioUdpTransport,
    AsyncHttpNode,
    AsyncResilientTransport,
    AsyncUdpNode,
    shared_loop,
)
from repro.transport.edge import (
    API_VERSION,
    GOSSIP_PATH,
    HEALTH_PATH,
    METRICS_PATH,
    IdempotencyIndex,
)

__all__ = [
    "API_VERSION",
    "AioHttpTransport",
    "AioScheduler",
    "AioUdpTransport",
    "AsyncHttpNode",
    "AsyncResilientTransport",
    "AsyncUdpNode",
    "BreakerPolicy",
    "CircuitBreaker",
    "GOSSIP_PATH",
    "HEALTH_PATH",
    "HttpNode",
    "HttpTransport",
    "IdempotencyIndex",
    "LoopbackTransport",
    "METRICS_PATH",
    "ResilientTransport",
    "RetryPolicy",
    "SendError",
    "SendOutcome",
    "SimTransport",
    "WsProcess",
    "shared_loop",
    "sim_address",
]
