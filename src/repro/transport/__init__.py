"""Transport bindings for the SOAP runtime.

* :mod:`repro.transport.inmem` -- binds runtimes to the discrete-event
  simulator (addresses ``sim://node/path``).
* :mod:`repro.transport.http`  -- real localhost HTTP (addresses
  ``http://host:port/path``), used by the examples.
* :class:`LoopbackTransport`   -- delivers straight back to a registry of
  runtimes with no latency; used by unit tests.
* :mod:`repro.transport.base`  -- the shared resilient send path: bounded
  retry (:class:`RetryPolicy`), per-destination circuit breakers
  (:class:`BreakerPolicy`, :class:`CircuitBreaker`), and structured
  :class:`SendOutcome` callbacks (see docs/RESILIENCE.md).
"""

from repro.transport.base import (
    BreakerPolicy,
    CircuitBreaker,
    LoopbackTransport,
    ResilientTransport,
    RetryPolicy,
    SendError,
    SendOutcome,
)
from repro.transport.inmem import SimTransport, WsProcess, sim_address
from repro.transport.http import HttpNode

__all__ = [
    "BreakerPolicy",
    "CircuitBreaker",
    "HttpNode",
    "LoopbackTransport",
    "ResilientTransport",
    "RetryPolicy",
    "SendError",
    "SendOutcome",
    "SimTransport",
    "WsProcess",
    "sim_address",
]
