"""Binding the SOAP runtime to the discrete-event simulator.

Each simulated WS node is a :class:`WsProcess`: a
:class:`~repro.simnet.process.Process` hosting a
:class:`~repro.soap.runtime.SoapRuntime`.  Wire messages are the actual
serialized envelope bytes travelling through :class:`~repro.simnet.network.Network`,
so the full SOAP encode/decode path is exercised in every experiment.

Addresses take the form ``sim://<node-name>/<service-path>``.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.simnet.network import Network
from repro.simnet.process import Process
from repro.soap.runtime import SoapRuntime
from repro.transport.base import (
    BreakerPolicy,
    ResilientTransport,
    RetryPolicy,
    SendError,
    split_address,
)


def sim_address(node_name: str, path: str = "") -> str:
    """Build a ``sim://`` address for a node (and optional service path)."""
    if path and not path.startswith("/"):
        raise ValueError(f"path must start with '/': {path!r}")
    return f"sim://{node_name}{path}"


class SimTransport(ResilientTransport):
    """Sends envelope bytes from one simulated node over the network.

    Rides the shared resilient send path.  Synchronously observable
    failures -- a dead destination (connection refused in the real world)
    or a partition (no route) -- raise and feed retries, breakers and
    outcome listeners.  A random in-flight *loss* stays invisible to the
    sender, exactly like a datagram: gossip's redundancy covers it.

    Retry timers run on the node's simulated process, so pending retries
    die with the node on crash -- the right fault semantics for free.
    """

    #: Drop reasons a sender cannot observe synchronously.
    UNOBSERVABLE_DROPS = frozenset({"loss"})

    def __init__(
        self,
        node: Process,
        retry: Optional[RetryPolicy] = None,
        breaker: Optional[BreakerPolicy] = None,
    ) -> None:
        super().__init__(
            retry=retry,
            breaker=breaker,
            clock=lambda: node.sim.now,
            rng=node.sim.rng.get(f"transport:{node.name}"),
            stats=node.network.hub.health,
        )
        self._node = node

    def _send_once(self, address: str, data: bytes) -> None:
        """Send envelope bytes over the simulated network."""
        scheme, authority, _ = split_address(address)
        if scheme != "sim":
            raise ValueError(f"SimTransport cannot reach {address!r}")
        message = self._node.send(authority, data, size=len(data))
        if message is None:
            return  # we are crashed; no one to report to
        if message.dropped and message.drop_reason not in self.UNOBSERVABLE_DROPS:
            raise SendError(message.drop_reason, address)

    def _defer(self, delay: float, callback: Callable[[], None]) -> None:
        """Schedule the retry on the node (timer dies with a crash)."""
        self._node.set_timer(delay, callback)


class WsProcess(Process):
    """A simulated node running the SOAP middleware stack.

    The runtime's handler chain is where a "compliant middleware stack"
    (paper, Section 3) gets its gossip layer installed.

    Subclasses add services in :meth:`configure` (called once at
    construction) and may override the process lifecycle hooks as usual.
    """

    def __init__(self, name: str, network: Network) -> None:
        super().__init__(name, network)
        # Per-node metric attribution: the runtime's counters carry a
        # ``node`` label and aggregate into the network hub's unlabelled
        # counters, so whole-simulation reads are unchanged.
        self.runtime = SoapRuntime(
            sim_address(name),
            SimTransport(self),
            metrics=network.hub.node(name),
        )
        self.configure()

    def configure(self) -> None:
        """Mount services / install handlers.  Default: nothing."""

    def reset_state(self, amnesia: bool) -> None:
        """Crash-faithful restart support: drop the middleware stack's
        volatile state (pending reply callbacks, breaker memory).  The
        mounted services and handler chain are configuration, not state.
        Subclasses extend this with their own application state."""
        self.runtime.reset_volatile()
        self.runtime.transport.reset()

    def on_message(self, source: str, payload: bytes) -> None:
        if not isinstance(payload, (bytes, bytearray)):
            raise TypeError(
                f"WsProcess {self.name!r} expects wire bytes, got "
                f"{type(payload).__name__}"
            )
        # Hand `bytes` payloads through untouched: with fan-out sharing one
        # buffer, copying here would re-introduce a per-delivery allocation.
        if not isinstance(payload, bytes):
            payload = bytes(payload)
        self.runtime.receive(payload, source=sim_address(source))
