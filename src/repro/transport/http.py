"""Real HTTP binding (stdlib only), for running examples on localhost.

Every node runs its own small HTTP server; sending POSTs the envelope to
the destination and expects ``202 Accepted`` (one-way WS-Addressing
messaging, the same model the simulator uses).  Outbound sends happen on a
small thread pool so a service operation can send without deadlocking on
its own server thread.
"""

from __future__ import annotations

import random
import threading
import time
import urllib.error
import urllib.request
import uuid
from concurrent.futures import ThreadPoolExecutor
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Optional

from repro.obs.export import prometheus_text
from repro.obs.hub import MetricsHub, default_hub, hub_of
from repro.soap.runtime import SoapRuntime
from repro.transport.base import (
    BreakerPolicy,
    ResilientTransport,
    RetryPolicy,
    SendError,
    parse_retry_after,
)
from repro.transport.edge import (
    GOSSIP_PATH,
    HEALTH_PATH,
    IDEMPOTENCY_KEY_HEADER,
    JSON_CONTENT_TYPE,
    LEGACY_METRICS_PATH,
    METRICS_PATH,
    PROMETHEUS_CONTENT_TYPE,
    EdgeAdmission,
    IdempotencyIndex,
    deprecation_headers,
    health_payload,
    ingest_response,
    obs_response,
    strip_query,
)


class HttpTransport(ResilientTransport):
    """POSTs envelope bytes to ``http://...`` addresses.

    Rides the shared resilient send path: a failed POST is reported as a
    structured :class:`~repro.transport.base.SendOutcome` naming the
    exception class and destination (register a listener with
    ``add_outcome_listener``), optionally retried with backoff, and
    repeated failures open a per-destination circuit breaker.  The legacy
    ``send_errors`` counter still counts terminal failures.
    """

    def __init__(
        self,
        max_workers: int = 8,
        timeout: float = 5.0,
        retry: Optional[RetryPolicy] = None,
        breaker: Optional[BreakerPolicy] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        super().__init__(retry=retry, breaker=breaker, rng=rng)
        self._pool = ThreadPoolExecutor(max_workers=max_workers)
        self._timeout = timeout
        self._closed = False
        self._send_token = threading.local()
        self.send_errors = 0

    def send(self, address: str, data: bytes) -> None:
        """POST asynchronously from the worker pool (best effort)."""
        if self._closed:
            return  # shutting down: drop, exactly like a lost datagram
        try:
            self._pool.submit(self._run_send, address, data)
        except RuntimeError:
            # The pool was shut down between the flag check and submit.
            pass

    def _run_send(self, address: str, data: bytes) -> None:
        # One Idempotency-Key per logical send, stable across its retries
        # (they stay on this worker thread): a retried POST whose first
        # attempt landed is answered as a replay instead of ingesting
        # twice.  Distinct sends of the same bytes keep distinct keys.
        self._send_token.value = uuid.uuid4().hex
        self._start_send(address, data)

    def _send_once(self, address: str, data: bytes) -> None:
        """One POST attempt (runs on a worker thread); raises on failure."""
        headers = {"Content-Type": "text/xml; charset=utf-8"}
        token = getattr(self._send_token, "value", None)
        if token is not None:
            headers[IDEMPOTENCY_KEY_HEADER] = token
        request = urllib.request.Request(
            address, data=data, headers=headers, method="POST"
        )
        try:
            with urllib.request.urlopen(request, timeout=self._timeout):
                pass
        except urllib.error.HTTPError as exc:
            if exc.code == 429:
                # The edge asked for patience: carry its Retry-After so
                # the resilient path backs off without opening the
                # breaker (the peer is alive, just saturated).
                raise SendError(
                    "http-429",
                    address,
                    retry_after=parse_retry_after(
                        exc.headers.get("Retry-After")
                    ),
                ) from exc
            raise

    def _defer(self, delay: float, callback: Callable[[], None]) -> None:
        """Backoff on the worker thread we already occupy, then retry."""
        time.sleep(delay)
        callback()

    def _emit(self, outcome) -> None:
        if not outcome.ok:
            # One-way messaging is best effort, exactly like the simulated
            # datagram fabric: the gossip layer's redundancy covers losses.
            self.send_errors += 1
        super()._emit(outcome)

    def close(self, wait: bool = True) -> None:
        """Shut the outbound worker pool down.

        ``wait=True`` (the default) joins the worker threads, so no send
        is still running at interpreter exit -- deterministic shutdown.
        """
        self._closed = True
        self._pool.shutdown(wait=wait)


class HttpNode:
    """A SOAP runtime served over real localhost HTTP.

    Example::

        node = HttpNode("127.0.0.1", 8801)
        node.runtime.add_service("/ping", PingService())
        node.start()
        ...
        node.stop()
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        idempotency_capacity: int = 65536,
        admission: Optional[EdgeAdmission] = None,
    ) -> None:
        self.transport = HttpTransport()
        self.idempotency = IdempotencyIndex(idempotency_capacity)
        #: Optional token-bucket gate on POST ingest (None = admit all).
        self.admission = admission
        node = self

        class Handler(BaseHTTPRequestHandler):
            def _reply(self, status, headers, body=b"") -> None:
                self.send_response(status)
                for name, value in headers.items():
                    self.send_header(name, value)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                if body:
                    self.wfile.write(body)

            def do_POST(self) -> None:  # noqa: N802 - stdlib naming
                """Idempotent envelope ingest (``POST /v1/gossip``).

                Legacy POSTs to any other path still ingest, answering
                with a ``Deprecation`` header; a replayed publish answers
                ``200 Idempotent-Replay: true`` without re-entering the
                runtime (see docs/WIRE.md).
                """
                length = int(self.headers.get("Content-Length", "0"))
                body = self.rfile.read(length)
                status, extra, process = ingest_response(
                    node.idempotency, self.headers, body, node.hub.wire,
                    admission=node.admission,
                    overload_stats=node.hub.overload,
                )
                if strip_query(self.path) != GOSSIP_PATH:
                    extra.update(deprecation_headers(GOSSIP_PATH))
                self._reply(status, extra)
                if process:
                    node.runtime.receive(body, source=None)

            def do_GET(self) -> None:  # noqa: N802 - stdlib naming
                """Serve ``/v1/metrics``, ``/v1/health``, ``/v1/obs/*`` and
                legacy paths."""
                path = strip_query(self.path)
                if path == HEALTH_PATH:
                    payload = health_payload(
                        node.base_address, node.runtime.service_paths()
                    )
                    self._reply(200, {"Content-Type": JSON_CONTENT_TYPE}, payload)
                    return
                # Observability read models take the raw path: pagination
                # rides in the query string.
                obs = obs_response(hub_of(node.runtime.metrics), self.path)
                if obs is not None:
                    self._reply(*obs)
                    return
                if path not in (METRICS_PATH, LEGACY_METRICS_PATH):
                    self._reply(404, {})
                    return
                body = prometheus_text(hub_of(node.runtime.metrics)).encode("utf-8")
                extra = {"Content-Type": PROMETHEUS_CONTENT_TYPE}
                if path == LEGACY_METRICS_PATH:
                    extra.update(deprecation_headers(METRICS_PATH))
                self._reply(200, extra, body)

            def log_message(self, *args) -> None:  # silence stderr
                pass

        class Server(ThreadingHTTPServer):
            # The socketserver default backlog (5) refuses connections
            # under concurrent senders; a gossip node must absorb bursts.
            request_queue_size = 128
            daemon_threads = True

        self._server = Server((host, port), Handler)
        self.host, self.port = self._server.server_address[:2]
        self.base_address = f"http://{self.host}:{self.port}"
        # Per-node hub (chained to the default) -- what GET /v1/metrics serves.
        self.hub = MetricsHub(parent=default_hub(), name=self.base_address)
        self.runtime = SoapRuntime(self.base_address, self.transport, metrics=self.hub)
        self._thread: Optional[threading.Thread] = None

    def start(self) -> None:
        """Serve requests on a daemon thread."""
        if self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._server.serve_forever, name=f"http-{self.port}", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Shut the server and the outbound pool down."""
        if self._thread is None:
            return
        self._server.shutdown()
        self._server.server_close()
        self._thread.join(timeout=5.0)
        self._thread = None
        self.transport.close()

    def __enter__(self) -> "HttpNode":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
