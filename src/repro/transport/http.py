"""Real HTTP binding (stdlib only), for running examples on localhost.

Every node runs its own small HTTP server; sending POSTs the envelope to
the destination and expects ``202 Accepted`` (one-way WS-Addressing
messaging, the same model the simulator uses).  Outbound sends happen on a
small thread pool so a service operation can send without deadlocking on
its own server thread.
"""

from __future__ import annotations

import threading
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional

from repro.soap.runtime import SoapRuntime


class HttpTransport:
    """POSTs envelope bytes to ``http://...`` addresses."""

    def __init__(self, max_workers: int = 8, timeout: float = 5.0) -> None:
        self._pool = ThreadPoolExecutor(max_workers=max_workers)
        self._timeout = timeout
        self.send_errors = 0

    def send(self, address: str, data: bytes) -> None:
        """POST asynchronously from the worker pool (best effort)."""
        self._pool.submit(self._post, address, data)

    def _post(self, address: str, data: bytes) -> None:
        request = urllib.request.Request(
            address,
            data=data,
            headers={"Content-Type": "text/xml; charset=utf-8"},
            method="POST",
        )
        try:
            with urllib.request.urlopen(request, timeout=self._timeout):
                pass
        except (urllib.error.URLError, OSError):
            # One-way messaging is best effort, exactly like the simulated
            # datagram fabric: the gossip layer's redundancy covers losses.
            self.send_errors += 1

    def close(self) -> None:
        """Shut the outbound worker pool down."""
        self._pool.shutdown(wait=False)


class HttpNode:
    """A SOAP runtime served over real localhost HTTP.

    Example::

        node = HttpNode("127.0.0.1", 8801)
        node.runtime.add_service("/ping", PingService())
        node.start()
        ...
        node.stop()
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0) -> None:
        self.transport = HttpTransport()
        runtime_holder = {}

        class Handler(BaseHTTPRequestHandler):
            def do_POST(self) -> None:  # noqa: N802 - stdlib naming
                length = int(self.headers.get("Content-Length", "0"))
                body = self.rfile.read(length)
                self.send_response(202)
                self.send_header("Content-Length", "0")
                self.end_headers()
                runtime = runtime_holder.get("runtime")
                if runtime is not None:
                    runtime.receive(body, source=None)

            def log_message(self, *args) -> None:  # silence stderr
                pass

        class Server(ThreadingHTTPServer):
            # The socketserver default backlog (5) refuses connections
            # under concurrent senders; a gossip node must absorb bursts.
            request_queue_size = 128
            daemon_threads = True

        self._server = Server((host, port), Handler)
        self.host, self.port = self._server.server_address[:2]
        self.base_address = f"http://{self.host}:{self.port}"
        self.runtime = SoapRuntime(self.base_address, self.transport)
        runtime_holder["runtime"] = self.runtime
        self._thread: Optional[threading.Thread] = None

    def start(self) -> None:
        """Serve requests on a daemon thread."""
        if self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._server.serve_forever, name=f"http-{self.port}", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Shut the server and the outbound pool down."""
        if self._thread is None:
            return
        self._server.shutdown()
        self._server.server_close()
        self._thread.join(timeout=5.0)
        self._thread = None
        self.transport.close()

    def __enter__(self) -> "HttpNode":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
