"""Transport helpers shared by the bindings."""

from __future__ import annotations

from typing import Dict, Optional


def split_address(address: str) -> tuple:
    """Split ``scheme://authority/path`` into ``(scheme, authority, path)``.

    Raises:
        ValueError: if the address has no ``://``.
    """
    scheme, sep, rest = address.partition("://")
    if not sep:
        raise ValueError(f"not an absolute address: {address!r}")
    authority, slash, path = rest.partition("/")
    return scheme, authority, ("/" + path if slash else "")


class LoopbackTransport:
    """Zero-latency in-process transport for unit tests.

    Runtimes register under their base address; ``send`` synchronously
    invokes the destination runtime's ``receive``.  Unknown destinations
    are counted and dropped (datagram semantics, like the simulator).
    """

    def __init__(self) -> None:
        self._receivers: Dict[str, object] = {}
        self.dropped = 0
        self.delivered = 0

    def register(self, runtime) -> None:
        """Register a :class:`~repro.soap.runtime.SoapRuntime`."""
        self._receivers[runtime.base_address] = runtime

    def send(self, address: str, data: bytes) -> None:
        """Deliver synchronously to the registered runtime, else drop."""
        scheme, authority, _ = split_address(address)
        base = f"{scheme}://{authority}"
        runtime = self._receivers.get(base)
        if runtime is None:
            self.dropped += 1
            return
        self.delivered += 1
        runtime.receive(data, source=None)
