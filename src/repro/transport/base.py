"""Transport helpers shared by the bindings.

Besides address parsing and the loopback binding, this module implements
the resilient send path every transport shares
(:class:`ResilientTransport`): bounded retry with exponential backoff and
jitter, a per-destination circuit breaker, and structured
:class:`SendOutcome` callbacks that replace silent error counters.  The
HTTP and simulator bindings subclass it and only supply the single-attempt
``_send_once`` plus a timer (``_defer``); the orchestration -- when to
retry, when to stop trying a peer, what to report -- lives here once.
"""

from __future__ import annotations

import dataclasses
import random
import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.simnet.metrics import HealthStats


def split_address(address: str) -> tuple:
    """Split ``scheme://authority/path`` into ``(scheme, authority, path)``.

    Raises:
        ValueError: if the address has no ``://``.
    """
    scheme, sep, rest = address.partition("://")
    if not sep:
        raise ValueError(f"not an absolute address: {address!r}")
    authority, slash, path = rest.partition("/")
    return scheme, authority, ("/" + path if slash else "")


class SendError(OSError):
    """A send attempt failed for a known, named reason.

    Subclasses :class:`OSError` so transport code that already catches
    socket-level errors treats injected/simulated failures uniformly.

    ``retry_after`` (seconds) is set when the *receiver* explicitly asked
    the sender to back off -- an HTTP ``429`` with a ``Retry-After``
    header, or an :class:`~repro.core.overload.OverloadError` surfaced
    through a binding.  The resilient send path treats such failures as
    backpressure, not peer failure: the breaker is left alone and the
    server-specified delay replaces exponential backoff.
    """

    def __init__(
        self,
        reason: str,
        destination: Optional[str] = None,
        retry_after: Optional[float] = None,
    ) -> None:
        super().__init__(f"send failed ({reason})"
                         + (f" to {destination}" if destination else ""))
        self.reason = reason
        self.destination = destination
        self.retry_after = retry_after


def parse_retry_after(value: Optional[str]) -> Optional[float]:
    """Parse a ``Retry-After`` header value to seconds (``None`` if absent
    or unusable).  Only the delta-seconds form is supported -- both edges
    in this repo emit decimal seconds, never HTTP-dates."""
    if not value:
        return None
    try:
        seconds = float(value)
    except (TypeError, ValueError):
        return None
    return max(0.0, seconds)


@dataclass(frozen=True)
class SendOutcome:
    """Structured result of one logical send (including its retries).

    Attributes:
        destination: the address the send targeted.
        ok: whether any attempt succeeded.
        error: short failure tag -- the exception class name, a
            :class:`SendError` reason, or ``"circuit-open"`` when the
            breaker refused the send locally.
        attempts: attempts actually made (0 when the breaker refused).
        exception: the terminal exception, when one was raised.
    """

    destination: str
    ok: bool
    error: Optional[str] = None
    attempts: int = 1
    exception: Optional[BaseException] = None


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff with jitter.

    ``max_retries == 0`` (the default) disables retrying entirely, which
    keeps plain transports exactly fire-and-forget.
    """

    max_retries: int = 0
    backoff: float = 0.05
    multiplier: float = 2.0
    backoff_cap: float = 2.0
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0: {self.max_retries!r}")
        if self.backoff <= 0:
            raise ValueError(f"backoff must be positive: {self.backoff!r}")
        if self.multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1: {self.multiplier!r}")
        if self.backoff_cap < self.backoff:
            raise ValueError(
                f"backoff_cap ({self.backoff_cap}) must be >= backoff "
                f"({self.backoff})"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1]: {self.jitter!r}")

    def delay(self, attempt: int, rng: random.Random) -> float:
        """Backoff before retrying after failed attempt number ``attempt``
        (1-based): ``backoff * multiplier**(attempt-1)`` capped at
        ``backoff_cap``, plus up to ``jitter`` of itself uniformly."""
        if attempt < 1:
            raise ValueError(f"attempt is 1-based: {attempt!r}")
        base = min(self.backoff_cap, self.backoff * self.multiplier ** (attempt - 1))
        if self.jitter > 0.0:
            base += rng.uniform(0.0, self.jitter * base)
        return base

    def schedule(self, rng: Optional[random.Random] = None) -> List[float]:
        """The full retry-delay schedule (one entry per allowed retry).

        With ``rng=None`` the schedule is jitter-free -- the deterministic
        skeleton tests assert against.
        """
        if rng is None:
            bare = dataclasses.replace(self, jitter=0.0)
            rng = random.Random(0)
            return [bare.delay(n, rng) for n in range(1, self.max_retries + 1)]
        return [self.delay(n, rng) for n in range(1, self.max_retries + 1)]


@dataclass(frozen=True)
class BreakerPolicy:
    """Per-destination circuit-breaker configuration.

    Attributes:
        failure_threshold: consecutive failed attempts (``K``) that open
            the breaker.
        reset_timeout: seconds an open breaker waits before admitting one
            half-open probe.
    """

    failure_threshold: int = 3
    reset_timeout: float = 5.0

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1: {self.failure_threshold!r}"
            )
        if self.reset_timeout <= 0:
            raise ValueError(
                f"reset_timeout must be positive: {self.reset_timeout!r}"
            )


class CircuitBreaker:
    """Classic three-state breaker for one destination.

    CLOSED counts consecutive failures; at ``failure_threshold`` it OPENs
    and refuses sends.  After ``reset_timeout`` one probe is admitted
    (HALF_OPEN); its success closes the breaker, its failure re-opens it
    and re-arms the timer.  State transitions are recorded in the owning
    transport's :class:`~repro.simnet.metrics.HealthStats` group.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(
        self, policy: BreakerPolicy, stats: Optional[HealthStats] = None
    ) -> None:
        self.policy = policy
        if stats is None:
            from repro.obs.hub import default_hub

            stats = default_hub().health
        self.stats = stats
        self.state = self.CLOSED
        self.consecutive_failures = 0
        self.opened_at: Optional[float] = None

    def allow(self, now: float) -> bool:
        """Whether a send may proceed right now (may admit the probe)."""
        if self.state == self.CLOSED:
            return True
        if self.state == self.OPEN:
            if self.opened_at is not None and now - self.opened_at >= self.policy.reset_timeout:
                self.state = self.HALF_OPEN
                self.stats.breaker_probes += 1
                return True
            return False
        # HALF_OPEN: exactly one probe in flight; refuse the rest.
        return False

    def record_success(self) -> None:
        """A send (or the half-open probe) succeeded."""
        if self.state != self.CLOSED:
            self.stats.breaker_closed += 1
        self.state = self.CLOSED
        self.consecutive_failures = 0
        self.opened_at = None

    def record_failure(self, now: float) -> None:
        """A send attempt failed; may trip the breaker."""
        if self.state == self.HALF_OPEN:
            # The probe failed: back to OPEN, timer re-armed.
            self.state = self.OPEN
            self.opened_at = now
            return
        self.consecutive_failures += 1
        if (
            self.state == self.CLOSED
            and self.consecutive_failures >= self.policy.failure_threshold
        ):
            self.state = self.OPEN
            self.opened_at = now
            self.stats.breaker_opened += 1


FaultHook = Callable[[str], Optional[str]]
OutcomeListener = Callable[[SendOutcome], None]


class ResilientTransport:
    """Shared resilient send path: breaker gate, bounded retry, outcomes.

    Subclasses implement :meth:`_send_once` (one attempt, raising on
    failure) and usually :meth:`_defer` (how to wait before a retry --
    simulator timer, worker-thread sleep...).  The default configuration
    (no retries, no breaker, no listeners) makes :meth:`send` behave
    exactly like a bare fire-and-forget transport, so resilience is
    strictly opt-in.

    Breaker state is keyed by the destination's base address
    (``scheme://authority``): all services of one node share one breaker,
    matching how a real host fails.
    """

    def __init__(
        self,
        retry: Optional[RetryPolicy] = None,
        breaker: Optional[BreakerPolicy] = None,
        clock: Optional[Callable[[], float]] = None,
        rng: Optional[random.Random] = None,
        stats: Optional[HealthStats] = None,
    ) -> None:
        self._retry = retry if retry is not None else RetryPolicy()
        self._breaker_policy = breaker
        self._breakers: Dict[str, CircuitBreaker] = {}
        self._outcome_listeners: List[OutcomeListener] = []
        self._fault_hook: Optional[FaultHook] = None
        self._clock = clock if clock is not None else time.monotonic
        self._resilience_rng = rng if rng is not None else random.Random()
        self._breaker_lock = threading.Lock()
        from repro.obs.hub import default_hub

        if stats is None:
            stats = default_hub().health
        self._health_stats = stats
        # Retry-After honors are backpressure accounting, not peer
        # health; they land on the process-wide overload group.
        self._overload_stats = default_hub().overload

    # -- configuration ------------------------------------------------------

    def configure_resilience(
        self,
        retry: Optional[RetryPolicy] = None,
        breaker: Optional[BreakerPolicy] = None,
    ) -> None:
        """(Re)configure retry/breaker policies after construction.

        Changing the breaker policy resets all per-destination state.
        """
        if retry is not None:
            self._retry = retry
        if breaker is not None:
            with self._breaker_lock:
                self._breaker_policy = breaker
                self._breakers.clear()

    def add_outcome_listener(self, listener: OutcomeListener) -> None:
        """Register a callback invoked with every :class:`SendOutcome`."""
        self._outcome_listeners.append(listener)

    def inject_fault(self, hook: Optional[FaultHook]) -> None:
        """Install (or clear, with ``None``) a fault-injection hook.

        The hook sees each attempt's destination and returns a failure
        reason to make the attempt fail, or ``None`` to let it through --
        how :class:`~repro.simnet.faults.FaultPlan` makes sends flaky.
        """
        self._fault_hook = hook

    def reset(self) -> None:
        """Drop all per-destination breaker state (a restarted process has
        no memory of which destinations were failing)."""
        with self._breaker_lock:
            self._breakers.clear()

    # -- breaker access -----------------------------------------------------

    @staticmethod
    def breaker_key(address: str) -> str:
        """Normalize an address to its breaker key (base address)."""
        try:
            scheme, authority, _ = split_address(address)
        except ValueError:
            return address
        return f"{scheme}://{authority}"

    def breaker_for(self, address: str) -> Optional[CircuitBreaker]:
        """The destination's breaker (created on demand; None if disabled)."""
        if self._breaker_policy is None:
            return None
        key = self.breaker_key(address)
        with self._breaker_lock:
            breaker = self._breakers.get(key)
            if breaker is None:
                breaker = CircuitBreaker(
                    self._breaker_policy, stats=self._health_stats
                )
                self._breakers[key] = breaker
            return breaker

    # -- the resilient send path --------------------------------------------

    def send(self, address: str, data: bytes) -> None:
        """Send through the breaker gate, retrying failures with backoff."""
        self._start_send(address, data)

    def _start_send(self, address: str, data: bytes) -> None:
        breaker = self.breaker_for(address)
        if breaker is not None:
            with self._breaker_lock:
                allowed = breaker.allow(self._clock())
            if not allowed:
                self._health_stats.sends_suppressed += 1
                self._emit(
                    SendOutcome(address, ok=False, error="circuit-open", attempts=0)
                )
                return
        self._attempt(address, data, attempt=1)

    def _attempt(self, address: str, data: bytes, attempt: int) -> None:
        try:
            injected = self._fault_hook(address) if self._fault_hook else None
            if injected is not None:
                raise SendError(injected, address)
            self._send_once(address, data)
        except (TypeError, ValueError):
            raise  # misuse (bad address/payload), not a transient failure
        except Exception as exc:  # noqa: BLE001 - every failure is an outcome
            self._attempt_failed(address, data, attempt, exc)
        else:
            self._attempt_succeeded(address, attempt)

    def _attempt_succeeded(self, address: str, attempt: int) -> None:
        breaker = self.breaker_for(address)
        if breaker is not None:
            with self._breaker_lock:
                breaker.record_success()
        self._emit(SendOutcome(address, ok=True, attempts=attempt))

    def _attempt_failed(
        self, address: str, data: bytes, attempt: int, exc: BaseException
    ) -> None:
        retry_after = getattr(exc, "retry_after", None)
        if retry_after is not None:
            # Explicit backpressure from the receiver (HTTP 429 / an
            # overload rejection).  The peer is alive and answering --
            # feeding this into the breaker would amputate a healthy
            # destination exactly when it asked for patience, and it is
            # not a send failure for the health/controller signals
            # either.  Honor the server-specified delay instead of the
            # exponential schedule.
            if attempt <= self._retry.max_retries:
                self._overload_stats.retry_after_honored += 1
                self._health_stats.retries += 1
                self._defer(
                    max(0.0, retry_after),
                    lambda: self._attempt(address, data, attempt + 1),
                )
                return
            error = exc.reason if isinstance(exc, SendError) else type(exc).__name__
            self._emit(
                SendOutcome(
                    address, ok=False, error=error,
                    attempts=attempt, exception=exc,
                )
            )
            return
        self._health_stats.send_failures += 1
        breaker = self.breaker_for(address)
        opened = False
        if breaker is not None:
            with self._breaker_lock:
                breaker.record_failure(self._clock())
                opened = breaker.state != CircuitBreaker.CLOSED
        if attempt <= self._retry.max_retries and not opened:
            self._health_stats.retries += 1
            delay = self._retry.delay(attempt, self._resilience_rng)
            self._defer(
                delay, lambda: self._attempt(address, data, attempt + 1)
            )
            return
        error = exc.reason if isinstance(exc, SendError) else type(exc).__name__
        self._emit(
            SendOutcome(address, ok=False, error=error, attempts=attempt, exception=exc)
        )

    def _emit(self, outcome: SendOutcome) -> None:
        for listener in self._outcome_listeners:
            listener(outcome)

    # -- subclass hooks -----------------------------------------------------

    def _send_once(self, address: str, data: bytes) -> None:
        """One delivery attempt; raise on failure."""
        raise NotImplementedError

    def _defer(self, delay: float, callback: Callable[[], None]) -> None:
        """Wait ``delay`` seconds, then run ``callback`` (retry path).

        The default retries immediately; transports with a real notion of
        time (simulator timers, worker threads) override this.
        """
        callback()


class LoopbackTransport(ResilientTransport):
    """Zero-latency in-process transport for unit tests.

    Runtimes register under their base address; ``send`` synchronously
    invokes the destination runtime's ``receive``.  Unknown destinations
    are counted and dropped (datagram semantics, like the simulator) --
    and reported through the resilient path, so breaker/outcome tests can
    run without a network.
    """

    def __init__(
        self,
        retry: Optional[RetryPolicy] = None,
        breaker: Optional[BreakerPolicy] = None,
        clock: Optional[Callable[[], float]] = None,
        rng: Optional[random.Random] = None,
        stats: Optional[HealthStats] = None,
    ) -> None:
        super().__init__(
            retry=retry, breaker=breaker, clock=clock, rng=rng, stats=stats
        )
        self._receivers: Dict[str, object] = {}
        self._pending = None
        self.dropped = 0
        self.delivered = 0

    def register(self, runtime) -> None:
        """Register a :class:`~repro.soap.runtime.SoapRuntime`."""
        self._receivers[runtime.base_address] = runtime

    def unregister(self, base_address: str) -> None:
        """Remove a runtime (simulating its node going away)."""
        self._receivers.pop(base_address, None)

    def send(self, address: str, data: bytes) -> None:
        """Send through the resilient path, then deliver in-process.

        Delivery runs *after* the send outcome is recorded, so a receiver
        that raises (a genuine application bug) propagates to the caller
        instead of masquerading as a transport failure.
        """
        super().send(address, data)
        pending = self._pending
        self._pending = None
        if pending is not None:
            runtime, payload = pending
            self.delivered += 1
            runtime.receive(payload, source=None)

    def _send_once(self, address: str, data: bytes) -> None:
        """Resolve the registered runtime (the 'wire' part), else fail."""
        scheme, authority, _ = split_address(address)
        base = f"{scheme}://{authority}"
        runtime = self._receivers.get(base)
        if runtime is None:
            self.dropped += 1
            raise SendError("unknown-destination", address)
        self._pending = (runtime, data)
