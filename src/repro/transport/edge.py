"""The versioned node-edge API shared by the HTTP server bindings.

Both real-network edges -- the thread-per-request
:class:`~repro.transport.http.HttpNode` and the asyncio
:class:`~repro.transport.aio.AsyncHttpNode` -- expose the same URL space,
defined here once (see docs/WIRE.md, "The versioned node-edge API"):

* ``POST /v1/gossip``  -- envelope ingest (the WS-Addressing ``To`` header
  routes to the mounted service; the HTTP path is just the front door).
* ``GET  /v1/metrics`` -- this node's :class:`~repro.obs.hub.MetricsHub`
  in the Prometheus text exposition format.
* ``GET  /v1/health``  -- liveness plus the mounted service paths, JSON.
* ``GET  /v1/obs/{summary,rumors,nodes,alerts}`` -- paginated JSON read
  models materialized from the node's hub (CQRS over the MetricsHub):
  counters/rates at a glance, per-rumor dissemination spans, per-node
  delivery counts, and the SLO alert timeline.  List resources accept
  ``?offset=&limit=`` and answer a stable envelope
  ``{"items", "offset", "limit", "total", "next_offset"}``.

Legacy unversioned paths (``POST`` to any path, ``GET /metrics``) keep
working but answer with a ``Deprecation: true`` header and a ``Link`` to
the successor resource.

Ingest is idempotent: an ``Idempotency-Key`` request header (falling back
to the wire gossip ``MessageId`` scanned from the body bytes) is checked
against a bounded per-node :class:`IdempotencyIndex`; a replayed POST is
answered ``200`` with ``Idempotent-Replay: true`` without re-entering the
runtime, and counted in the hub's wire stats.

Ingest is also admission-controlled when the node opts in: an
:class:`EdgeAdmission` token bucket gates ``POST /v1/gossip``; a request
arriving faster than the configured rate is answered ``429 Too Many
Requests`` with a ``Retry-After`` header (decimal seconds) *before* the
idempotency index sees it, so the eventual retry is ingested as fresh,
not misread as a replay (see docs/RESILIENCE.md, "Overload and
backpressure").
"""

from __future__ import annotations

import json
import threading
import time
from collections import OrderedDict
from typing import Dict, Mapping, Optional, Tuple

from repro.core.message import scan_gossip_message_id
from repro.core.overload import TokenBucket
from repro.simnet.metrics import OverloadStats, WireStats

API_VERSION = "v1"
GOSSIP_PATH = "/v1/gossip"
METRICS_PATH = "/v1/metrics"
HEALTH_PATH = "/v1/health"
LEGACY_METRICS_PATH = "/metrics"
OBS_PREFIX = "/v1/obs/"
OBS_SUMMARY_PATH = "/v1/obs/summary"
OBS_RUMORS_PATH = "/v1/obs/rumors"
OBS_NODES_PATH = "/v1/obs/nodes"
OBS_ALERTS_PATH = "/v1/obs/alerts"

#: Pagination bounds for the ``/v1/obs/*`` list resources.
OBS_DEFAULT_LIMIT = 50
OBS_MAX_LIMIT = 500

IDEMPOTENCY_KEY_HEADER = "Idempotency-Key"
IDEMPOTENT_REPLAY_HEADER = "Idempotent-Replay"
DEPRECATION_HEADER = "Deprecation"
RETRY_AFTER_HEADER = "Retry-After"

PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"
JSON_CONTENT_TYPE = "application/json; charset=utf-8"


def strip_query(path: str) -> str:
    """The request path without its query string."""
    return path.split("?", 1)[0]


def deprecation_headers(successor: str) -> Dict[str, str]:
    """Response headers marking a legacy path as deprecated.

    ``Deprecation: true`` (draft-ietf-httpapi-deprecation-header) plus a
    ``Link`` naming the versioned successor resource.
    """
    return {
        DEPRECATION_HEADER: "true",
        "Link": f'<{successor}>; rel="successor-version"',
    }


def health_payload(base_address: str, service_paths, extra: Optional[Dict] = None) -> bytes:
    """The ``GET /v1/health`` response body."""
    payload = {
        "status": "ok",
        "node": base_address,
        "api": API_VERSION,
        "services": list(service_paths),
    }
    if extra:
        payload.update(extra)
    return json.dumps(payload, sort_keys=True).encode("utf-8")


class EdgeAdmission:
    """Token-bucket admission control for the ingest edge.

    One bucket per node edge (not per client): the bucket models the
    node's processing capacity, which every sender shares.  Thread-safe,
    because the thread-per-request binding admits from handler threads
    while the asyncio binding admits from the loop.

    Args:
        rate: sustained requests per second the edge admits.
        burst: bucket depth -- requests absorbed back-to-back after idle.
        retry_after: floor (seconds) for the advertised ``Retry-After``;
            the actual value is the bucket's predicted refill time when
            that is longer.
        clock: injectable monotonic clock (tests pin it).
    """

    def __init__(
        self,
        rate: float = 500.0,
        burst: float = 64.0,
        retry_after: float = 1.0,
        clock=time.monotonic,
    ) -> None:
        self._bucket = TokenBucket(float(rate), float(burst))
        self._clock = clock
        self.retry_after_floor = float(retry_after)
        self._lock = threading.Lock()
        #: Requests admitted / answered 429 (lifetime, for tests and /v1/health).
        self.admitted = 0
        self.rejected = 0

    @classmethod
    def from_policy(cls, policy, clock=time.monotonic) -> "EdgeAdmission":
        """Build from an :class:`~repro.core.overload.OverloadPolicy`."""
        return cls(
            rate=policy.admission_rate,
            burst=float(policy.admission_burst),
            retry_after=policy.retry_after,
            clock=clock,
        )

    def admit(self) -> Tuple[bool, float]:
        """Gate one request: ``(admitted, retry_after_seconds)``."""
        now = self._clock()
        with self._lock:
            if self._bucket.admit(now):
                self.admitted += 1
                return True, 0.0
            self.rejected += 1
            return False, max(
                self.retry_after_floor, self._bucket.retry_after(now)
            )


class IdempotencyIndex:
    """Bounded, thread-safe memory of recently ingested publish keys.

    The edge remembers the last ``capacity`` keys in LRU order; asking
    about a key inserts it, so the check and the remembering are one
    atomic step (two racing replays can at most both execute, never
    neither -- at-least-once stays intact, the index only removes the
    common duplicate case).
    """

    def __init__(self, capacity: int = 65536) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1: {capacity!r}")
        self.capacity = capacity
        self._seen: "OrderedDict[str, None]" = OrderedDict()
        self._lock = threading.Lock()
        #: Replays answered without re-entering the runtime.
        self.replays = 0

    def __len__(self) -> int:
        return len(self._seen)

    @staticmethod
    def key_for(headers: Mapping[str, str], body: bytes) -> Optional[str]:
        """The idempotency key of one ingest request.

        The explicit ``Idempotency-Key`` header wins; otherwise the wire
        gossip ``MessageId`` is scanned from the body bytes (retried
        gossip POSTs carry the same envelope, hence the same id).  Returns
        ``None`` when the request has no usable identity -- such requests
        are always processed.
        """
        for name, value in headers.items():
            if name.lower() == IDEMPOTENCY_KEY_HEADER.lower() and value:
                return value.strip() or None
        return scan_gossip_message_id(body)

    def check_and_remember(self, key: Optional[str]) -> bool:
        """True when ``key`` was already ingested (a replay); remembers it."""
        if key is None:
            return False
        with self._lock:
            if key in self._seen:
                self._seen.move_to_end(key)
                self.replays += 1
                return True
            self._seen[key] = None
            while len(self._seen) > self.capacity:
                self._seen.popitem(last=False)
            return False


def ingest_response(
    index: IdempotencyIndex,
    headers: Mapping[str, str],
    body: bytes,
    wire_stats: Optional[WireStats] = None,
    admission: Optional[EdgeAdmission] = None,
    overload_stats: Optional[OverloadStats] = None,
) -> Tuple[int, Dict[str, str], bool]:
    """Decide one POST's response: ``(status, headers, process_body)``.

    Fresh requests answer ``202 Accepted`` and must be handed to the
    runtime; replays answer ``200`` with ``Idempotent-Replay: true`` and
    must NOT re-enter the handler.  Replays are counted on ``wire_stats``
    (the hub's wire group) when given.

    With an ``admission`` bucket, over-rate requests answer ``429`` with
    a decimal-seconds ``Retry-After`` header.  The admission gate runs
    *before* the idempotency check: a rejected request must not be
    remembered, or its honored retry would be answered as a replay and
    the payload silently lost.  Rejections are counted on
    ``overload_stats`` (the hub's overload group) when given.
    """
    if admission is not None:
        ok, retry_after = admission.admit()
        if not ok:
            if overload_stats is not None:
                overload_stats.edge_rejected += 1
            return 429, {RETRY_AFTER_HEADER: f"{retry_after:.3f}"}, False
    if index.check_and_remember(index.key_for(headers, body)):
        if wire_stats is not None:
            wire_stats.idempotent_replays += 1
        return 200, {IDEMPOTENT_REPLAY_HEADER: "true"}, False
    return 202, {}, True


# -- observability read models (GET /v1/obs/*) --------------------------------


def parse_pagination(
    query: str,
    default_limit: int = OBS_DEFAULT_LIMIT,
    max_limit: int = OBS_MAX_LIMIT,
) -> Tuple[int, int]:
    """``(offset, limit)`` from a query string, clamped to sane bounds.

    Malformed values fall back to the defaults -- a read model answers
    what it can rather than turning a dashboard poll into a 400.
    """
    offset, limit = 0, default_limit
    for part in query.split("&"):
        name, _, raw = part.partition("=")
        try:
            value = int(raw)
        except ValueError:
            continue
        if name == "offset":
            offset = max(0, value)
        elif name == "limit":
            limit = max(1, min(max_limit, value))
    return offset, limit


def _page(items, offset: int, limit: int) -> Dict:
    """The stable pagination envelope for a list read model."""
    total = len(items)
    window = items[offset:offset + limit]
    next_offset = offset + limit if offset + limit < total else None
    return {
        "items": window,
        "offset": offset,
        "limit": limit,
        "total": total,
        "next_offset": next_offset,
    }


def _obs_summary(hub, population: Optional[int]) -> Dict:
    spans = hub.tracer.spans()
    firing = any(
        alert.state == "firing" for alert in hub.alerts[-1:]
    )
    return {
        "node": hub.name,
        "population": population,
        "counters": {name: value for name, value in sorted(hub.counters().items())},
        "rates": {
            name: window.rate() for name, window in sorted(hub.windows().items())
        },
        "rumors": len(spans),
        "alerts": {"total": len(hub.alerts), "firing": firing},
    }


def _obs_rumors(hub, population: Optional[int]) -> list:
    rows = []
    for span in hub.tracer.spans():
        row = {
            "message_id": span.message_id,
            "origin": span.origin,
            "published_at": span.publish_time,
            "budget": span.budget,
            "delivered": span.delivered_count,
            "forwards": len(span.forwards),
            "rounds_max": max(span.rounds_of_deliveries(), default=0),
        }
        if population:
            row["rounds_to_99"] = span.rounds_to_fraction(0.99, population)
        rows.append(row)
    rows.sort(key=lambda row: (row["published_at"] or 0.0, row["message_id"]))
    return rows


def _obs_nodes(hub) -> list:
    return [
        {"node": node, "deliveries": count}
        for node, count in sorted(hub.tracer.deliveries_per_node().items())
    ]


def _obs_alerts(hub) -> list:
    return [alert.to_value() for alert in hub.alerts]


def obs_response(
    hub, raw_path: str, population: Optional[int] = None
) -> Optional[Tuple[int, Dict[str, str], bytes]]:
    """Serve one ``GET /v1/obs/*`` request from ``hub``, or ``None``.

    ``raw_path`` keeps its query string (pagination).  Shared verbatim by
    the thread-per-request and asyncio HTTP bindings so both speak the
    same read-model dialect.  Unknown ``/v1/obs/`` subpaths answer 404.
    """
    path, _, query = raw_path.partition("?")
    if not path.startswith(OBS_PREFIX):
        return None
    if path == OBS_SUMMARY_PATH:
        payload = _obs_summary(hub, population)
    else:
        if path == OBS_RUMORS_PATH:
            items = _obs_rumors(hub, population)
        elif path == OBS_NODES_PATH:
            items = _obs_nodes(hub)
        elif path == OBS_ALERTS_PATH:
            items = _obs_alerts(hub)
        else:
            return 404, {}, b'{"error": "unknown observability resource"}'
        offset, limit = parse_pagination(query)
        payload = _page(items, offset, limit)
    body = json.dumps(payload, sort_keys=True).encode("utf-8")
    return 200, {"Content-Type": JSON_CONTENT_TYPE}, body
