"""A simulated node running WS-Membership."""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.scheduling import ProcessScheduler
from repro.simnet.network import Network
from repro.transport.inmem import WsProcess
from repro.wsmembership.engine import MembershipEngine
from repro.wsmembership.service import MembershipService


class MembershipNode(WsProcess):
    """Node hosting the membership engine and its endpoint.

    Also usable as a mixin-style base: any WsProcess subclass can host the
    same engine/service pair to add failure management to its stack.
    """

    def __init__(
        self,
        name: str,
        network: Network,
        period: float = 1.0,
        fanout: int = 2,
        t_fail: float = 5.0,
        t_cleanup: Optional[float] = None,
    ) -> None:
        super().__init__(name, network)
        self.membership = MembershipEngine(
            runtime=self.runtime,
            scheduler=ProcessScheduler(self),
            self_address=self.runtime.base_address,
            period=period,
            fanout=fanout,
            t_fail=t_fail,
            t_cleanup=t_cleanup,
            rng=self.sim.rng.get(f"membership:{name}"),
        )
        self.runtime.add_service("/membership", MembershipService(self.membership))

    def on_start(self) -> None:
        self.membership.start()

    def on_recover(self) -> None:
        # Crash-recovery: resume heartbeating; peers will see the heartbeat
        # progress again and un-suspect us.
        self.membership._running = False
        self.membership.start()

    def bootstrap(self, seeds: Sequence[str]) -> None:
        """Introduce known members to this node's table."""
        self.membership.bootstrap(seeds)
