"""WS-Membership: gossip-style failure management (Vogels & Re, 2003).

The paper's distributed-Coordinator mode relies on WS-Membership to keep
the subscriber list "in a distributed fashion".  This package implements
the heartbeat-gossip membership protocol:

* every node keeps a table ``member -> (heartbeat, last_update, status)``;
* periodically it bumps its own heartbeat and gossips the table to a few
  random members;
* receivers merge by taking the larger heartbeat;
* a detector sweep marks members SUSPECT after ``t_fail`` without
  progress and FAILED (removed) after ``t_cleanup``.
"""

from repro.wsmembership.engine import MembershipEngine
from repro.wsmembership.node import MembershipNode
from repro.wsmembership.service import MembershipService
from repro.wsmembership.view import MemberStatus, MembershipView

__all__ = [
    "MemberStatus",
    "MembershipEngine",
    "MembershipNode",
    "MembershipService",
    "MembershipView",
]
