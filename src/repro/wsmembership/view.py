"""The membership table and its merge semantics."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional


class MemberStatus(enum.Enum):
    """Detector opinion about one member."""

    ALIVE = "alive"
    SUSPECT = "suspect"
    FAILED = "failed"


@dataclass
class MemberRecord:
    """One row of the membership table.

    ``heartbeat`` only ever increases (monotone merge); ``last_update`` is
    the *local* time the heartbeat last increased, which is what the
    failure detector ages.
    """

    address: str
    heartbeat: int
    last_update: float
    status: MemberStatus = MemberStatus.ALIVE


class MembershipView:
    """Per-node membership table with gossip merge and detector sweep."""

    def __init__(self, self_address: str) -> None:
        self.self_address = self_address
        self._records: Dict[str, MemberRecord] = {
            self_address: MemberRecord(self_address, 0, 0.0)
        }

    # -- local heartbeat -----------------------------------------------------

    def beat(self, now: float) -> None:
        """Advance our own heartbeat."""
        record = self._records[self.self_address]
        record.heartbeat += 1
        record.last_update = now
        record.status = MemberStatus.ALIVE

    # -- gossip merge -----------------------------------------------------------

    def snapshot(self) -> List[dict]:
        """Serializable table (address -> heartbeat) sent in gossip.

        Suspect members are included (their heartbeat still disproves false
        suspicion at other nodes); failed ones are not resurrected by us.
        """
        return [
            {"address": record.address, "heartbeat": record.heartbeat}
            for record in self._records.values()
            if record.status is not MemberStatus.FAILED
        ]

    def merge(self, remote: List[dict], now: float) -> int:
        """Merge a received table; returns how many rows progressed."""
        progressed = 0
        for item in remote:
            if not isinstance(item, dict):
                continue
            address = item.get("address")
            heartbeat = item.get("heartbeat")
            if not isinstance(address, str) or not isinstance(heartbeat, int):
                continue
            record = self._records.get(address)
            if record is None:
                self._records[address] = MemberRecord(address, heartbeat, now)
                progressed += 1
            elif heartbeat > record.heartbeat:
                record.heartbeat = heartbeat
                record.last_update = now
                if record.status is not MemberStatus.FAILED:
                    record.status = MemberStatus.ALIVE
                progressed += 1
        return progressed

    # -- failure detection ----------------------------------------------------------

    def sweep(self, now: float, t_fail: float, t_cleanup: float) -> List[str]:
        """Run the detector; returns addresses newly marked FAILED.

        ``t_fail`` stale -> SUSPECT; ``t_cleanup`` stale -> FAILED and
        dropped from gossip.  Our own record is exempt.
        """
        if t_cleanup < t_fail:
            raise ValueError("t_cleanup must be >= t_fail")
        newly_failed = []
        for record in self._records.values():
            if record.address == self.self_address:
                continue
            staleness = now - record.last_update
            if staleness >= t_cleanup:
                if record.status is not MemberStatus.FAILED:
                    record.status = MemberStatus.FAILED
                    newly_failed.append(record.address)
            elif staleness >= t_fail:
                if record.status is MemberStatus.ALIVE:
                    record.status = MemberStatus.SUSPECT
        return newly_failed

    # -- queries -----------------------------------------------------------------------

    def status_of(self, address: str) -> Optional[MemberStatus]:
        """The detector's opinion of ``address`` (None when unknown)."""
        record = self._records.get(address)
        return record.status if record is not None else None

    def members(self, status: Optional[MemberStatus] = None) -> List[str]:
        """Addresses with the given status (default: not FAILED)."""
        if status is None:
            return [
                record.address
                for record in self._records.values()
                if record.status is not MemberStatus.FAILED
            ]
        return [
            record.address
            for record in self._records.values()
            if record.status is status
        ]

    def alive_members(self) -> List[str]:
        """Addresses currently believed ALIVE."""
        return self.members(MemberStatus.ALIVE)

    def record(self, address: str) -> Optional[MemberRecord]:
        """The raw table row for ``address``, or ``None``."""
        return self._records.get(address)

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, address: str) -> bool:
        return address in self._records
