"""The ``/membership`` SOAP endpoint."""

from __future__ import annotations

from repro.soap.fault import sender_fault
from repro.soap.handler import MessageContext
from repro.soap.service import Service, operation
from repro.wsmembership.engine import UPDATE_ACTION, MembershipEngine


class MembershipService(Service):
    """Receives gossiped membership tables."""

    def __init__(self, engine: MembershipEngine) -> None:
        super().__init__()
        self._engine = engine

    @operation(UPDATE_ACTION)
    def update(self, context: MessageContext, value) -> None:
        """SOAP operation: merge a gossiped membership table."""
        if not isinstance(value, dict):
            raise sender_fault("Update requires a map payload")
        table = value.get("table")
        if not isinstance(table, list):
            raise sender_fault("Update requires a table list")
        self._engine.receive_update(table)
        return None
