"""Heartbeat-gossip membership engine."""

from __future__ import annotations

import random
from typing import Callable, List, Optional, Sequence

from repro.core.params import ParamError
from repro.core.scheduling import Scheduler
from repro.soap import namespaces as ns
from repro.soap.runtime import SoapRuntime
from repro.transport.base import split_address
from repro.wsmembership.view import MemberStatus, MembershipView

UPDATE_ACTION = f"{ns.WSMEMBERSHIP}/Update"
MEMBERSHIP_SERVICE_PATH = "/membership"


def membership_address_of(address: str) -> str:
    """A node's membership endpoint, from any of its addresses."""
    scheme, authority, _ = split_address(address)
    return f"{scheme}://{authority}{MEMBERSHIP_SERVICE_PATH}"


class MembershipEngine:
    """Runs heartbeat gossip and the failure detector for one node.

    Args:
        runtime: the node's SOAP runtime.
        scheduler: timer source.
        self_address: identity gossiped to others (base or app address).
        period: gossip period (heartbeat + table exchange).
        fanout: how many members each round's table is sent to.
        t_fail: staleness (seconds) before a member is SUSPECT.
        t_cleanup: staleness before a member is FAILED; per Vogels & Re
            this should be well above ``t_fail`` (default 2x).
        on_failure: optional callback ``(address)`` on new failures.
    """

    def __init__(
        self,
        runtime: SoapRuntime,
        scheduler: Scheduler,
        self_address: str,
        period: float = 1.0,
        fanout: int = 2,
        t_fail: float = 5.0,
        t_cleanup: Optional[float] = None,
        rng: Optional[random.Random] = None,
        jitter: float = 0.1,
        on_failure: Optional[Callable[[str], None]] = None,
    ) -> None:
        if period <= 0:
            raise ParamError("period", f"period must be positive: {period!r}")
        if fanout < 1:
            raise ParamError("fanout", f"fanout must be >= 1: {fanout!r}")
        if t_fail <= period:
            raise ParamError(
                "t_fail",
                f"t_fail ({t_fail}) must exceed the gossip period ({period})",
            )
        if t_cleanup is not None and t_cleanup < t_fail:
            raise ParamError(
                "t_cleanup",
                f"t_cleanup ({t_cleanup}) must be >= t_fail ({t_fail})",
            )
        if jitter < 0:
            raise ParamError("jitter", f"jitter must be non-negative: {jitter!r}")
        self.runtime = runtime
        self.scheduler = scheduler
        self.view = MembershipView(self_address)
        self.period = period
        self.fanout = fanout
        self.t_fail = t_fail
        self.t_cleanup = t_cleanup if t_cleanup is not None else 2.0 * t_fail
        self.rng = rng if rng is not None else random.Random()
        self.jitter = jitter
        self.on_failure = on_failure
        self._running = False

    @property
    def self_address(self) -> str:
        return self.view.self_address

    def bootstrap(self, seeds: Sequence[str]) -> None:
        """Introduce known members (their heartbeats start at 0)."""
        now = self.scheduler.now
        self.view.merge(
            [{"address": seed, "heartbeat": 0} for seed in seeds if seed], now
        )

    def start(self) -> None:
        """Begin heartbeating and gossiping the table."""
        if self._running:
            return
        self._running = True
        self._schedule()

    def stop(self) -> None:
        """Stop heartbeating."""
        self._running = False

    def rejoin(self, seeds: Sequence[str]) -> None:
        """Restart membership after a crash-faithful process restart.

        The pre-crash table is process state and is discarded: the node
        comes back with a fresh view seeded only by ``seeds``, announces
        itself through normal heartbeat gossip, and relearns the group --
        peers meanwhile resolve the node's old incarnation through the
        ordinary SUSPECT/FAILED sweep and its new heartbeats.
        """
        self._running = False
        self.view = MembershipView(self.view.self_address)
        self.bootstrap(seeds)
        self.runtime.metrics.counter("membership.rejoin").inc()
        self.start()

    def _schedule(self) -> None:
        delay = self.period + self.rng.uniform(0.0, self.jitter)
        self.scheduler.call_after(delay, self._round)

    def _round(self) -> None:
        if not self._running:
            return
        now = self.scheduler.now
        self.view.beat(now)
        self._gossip_table()
        newly_failed = self.view.sweep(now, self.t_fail, self.t_cleanup)
        for address in newly_failed:
            self.runtime.metrics.counter("membership.failed").inc()
            if self.on_failure is not None:
                self.on_failure(address)
        self._schedule()

    def _gossip_table(self) -> None:
        candidates = [
            address
            for address in self.view.members()
            if address != self.self_address
            and self.view.status_of(address) is not MemberStatus.SUSPECT
        ]
        if not candidates:
            return
        count = min(self.fanout, len(candidates))
        targets = self.rng.sample(candidates, count)
        snapshot = self.view.snapshot()
        for target in targets:
            self.runtime.metrics.counter("membership.gossip").inc()
            self.runtime.send(
                membership_address_of(target),
                UPDATE_ACTION,
                value={"from": self.self_address, "table": snapshot},
            )

    def receive_update(self, table: List[dict]) -> int:
        """Merge a gossiped table; returns rows progressed."""
        return self.view.merge(table, self.scheduler.now)

    def alive_members(self) -> List[str]:
        """Live membership view (plugs into gossip engines as peer view)."""
        return [
            address
            for address in self.view.alive_members()
            if address != self.self_address
        ]
