"""Static k-ary broadcast tree baseline.

Message-optimal (N-1 messages per dissemination) and latency-good
(depth log_k N), but brittle: a crashed interior node cuts off its entire
subtree -- the fragility the paper's resilience claims target.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.baselines.common import BASELINE_ACTION, BaselineGroup, RecordingNode


class TreeGroup(BaselineGroup):
    """Receivers arranged as a k-ary tree rooted at receiver 0.

    The publisher sends to the root; every node forwards to its children
    on first receipt.
    """

    def __init__(self, n_receivers: int, arity: int = 2, **kwargs) -> None:
        if arity < 1:
            raise ValueError(f"arity must be >= 1: {arity!r}")
        super().__init__(n_receivers, **kwargs)
        self.arity = arity
        self._children: Dict[str, List[str]] = {}
        for index, node in enumerate(self.receivers):
            children = []
            for child_offset in range(1, arity + 1):
                child_index = arity * index + child_offset
                if child_index < len(self.receivers):
                    children.append(self.receivers[child_index].app_address)
            self._children[node.name] = children
            node.forward_hook = self._forward

    def children_of(self, name: str) -> List[str]:
        """A node's children in the broadcast tree (app addresses)."""
        return list(self._children.get(name, []))

    def depth(self) -> int:
        """Tree depth (informational, for E4/E5 reports)."""
        depth = 0
        index = len(self.receivers) - 1
        while index > 0:
            index = (index - 1) // self.arity
            depth += 1
        return depth

    def _forward(self, node: RecordingNode, mid: str, value: Any) -> None:
        for child in self._children.get(node.name, []):
            self.metrics.counter("tree.forward").inc()
            node.runtime.send(child, BASELINE_ACTION, value=value)

    def publish(self, value: Any = None) -> str:
        """Inject one item at the tree root (receiver 0)."""
        mid = self.new_mid()
        payload = {"mid": mid, "data": value}
        root = self.receivers[0]
        # Inject at the root via its own runtime (the root is the
        # publisher in this architecture).
        self.metrics.counter("tree.forward").inc()
        root.runtime.send(root.app_address, BASELINE_ACTION, value=payload)
        return mid
