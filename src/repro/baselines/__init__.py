"""Baseline dissemination strategies for the evaluation.

Each baseline mirrors :class:`repro.core.api.GossipGroup`'s surface
(``setup`` / ``publish`` / ``run_for`` / ``delivered_fraction``) so the
benchmarks sweep them interchangeably:

* :class:`~repro.baselines.centralnotify.CentralNotifyGroup` -- the
  WS-Notification broker architecture the paper positions against.
* :class:`~repro.baselines.unicast.UnicastGroup` -- the initiator
  sequentially notifies every receiver itself.
* :class:`~repro.baselines.tree.TreeGroup` -- a static k-ary broadcast
  tree: minimal message count, but one crashed interior node severs its
  whole subtree.
* :class:`~repro.baselines.flooding.FloodGroup` -- flooding over a random
  regular overlay: very reliable, very redundant.
"""

from repro.baselines.centralnotify import CentralNotifyGroup
from repro.baselines.flooding import FloodGroup
from repro.baselines.tree import TreeGroup
from repro.baselines.unicast import UnicastGroup

__all__ = ["CentralNotifyGroup", "FloodGroup", "TreeGroup", "UnicastGroup"]
