"""Sequential unicast baseline: the initiator notifies everyone itself."""

from __future__ import annotations

from typing import Any, List

from repro.baselines.common import BASELINE_ACTION, BaselineGroup
from repro.transport.inmem import WsProcess


class UnicastGroup(BaselineGroup):
    """The pre-broker architecture: the publishing application loops over
    the receiver list.  All send load concentrates at the initiator; a
    single lost message permanently misses that receiver."""

    def __init__(self, n_receivers: int, **kwargs) -> None:
        super().__init__(n_receivers, **kwargs)
        self.publisher = WsProcess("publisher", self.network)

    def all_nodes(self) -> List[WsProcess]:
        """Publisher plus every receiver."""
        return [self.publisher, *self.receivers]

    def publish(self, value: Any = None) -> str:
        """Sequentially unicast one item to every receiver."""
        mid = self.new_mid()
        payload = {"mid": mid, "data": value}
        for node in self.receivers:
            self.metrics.counter("unicast.fanout").inc()
            self.publisher.runtime.send(
                node.app_address, BASELINE_ACTION, value=payload
            )
        return mid
