"""Flooding over a random regular overlay.

Every node forwards each new message to *all* of its overlay neighbours.
Extremely reliable (as long as the overlay stays connected) and extremely
redundant: ~``degree`` times more messages than the tree.  Used as the
upper anchor of the overhead/reliability trade-off in E8.
"""

from __future__ import annotations

from typing import Any, Dict, List

import networkx

from repro.baselines.common import BASELINE_ACTION, BaselineGroup, RecordingNode


class FloodGroup(BaselineGroup):
    """Receivers connected by a random ``degree``-regular graph."""

    def __init__(self, n_receivers: int, degree: int = 4, **kwargs) -> None:
        if degree < 1:
            raise ValueError(f"degree must be >= 1: {degree!r}")
        if degree >= n_receivers:
            raise ValueError(
                f"degree ({degree}) must be below the population ({n_receivers})"
            )
        super().__init__(n_receivers, **kwargs)
        self.degree = degree
        if (degree * n_receivers) % 2 == 1:
            raise ValueError("degree * n_receivers must be even for a regular graph")
        graph = networkx.random_regular_graph(
            degree, n_receivers, seed=self.sim.rng.get("overlay").randint(0, 2**31)
        )
        self._neighbors: Dict[str, List[str]] = {}
        for index, node in enumerate(self.receivers):
            self._neighbors[node.name] = [
                self.receivers[neighbor].app_address
                for neighbor in graph.neighbors(index)
            ]
            node.forward_hook = self._forward

    def neighbors_of(self, name: str) -> List[str]:
        """Overlay neighbours of one receiver (app addresses)."""
        return list(self._neighbors.get(name, []))

    def _forward(self, node: RecordingNode, mid: str, value: Any) -> None:
        for neighbor in self._neighbors.get(node.name, []):
            self.metrics.counter("flood.forward").inc()
            node.runtime.send(neighbor, BASELINE_ACTION, value=value)

    def publish(self, value: Any = None) -> str:
        """Inject one item at the flood root (receiver 0)."""
        mid = self.new_mid()
        payload = {"mid": mid, "data": value}
        root = self.receivers[0]
        self.metrics.counter("flood.forward").inc()
        root.runtime.send(root.app_address, BASELINE_ACTION, value=payload)
        return mid
