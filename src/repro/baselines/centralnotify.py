"""The WS-Notification broker baseline (centralized fan-out)."""

from __future__ import annotations

from typing import Any, List, Optional

from repro.baselines.common import BASELINE_ACTION, BaselineGroup, RecordingNode
from repro.transport.inmem import WsProcess
from repro.wsn.broker import BrokerNode
from repro.wsn.client import notify, subscribe


class CentralNotifyGroup(BaselineGroup):
    """One broker, one publisher, N consumers.

    Every notification is one inbound message to the broker plus N
    outbound -- the broker's load grows linearly with the population and a
    broker crash silences the whole system (experiments E5/E6).
    """

    TOPIC = "baseline"

    def __init__(self, n_receivers: int, **kwargs) -> None:
        super().__init__(n_receivers, **kwargs)
        self.broker = BrokerNode("broker", self.network)
        self.publisher = WsProcess("publisher", self.network)

    def all_nodes(self) -> List[WsProcess]:
        """Broker, publisher, and every receiver."""
        return [self.broker, self.publisher, *self.receivers]

    def _setup(self) -> None:
        for node in self.receivers:
            subscribe(
                node.runtime,
                self.broker.broker_address,
                self.TOPIC,
                node.app_address,
            )

    def publish(self, value: Any = None) -> str:
        """Publish one notification through the broker."""
        mid = self.new_mid()
        notify(
            self.publisher.runtime,
            self.broker.broker_address,
            self.TOPIC,
            BASELINE_ACTION,
            payload={"mid": mid, "data": value},
        )
        return mid
