"""Shared plumbing for the baseline groups."""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, List, Optional

from repro.simnet.events import Simulator
from repro.simnet.latency import LatencyModel
from repro.obs.hub import MetricsHub, default_hub, use_hub
from repro.simnet.network import Network
from repro.simnet.trace import TraceLog
from repro.soap.handler import MessageContext
from repro.soap.service import Service
from repro.transport.inmem import WsProcess

BASELINE_ACTION = "urn:ws-gossip:baseline/Event"
APP_PATH = "/app"


class RecordingNode(WsProcess):
    """A plain SOAP node recording deliveries of ``{"mid": ..., "data": ...}``
    payloads, with an optional forwarding hook (used by tree / flooding)."""

    def __init__(self, name: str, network: Network, action: str = BASELINE_ACTION) -> None:
        super().__init__(name, network)
        self.action = action
        self.app_service = Service()
        self.runtime.add_service(APP_PATH, self.app_service)
        self.app_service.add_operation(action, self._handle)
        self.first_delivery: Dict[str, float] = {}
        self.receipts: Dict[str, int] = {}
        self.forward_hook: Optional[Callable[["RecordingNode", str, Any], None]] = None

    @property
    def app_address(self) -> str:
        return self.runtime.address_of(APP_PATH)

    def _handle(self, context: MessageContext, value: Any) -> None:
        if not isinstance(value, dict) or "mid" not in value:
            return None
        mid = value["mid"]
        self.receipts[mid] = self.receipts.get(mid, 0) + 1
        if mid not in self.first_delivery:
            self.first_delivery[mid] = self.now
            if self.forward_hook is not None:
                self.forward_hook(self, mid, value)
        return None

    def has_delivered(self, mid: str) -> bool:
        """True when this node received the item at least once."""
        return mid in self.first_delivery

    def delivery_time(self, mid: str) -> Optional[float]:
        """First delivery time of the item, or ``None``."""
        return self.first_delivery.get(mid)


class BaselineGroup:
    """Common base: owns the simulator, network, and receiver accounting."""

    def __init__(
        self,
        n_receivers: int,
        seed: int = 0,
        latency: Optional[LatencyModel] = None,
        loss_rate: float = 0.0,
        trace: bool = False,
    ) -> None:
        if n_receivers < 1:
            raise ValueError(f"need at least one receiver: {n_receivers!r}")
        self.sim = Simulator(seed=seed)
        self.trace = TraceLog(enabled=trace)
        # One hub per baseline deployment (chained to the default hub).
        self.metrics = MetricsHub(parent=default_hub(), name="baseline-group")
        self.hub = self.metrics
        self.network = Network(
            self.sim,
            latency=latency,
            loss_rate=loss_rate,
            trace=self.trace,
            metrics=self.metrics,
        )
        self.receivers: List[RecordingNode] = [
            RecordingNode(f"r{index}", self.network) for index in range(n_receivers)
        ]
        self._mid_counter = itertools.count()
        self._setup_done = False

    def new_mid(self) -> str:
        """A fresh baseline message identifier."""
        return f"mid-{next(self._mid_counter)}"

    def run_for(self, duration: float) -> None:
        """Advance simulated time by ``duration`` seconds (under this
        group's hub, so hub-less call sites attribute costs here)."""
        with use_hub(self.hub):
            self.sim.run_until(self.sim.now + duration)

    def setup(self, settle: float = 1.0) -> None:
        """Template method: subclasses wire their topology in
        :meth:`_setup` and this drains the control traffic."""
        if self._setup_done:
            return
        self._setup_done = True
        for node in self.all_nodes():
            node.start()
        self._setup()
        self.run_for(settle)

    def _setup(self) -> None:
        """Subclass hook: subscriptions / topology construction."""

    def all_nodes(self) -> List[WsProcess]:
        """Every node in the deployment (receivers by default)."""
        return list(self.receivers)

    def publish(self, value: Any = None) -> str:
        """Disseminate one item; returns its identifier."""
        raise NotImplementedError

    # -- measurements ----------------------------------------------------------

    def delivered_fraction(self, mid: str) -> float:
        """Fraction of receivers that got the item."""
        delivered = sum(1 for node in self.receivers if node.has_delivered(mid))
        return delivered / len(self.receivers)

    def delivery_times(self, mid: str) -> List[float]:
        """First-delivery times across receivers that got the item."""
        return [
            node.delivery_time(mid)
            for node in self.receivers
            if node.has_delivered(mid)
        ]

    def message_counts(self) -> Dict[str, int]:
        """Network-level counters (sent / delivered / dropped...)."""
        return self.metrics.counters()
