"""Synthetic stock-market tick feed.

Properties modelled after public descriptions of exchange feeds:

* a fixed universe of symbols whose popularity follows a Zipf law (a few
  hot symbols dominate the volume);
* per-symbol geometric-random-walk prices;
* exponential inter-arrival times, with optional *burst* windows where the
  rate multiplies (opening auction, news events) -- the perturbation used
  by the throughput-stability experiment E4.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class Tick:
    """One trade/quote event."""

    time: float
    symbol: str
    price: float
    size: int
    sequence: int

    def to_value(self) -> Dict[str, Any]:
        """Serializer-friendly payload."""
        return {
            "symbol": self.symbol,
            "price": self.price,
            "size": self.size,
            "seq": self.sequence,
            "time": self.time,
        }


class StockFeed:
    """Deterministic, seedable tick generator.

    Args:
        symbols: ticker universe (defaults to 16 synthetic names).
        rate: mean ticks per second.
        seed: RNG seed.
        zipf_s: Zipf exponent for symbol popularity (~1 is realistic).
        volatility: per-tick log-price standard deviation.
        bursts: list of ``(start, end, multiplier)`` windows where the
            arrival rate is multiplied.
    """

    def __init__(
        self,
        symbols: Optional[Sequence[str]] = None,
        rate: float = 10.0,
        seed: int = 0,
        zipf_s: float = 1.1,
        volatility: float = 0.002,
        bursts: Optional[List[Tuple[float, float, float]]] = None,
    ) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be positive: {rate!r}")
        if symbols is None:
            symbols = [f"SYM{index:02d}" for index in range(16)]
        self.symbols = list(symbols)
        if not self.symbols:
            raise ValueError("need at least one symbol")
        self.rate = rate
        self.volatility = volatility
        self.bursts = list(bursts or [])
        self._rng = random.Random(seed)
        # Zipf weights over the symbol universe.
        weights = [1.0 / (rank ** zipf_s) for rank in range(1, len(self.symbols) + 1)]
        total = sum(weights)
        self._weights = [weight / total for weight in weights]
        self._prices: Dict[str, float] = {
            symbol: 20.0 + 5.0 * index for index, symbol in enumerate(self.symbols)
        }
        self._sequence = 0

    def rate_at(self, time: float) -> float:
        """Instantaneous arrival rate, bursts applied."""
        rate = self.rate
        for start, end, multiplier in self.bursts:
            if start <= time < end:
                rate *= multiplier
        return rate

    def ticks(self, duration: float) -> Iterator[Tick]:
        """Generate the tick stream for ``duration`` seconds."""
        now = 0.0
        while True:
            now += self._rng.expovariate(self.rate_at(now))
            if now >= duration:
                return
            symbol = self._rng.choices(self.symbols, weights=self._weights)[0]
            price = self._prices[symbol] * math.exp(
                self._rng.gauss(0.0, self.volatility)
            )
            self._prices[symbol] = price
            self._sequence += 1
            yield Tick(
                time=now,
                symbol=symbol,
                price=round(price, 4),
                size=self._rng.randint(1, 100) * 10,
                sequence=self._sequence,
            )
