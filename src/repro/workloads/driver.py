"""A publish-load driver for simulated groups.

The perturbation experiments need a *steady* publish load whose intensity
can spike in declared windows -- the "5x publish burst" phase of
``benchmarks/bench_perturbation.py``.  :class:`PublishDriver` schedules
Poisson publish arrivals on the simulator, multiplying the base rate by
every burst window active at the draw time.  All randomness comes from the
simulator's named ``"workload"`` RNG stream, so a run is deterministic per
seed like the fault helpers in :mod:`repro.simnet.faults`.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Tuple

from repro.simnet.events import Simulator


class PublishDriver:
    """Steady Poisson publishes with declarative burst windows.

    Args:
        sim: the simulator to schedule on.
        publish: called once per arrival with the running sequence number;
            whatever it returns (e.g. a gossip id) is recorded in
            :attr:`published` together with the publish time.
        rate: base publish arrivals per simulated second.

    Declare bursts with :meth:`burst_publish_at` *before* :meth:`start`;
    windows may overlap (multipliers compound).
    """

    def __init__(
        self,
        sim: Simulator,
        publish: Callable[[int], Any],
        rate: float,
    ) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be positive: {rate!r}")
        self.sim = sim
        self.publish = publish
        self.rate = float(rate)
        #: ``(time, result)`` per arrival, in publish order.
        self.published: List[Tuple[float, Any]] = []
        self._bursts: List[Tuple[float, float, float]] = []
        self._rng = None
        self._until: Optional[float] = None
        self._sequence = 0
        self._started = False

    def burst_publish_at(
        self, time: float, multiplier: float, duration: float
    ) -> "PublishDriver":
        """Multiply the publish rate by ``multiplier`` for ``duration``
        seconds starting at ``time`` (chainable, declare before start)."""
        if multiplier <= 0:
            raise ValueError(f"multiplier must be positive: {multiplier!r}")
        if duration <= 0:
            raise ValueError(f"duration must be positive: {duration!r}")
        if self._started:
            raise RuntimeError("declare bursts before start()")
        self._bursts.append((time, time + duration, multiplier))
        return self

    def rate_at(self, time: float) -> float:
        """The effective publish rate at ``time`` (bursts compound)."""
        rate = self.rate
        for start, end, multiplier in self._bursts:
            if start <= time < end:
                rate *= multiplier
        return rate

    def start(self, until: Optional[float] = None) -> "PublishDriver":
        """Begin publishing until simulated time ``until`` (forever when
        ``None``, bounded by the run's own horizon)."""
        if self._started:
            raise RuntimeError("PublishDriver.start() called twice")
        self._started = True
        self._until = until
        self._rng = self.sim.rng.get("workload")
        self._schedule_next()
        return self

    def _schedule_next(self) -> None:
        delay = self._rng.expovariate(self.rate_at(self.sim.now))
        when = self.sim.now + delay
        if self._until is not None and when > self._until:
            return
        self.sim.call_at(when, self._publish_once)

    def _publish_once(self) -> None:
        self._sequence += 1
        result = self.publish(self._sequence)
        self.published.append((self.sim.now, result))
        self._schedule_next()

    def __repr__(self) -> str:
        return (
            f"PublishDriver(rate={self.rate}, bursts={len(self._bursts)}, "
            f"published={len(self.published)})"
        )
