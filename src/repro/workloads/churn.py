"""Fault-schedule builders used by the resilience experiments."""

from __future__ import annotations

from typing import Optional, Sequence

from repro.simnet.faults import ChurnGenerator, FaultPlan
from repro.simnet.network import Network


def crash_fraction_plan(
    network: Network,
    candidates: Sequence[str],
    fraction: float,
    at: float,
) -> FaultPlan:
    """Crash ``fraction`` of ``candidates`` at time ``at`` (applied)."""
    plan = FaultPlan(network)
    plan.crash_fraction_at(at, fraction, candidates)
    plan.apply()
    return plan


def churn_plan(
    network: Network,
    candidates: Sequence[str],
    rate: float,
    recover_delay: float = 2.0,
    until: Optional[float] = None,
    restart: bool = False,
    amnesia: bool = True,
) -> ChurnGenerator:
    """Start continuous churn over ``candidates`` (started).

    ``restart=True`` revives victims with faithful crash semantics
    (``Process.restart``; ``amnesia`` says whether durable state survives)
    instead of the pause-style ``start()`` resume -- see
    :class:`~repro.simnet.faults.ChurnGenerator`.
    """
    generator = ChurnGenerator(
        network=network,
        candidates=list(candidates),
        rate=rate,
        recover_delay=recover_delay,
        restart=restart,
        amnesia=amnesia,
    )
    generator.start(until=until)
    return generator
