"""Network topology helpers: multi-datacenter latency shapes.

The simulator's per-link overrides can express any latency matrix; this
module provides the common shape experiments need -- a population split
across sites with fast local links and slow cross-site links -- plus the
site map the locality-aware peer selector consumes.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.simnet.latency import LatencyModel
from repro.simnet.network import Network
from repro.transport.base import split_address


def site_of_address(address: str, site_map: Dict[str, str]) -> str:
    """Resolve an address (``sim://node/path``) to its site via node name."""
    _, authority, _ = split_address(address)
    return site_map.get(authority, "")


def apply_site_latency(
    network: Network,
    sites: Dict[str, Sequence[str]],
    local: LatencyModel,
    cross: LatencyModel,
) -> Dict[str, str]:
    """Install a site-structured latency matrix.

    Args:
        network: the fabric to configure.
        sites: mapping of site name to the node names it hosts.
        local: latency model for same-site links.
        cross: latency model for cross-site links.

    Returns the node-name -> site-name map (for selectors and accounting).

    Raises:
        ValueError: when a node appears in two sites.
    """
    site_map: Dict[str, str] = {}
    for site, nodes in sites.items():
        for name in nodes:
            if name in site_map:
                raise ValueError(f"node in two sites: {name!r}")
            site_map[name] = site

    names: List[str] = list(site_map)
    for source in names:
        for destination in names:
            if source == destination:
                continue
            model = local if site_map[source] == site_map[destination] else cross
            network.set_link_latency(source, destination, model)
    return site_map


def cross_site_fraction(trace, site_map: Dict[str, str]) -> float:
    """Fraction of traced sends that crossed a site boundary."""
    sends = trace.events(kind="net.send")
    if not sends:
        return 0.0
    crossing = sum(
        1
        for event in sends
        if site_map.get(event.node) != site_map.get(event.detail.get("destination"))
    )
    return crossing / len(sends)
