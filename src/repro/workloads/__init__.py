"""Synthetic workload generators.

The paper's motivating scenario is stock-market dissemination (Section 1,
citing the Swiss Exchange); proprietary feeds are unavailable, so
:mod:`repro.workloads.stock` synthesizes ticks with the relevant
properties (skewed symbol popularity, price random walks, bursts).
:mod:`repro.workloads.sensors` feeds the aggregation scenario,
:mod:`repro.workloads.churn` builds fault schedules, and
:mod:`repro.workloads.driver` drives steady publish load with declarative
burst windows (the perturbation benchmark's generator).
"""

from repro.workloads.churn import churn_plan, crash_fraction_plan
from repro.workloads.driver import PublishDriver
from repro.workloads.sensors import SensorField
from repro.workloads.stock import StockFeed, Tick

__all__ = [
    "PublishDriver",
    "SensorField",
    "StockFeed",
    "Tick",
    "churn_plan",
    "crash_fraction_plan",
]
