"""Sensor-field workload for the aggregation scenario."""

from __future__ import annotations

import random
from typing import Dict, List


class SensorField:
    """A population of sensors with known ground-truth statistics.

    Readings are Gaussian around a per-sensor bias so the field's exact
    mean/sum/min/max are computable -- the aggregation experiments compare
    gossip estimates against these.
    """

    def __init__(
        self,
        n_sensors: int,
        seed: int = 0,
        mean: float = 21.0,
        spread: float = 4.0,
        noise: float = 0.2,
    ) -> None:
        if n_sensors < 1:
            raise ValueError(f"need at least one sensor: {n_sensors!r}")
        self._rng = random.Random(seed)
        self.biases: List[float] = [
            mean + self._rng.uniform(-spread, spread) for _ in range(n_sensors)
        ]
        self.noise = noise
        self.readings: List[float] = [
            bias + self._rng.gauss(0.0, noise) for bias in self.biases
        ]

    @property
    def n_sensors(self) -> int:
        return len(self.readings)

    def truth(self) -> Dict[str, float]:
        """Exact aggregates of the current readings."""
        return {
            "mean": sum(self.readings) / len(self.readings),
            "sum": sum(self.readings),
            "min": min(self.readings),
            "max": max(self.readings),
            "count": float(len(self.readings)),
        }

    def resample(self) -> List[float]:
        """Draw a fresh reading per sensor (new measurement epoch)."""
        self.readings = [
            bias + self._rng.gauss(0.0, self.noise) for bias in self.biases
        ]
        return list(self.readings)
