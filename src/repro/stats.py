"""Seed-sweep statistics for the experiment harness.

Every experiment row is a mean over seeds; this module provides the
summary that belongs next to such a mean: sample standard deviation and a
Student-t confidence interval.  Uses scipy when available for exact t
quantiles, falling back to the normal approximation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

try:  # pragma: no cover - environment dependent
    from scipy import stats as _scipy_stats
except ImportError:  # pragma: no cover
    _scipy_stats = None


def _t_quantile(confidence: float, dof: int) -> float:
    """Two-sided Student-t quantile; normal approximation without scipy."""
    if _scipy_stats is not None:
        return float(_scipy_stats.t.ppf(0.5 + confidence / 2.0, dof))
    # Normal approximation (fine for the dof >= 2 the harness uses).
    table = {0.90: 1.645, 0.95: 1.960, 0.99: 2.576}
    key = min(table, key=lambda candidate: abs(candidate - confidence))
    return table[key]


@dataclass(frozen=True)
class Summary:
    """Mean, spread and confidence half-width of one sample set."""

    n: int
    mean: float
    stdev: float
    half_width: float
    confidence: float

    @property
    def low(self) -> float:
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        return self.mean + self.half_width

    def __str__(self) -> str:
        return f"{self.mean:.4g} +/- {self.half_width:.2g}"


def summarize(values: Sequence[float], confidence: float = 0.95) -> Summary:
    """Summarize a seed sweep.

    Raises:
        ValueError: on empty input or a confidence outside (0, 1).
    """
    data: List[float] = [float(value) for value in values]
    if not data:
        raise ValueError("cannot summarize an empty sample")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1): {confidence!r}")
    n = len(data)
    mean = math.fsum(data) / n
    if n == 1:
        return Summary(n=1, mean=mean, stdev=0.0, half_width=0.0,
                       confidence=confidence)
    variance = math.fsum((value - mean) ** 2 for value in data) / (n - 1)
    stdev = math.sqrt(variance)
    half_width = _t_quantile(confidence, n - 1) * stdev / math.sqrt(n)
    return Summary(n=n, mean=mean, stdev=stdev, half_width=half_width,
                   confidence=confidence)


def compare(sample_a: Sequence[float], sample_b: Sequence[float],
            confidence: float = 0.95) -> bool:
    """True when ``sample_a``'s mean is credibly above ``sample_b``'s.

    A simple non-overlapping-confidence-interval test -- conservative but
    assumption-light, which suits small deterministic seed sweeps.
    """
    summary_a = summarize(sample_a, confidence)
    summary_b = summarize(sample_b, confidence)
    return summary_a.low > summary_b.high
