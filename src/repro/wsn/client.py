"""Client helpers for talking to a notification broker."""

from __future__ import annotations

from typing import Any, Optional

from repro.soap.runtime import SoapRuntime
from repro.wsn.broker import NOTIFY_ACTION, SUBSCRIBE_ACTION


def subscribe(
    runtime: SoapRuntime,
    broker_address: str,
    topic: str,
    consumer_address: str,
    on_reply=None,
) -> str:
    """Subscribe ``consumer_address`` to ``topic`` at the broker."""
    return runtime.send(
        broker_address,
        SUBSCRIBE_ACTION,
        value={"topic": topic, "consumer": consumer_address},
        on_reply=on_reply,
    )


def notify(
    runtime: SoapRuntime,
    broker_address: str,
    topic: str,
    action: str,
    payload: Any = None,
) -> str:
    """Publish a notification through the broker."""
    return runtime.send(
        broker_address,
        NOTIFY_ACTION,
        value={"topic": topic, "action": action, "payload": payload},
    )
