"""The WS-Notification broker.

Implements the OASIS base-notification pattern: ``Subscribe`` registers a
consumer for a topic; ``Notify`` fans the message out to every subscriber
-- sequentially, from this single node, which is precisely the bottleneck
gossip removes.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.simnet.network import Network
from repro.soap import namespaces as ns
from repro.soap.fault import sender_fault
from repro.soap.handler import MessageContext
from repro.soap.service import Service, operation
from repro.soap.runtime import SoapRuntime
from repro.transport.inmem import WsProcess

SUBSCRIBE_ACTION = f"{ns.WSN}/Subscribe"
NOTIFY_ACTION = f"{ns.WSN}/Notify"
BROKER_PATH = "/broker"


class NotificationBroker(Service):
    """Broker port type: subscription list plus sequential fan-out."""

    def __init__(self, runtime: SoapRuntime) -> None:
        super().__init__()
        self._runtime = runtime
        self._subscribers: Dict[str, List[str]] = {}

    def subscribers(self, topic: str) -> List[str]:
        """Consumer addresses subscribed to ``topic``."""
        return list(self._subscribers.get(topic, []))

    @operation(SUBSCRIBE_ACTION)
    def subscribe(self, context: MessageContext, value) -> Dict[str, Any]:
        """SOAP operation: add a consumer to a topic."""
        if not isinstance(value, dict):
            raise sender_fault("Subscribe requires a map payload")
        topic = value.get("topic")
        consumer = value.get("consumer")
        if not isinstance(topic, str) or not isinstance(consumer, str):
            raise sender_fault("Subscribe requires topic and consumer")
        consumers = self._subscribers.setdefault(topic, [])
        if consumer not in consumers:
            consumers.append(consumer)
        return {"topic": topic, "subscribers": len(consumers)}

    @operation(NOTIFY_ACTION)
    def notify(self, context: MessageContext, value) -> None:
        """SOAP operation: fan a notification out to every subscriber."""
        if not isinstance(value, dict):
            raise sender_fault("Notify requires a map payload")
        topic = value.get("topic")
        if not isinstance(topic, str):
            raise sender_fault("Notify requires a topic")
        action = value.get("action")
        if not isinstance(action, str):
            raise sender_fault("Notify requires the consumer action URI")
        payload = value.get("payload")
        for consumer in self._subscribers.get(topic, []):
            self._runtime.metrics.counter("wsn.fanout").inc()
            self._runtime.send(consumer, action, value=payload)
        return None


class BrokerNode(WsProcess):
    """A simulated node hosting the notification broker."""

    def __init__(self, name: str, network: Network) -> None:
        super().__init__(name, network)
        self.broker = NotificationBroker(self.runtime)
        self.runtime.add_service(BROKER_PATH, self.broker)

    @property
    def broker_address(self) -> str:
        return self.runtime.address_of(BROKER_PATH)
