"""WS-Notification (base notification pattern): the centralized baseline.

The paper's motivation (Section 1) is that existing event dissemination
standards -- the OASIS WS-Notification family -- funnel traffic through
brokers that become scalability and resilience bottlenecks.  This package
implements that architecture faithfully so the experiments can measure the
bottleneck: a :class:`~repro.wsn.broker.NotificationBroker` holding the
subscriber list and fanning every notification out itself.
"""

from repro.wsn.broker import BrokerNode, NotificationBroker
from repro.wsn.client import notify, subscribe

__all__ = ["BrokerNode", "NotificationBroker", "notify", "subscribe"]
