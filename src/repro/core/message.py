"""The ``Gossip`` SOAP header block and message identity.

A gossiped application message is an ordinary SOAP invocation carrying two
extra header blocks: the activity's ``CoordinationContext`` (from
WS-Coordination) and this ``Gossip`` block with the epidemic routing state
(message id, origin, remaining rounds, style).  Any node without a gossip
layer simply ignores both headers and processes the invocation -- that is
the paper's unchanged *Consumer*.
"""

from __future__ import annotations

import enum
import uuid
import xml.etree.ElementTree as ET
from dataclasses import dataclass, replace
from typing import List, Optional

from repro.soap import namespaces as ns
from repro.soap.envelope import Envelope
from repro.xmlutil import qname

GOSSIP_HEADER_TAG = qname(ns.WSGOSSIP, "Gossip")
_ACTIVITY = qname(ns.WSGOSSIP, "Activity")
_MESSAGE_ID = qname(ns.WSGOSSIP, "MessageId")
_ORIGIN = qname(ns.WSGOSSIP, "Origin")
_HOPS = qname(ns.WSGOSSIP, "Hops")
_STYLE = qname(ns.WSGOSSIP, "Style")
_SEQUENCE = qname(ns.WSGOSSIP, "Sequence")


class GossipStyle(enum.Enum):
    """The gossip variants the framework implements (paper Section 4:
    "encompassing different gossip styles")."""

    PUSH = "push"
    PULL = "pull"
    PUSH_PULL = "push-pull"
    ANTI_ENTROPY = "anti-entropy"
    # Lazy push (Plumtree-style rumor mongering): eager hops carry only the
    # message *identifier*; peers fetch the payload if they lack it.  Saves
    # bandwidth on large payloads at one extra round trip for fresh items.
    LAZY_PUSH = "lazy-push"
    # Feedback ("coin") rumor mongering, Demers et al.: a node keeps
    # re-forwarding a rumor each period until duplicates' feedback makes it
    # lose interest (stop with probability p per feedback), bounded by the
    # rounds budget.  Self-tuning redundancy instead of a fixed hop count.
    FEEDBACK = "feedback"


def new_gossip_message_id() -> str:
    """Fresh identifier for a disseminated data item."""
    return f"urn:ws-gossip:msg:{uuid.uuid4()}"


# The wire form of the header's MessageId child is always
# ``<prefix:MessageId>urn:ws-gossip:msg:...</prefix:MessageId>`` -- the tag
# suffix below can only occur in markup (ElementTree escapes ``>`` in text),
# and the urn prefix pins it to this header (ids embedded in *payloads* ride
# base64-encoded or under different tags).
_MID_TAG_SUFFIX = b":MessageId>"
_MID_URN_PREFIX = b"urn:ws-gossip:msg:"


def scan_gossip_message_id(data: bytes) -> Optional[str]:
    """Extract the gossip message id from wire bytes without parsing.

    A cheap byte scan for the ``Gossip`` header's ``MessageId`` child,
    used by the receive-side dedup gate to drop duplicates *before* the
    full XML parse.  Returns ``None`` when the bytes carry no scannable
    gossip identity (the message then takes the normal parse path, so a
    miss is always safe).
    """
    position = data.find(_MID_TAG_SUFFIX)
    while position != -1:
        start = position + len(_MID_TAG_SUFFIX)
        if data.startswith(_MID_URN_PREFIX, start):
            end = data.find(b"<", start)
            if end == -1:
                return None
            try:
                return data[start:end].decode("ascii")
            except UnicodeDecodeError:
                return None
        position = data.find(_MID_TAG_SUFFIX, start)
    return None


def scan_gossip_message_ids(data: bytes) -> List[str]:
    """All gossip message ids in wire bytes, in order of appearance.

    The batched-frame variant of :func:`scan_gossip_message_id`: a batch
    envelope carries one ``Gossip`` header per inner rumor, so the dedup
    gate needs every id to decide whether the *whole* batch can be skipped.
    """
    ids: List[str] = []
    position = data.find(_MID_TAG_SUFFIX)
    while position != -1:
        start = position + len(_MID_TAG_SUFFIX)
        if data.startswith(_MID_URN_PREFIX, start):
            end = data.find(b"<", start)
            if end == -1:
                return ids
            try:
                ids.append(data[start:end].decode("ascii"))
            except UnicodeDecodeError:
                pass
            start = end
        position = data.find(_MID_TAG_SUFFIX, start)
    return ids


_HOPS_TAG_SUFFIX = b":Hops>"


def splice_hops(data: bytes, hops: int) -> Optional[bytes]:
    """Rewrite the ``Gossip`` header's ``Hops`` value directly in wire bytes.

    The per-forward header update only changes the hop counter; splicing the
    digits in place avoids a full XML parse + re-serialize on the hottest
    path in the engine.  Returns ``None`` when the bytes do not contain
    exactly the expected shape (caller falls back to the re-encode path).
    """
    position = data.find(_HOPS_TAG_SUFFIX)
    if position == -1:
        return None
    start = position + len(_HOPS_TAG_SUFFIX)
    end = data.find(b"<", start)
    if end == -1 or not data[start:end].isdigit():
        return None
    return b"%s%d%s" % (data[:start], hops, data[end:])


@dataclass(frozen=True)
class GossipHeader:
    """Parsed ``Gossip`` header block.

    Attributes:
        activity: the coordination activity this message belongs to.
        message_id: identity of the *data item* (stable across forwards,
            unlike the per-hop ``wsa:MessageID``).
        origin: address of the initiator's application endpoint.
        hops: remaining forwarding budget; decremented per forward.
        style: gossip style the activity runs.
        sequence: per-origin publication counter (``None`` for unordered
            activities; used by the FIFO ordered-delivery extension).
    """

    activity: str
    message_id: str
    origin: str
    hops: int
    style: GossipStyle = GossipStyle.PUSH
    sequence: Optional[int] = None

    def to_element(self) -> ET.Element:
        """Serialize as the ``Gossip`` header block."""
        root = ET.Element(GOSSIP_HEADER_TAG)
        children = [
            (_ACTIVITY, self.activity),
            (_MESSAGE_ID, self.message_id),
            (_ORIGIN, self.origin),
            (_HOPS, str(self.hops)),
            (_STYLE, self.style.value),
        ]
        if self.sequence is not None:
            children.append((_SEQUENCE, str(self.sequence)))
        for tag, text in children:
            child = ET.SubElement(root, tag)
            child.text = text
        return root

    @classmethod
    def from_element(cls, element: ET.Element) -> "GossipHeader":
        """Parse the header block.

        Raises:
            ValueError: when mandatory children are missing or malformed.
        """
        activity = element.findtext(_ACTIVITY)
        message_id = element.findtext(_MESSAGE_ID)
        origin = element.findtext(_ORIGIN)
        hops_text = element.findtext(_HOPS)
        style_text = element.findtext(_STYLE)
        if activity is None or message_id is None or origin is None:
            raise ValueError("malformed Gossip header: missing children")
        try:
            hops = int(hops_text) if hops_text is not None else 0
        except ValueError:
            raise ValueError(f"malformed Gossip hops: {hops_text!r}") from None
        style = GossipStyle(style_text) if style_text else GossipStyle.PUSH
        sequence_text = element.findtext(_SEQUENCE)
        try:
            sequence = int(sequence_text) if sequence_text is not None else None
        except ValueError:
            raise ValueError(
                f"malformed Gossip sequence: {sequence_text!r}"
            ) from None
        return cls(
            activity=activity,
            message_id=message_id,
            origin=origin,
            hops=hops,
            style=style,
            sequence=sequence,
        )

    @classmethod
    def from_envelope(cls, envelope: Envelope) -> Optional["GossipHeader"]:
        """Extract and parse the header from an envelope, if present."""
        element = envelope.header(GOSSIP_HEADER_TAG)
        if element is None:
            return None
        return cls.from_element(element)

    def decremented(self) -> "GossipHeader":
        """A copy with one less hop (floor at zero)."""
        return replace(self, hops=max(0, self.hops - 1))

    def replace_in(self, envelope: Envelope) -> None:
        """Swap this header into the envelope (removing any previous one)."""
        envelope.remove_header(GOSSIP_HEADER_TAG)
        envelope.add_header(self.to_element())
