"""The ``Gossip`` SOAP header block and message identity.

A gossiped application message is an ordinary SOAP invocation carrying two
extra header blocks: the activity's ``CoordinationContext`` (from
WS-Coordination) and this ``Gossip`` block with the epidemic routing state
(message id, origin, remaining rounds, style).  Any node without a gossip
layer simply ignores both headers and processes the invocation -- that is
the paper's unchanged *Consumer*.
"""

from __future__ import annotations

import enum
import uuid
import xml.etree.ElementTree as ET
from dataclasses import dataclass, replace
from typing import List, Optional, Tuple

from repro.soap import namespaces as ns
from repro.soap.envelope import Envelope
from repro.xmlutil import qname

GOSSIP_HEADER_TAG = qname(ns.WSGOSSIP, "Gossip")
_ACTIVITY = qname(ns.WSGOSSIP, "Activity")
_MESSAGE_ID = qname(ns.WSGOSSIP, "MessageId")
_ORIGIN = qname(ns.WSGOSSIP, "Origin")
_HOPS = qname(ns.WSGOSSIP, "Hops")
_STYLE = qname(ns.WSGOSSIP, "Style")
_SEQUENCE = qname(ns.WSGOSSIP, "Sequence")
_TRACE = qname(ns.WSGOSSIP, "Trace")


class GossipStyle(enum.Enum):
    """The gossip variants the framework implements (paper Section 4:
    "encompassing different gossip styles")."""

    PUSH = "push"
    PULL = "pull"
    PUSH_PULL = "push-pull"
    ANTI_ENTROPY = "anti-entropy"
    # Lazy push (Plumtree-style rumor mongering): eager hops carry only the
    # message *identifier*; peers fetch the payload if they lack it.  Saves
    # bandwidth on large payloads at one extra round trip for fresh items.
    LAZY_PUSH = "lazy-push"
    # Feedback ("coin") rumor mongering, Demers et al.: a node keeps
    # re-forwarding a rumor each period until duplicates' feedback makes it
    # lose interest (stop with probability p per feedback), bounded by the
    # rounds budget.  Self-tuning redundancy instead of a fixed hop count.
    FEEDBACK = "feedback"


def new_gossip_message_id() -> str:
    """Fresh identifier for a disseminated data item."""
    return f"urn:ws-gossip:msg:{uuid.uuid4()}"


# The wire form of the header's MessageId child is always
# ``<prefix:MessageId>urn:ws-gossip:msg:...</prefix:MessageId>`` -- the tag
# suffix below can only occur in markup (ElementTree escapes ``>`` in text),
# and the urn prefix pins it to this header (ids embedded in *payloads* ride
# base64-encoded or under different tags).
_MID_TAG_SUFFIX = b":MessageId>"
_MID_URN_PREFIX = b"urn:ws-gossip:msg:"


def scan_gossip_message_id(data: bytes) -> Optional[str]:
    """Extract the gossip message id from wire bytes without parsing.

    A cheap byte scan for the ``Gossip`` header's ``MessageId`` child,
    used by the receive-side dedup gate to drop duplicates *before* the
    full XML parse.  Returns ``None`` when the bytes carry no scannable
    gossip identity (the message then takes the normal parse path, so a
    miss is always safe).
    """
    position = data.find(_MID_TAG_SUFFIX)
    while position != -1:
        start = position + len(_MID_TAG_SUFFIX)
        if data.startswith(_MID_URN_PREFIX, start):
            end = data.find(b"<", start)
            if end == -1:
                return None
            try:
                return data[start:end].decode("ascii")
            except UnicodeDecodeError:
                return None
        position = data.find(_MID_TAG_SUFFIX, start)
    return None


def scan_gossip_message_ids(data: bytes) -> List[str]:
    """All gossip message ids in wire bytes, in order of appearance.

    The batched-frame variant of :func:`scan_gossip_message_id`: a batch
    envelope carries one ``Gossip`` header per inner rumor, so the dedup
    gate needs every id to decide whether the *whole* batch can be skipped.
    """
    ids: List[str] = []
    position = data.find(_MID_TAG_SUFFIX)
    while position != -1:
        start = position + len(_MID_TAG_SUFFIX)
        if data.startswith(_MID_URN_PREFIX, start):
            end = data.find(b"<", start)
            if end == -1:
                return ids
            try:
                ids.append(data[start:end].decode("ascii"))
            except UnicodeDecodeError:
                pass
            start = end
        position = data.find(_MID_TAG_SUFFIX, start)
    return ids


_HOPS_TAG_SUFFIX = b":Hops>"


def splice_hops(data: bytes, hops: int) -> Optional[bytes]:
    """Rewrite the ``Gossip`` header's ``Hops`` value directly in wire bytes.

    The per-forward header update only changes the hop counter; splicing the
    digits in place avoids a full XML parse + re-serialize on the hottest
    path in the engine.  Returns ``None`` when the bytes do not contain
    exactly the expected shape (caller falls back to the re-encode path).
    """
    position = data.find(_HOPS_TAG_SUFFIX)
    if position == -1:
        return None
    start = position + len(_HOPS_TAG_SUFFIX)
    end = data.find(b"<", start)
    if end == -1 or not data[start:end].isdigit():
        return None
    return b"%s%d%s" % (data[:start], hops, data[end:])


_TRACE_TAG_SUFFIX = b":Trace "


def _trace_path_bounds(data: bytes) -> Optional[Tuple[int, int]]:
    """``(start, end)`` of the trace path digits, or ``None`` if absent.

    ElementTree escapes ``>`` inside attribute values, so the first ``>``
    after the tag name reliably closes the start tag.
    """
    position = data.find(_TRACE_TAG_SUFFIX)
    if position == -1:
        return None
    start = data.find(b">", position + len(_TRACE_TAG_SUFFIX))
    if start == -1:
        return None
    start += 1
    end = data.find(b"<", start)
    if end == -1 or not data[start:end].isdigit():
        return None
    return start, end


def splice_trace_path(data: bytes, path: int) -> Optional[bytes]:
    """Rewrite the ``Trace`` section's path counter directly in wire bytes.

    The trace element's only text is the hop-path counter, so the
    per-forward update is the same digit splice :func:`splice_hops` does
    for the rounds budget.  Returns ``None`` when the bytes do not contain
    exactly the expected shape (caller falls back to the re-encode path).
    """
    bounds = _trace_path_bounds(data)
    if bounds is None:
        return None
    start, end = bounds
    return b"%s%d%s" % (data[:start], path, data[end:])


def splice_forward(data: bytes, hops: int, path: int) -> Optional[bytes]:
    """Rewrite hops budget *and* trace path in one pass over the wire bytes.

    The per-forward update of a traced frame touches two digit runs;
    splicing both into a single output buffer halves the copies
    :func:`splice_hops` + :func:`splice_trace_path` would make.  Returns
    ``None`` when either site is missing or malformed (caller falls back
    to the re-encode path).
    """
    position = data.find(_HOPS_TAG_SUFFIX)
    if position == -1:
        return None
    hops_start = position + len(_HOPS_TAG_SUFFIX)
    hops_end = data.find(b"<", hops_start)
    if hops_end == -1 or not data[hops_start:hops_end].isdigit():
        return None
    bounds = _trace_path_bounds(data)
    if bounds is None:
        return None
    path_start, path_end = bounds
    first, second = sorted(
        ((hops_start, hops_end, b"%d" % hops),
         (path_start, path_end, b"%d" % path))
    )
    return b"".join(
        (
            data[: first[0]],
            first[2],
            data[first[1]: second[0]],
            second[2],
            data[second[1]:],
        )
    )


@dataclass(frozen=True)
class TraceContext:
    """Compact wire-level trace section carried inside the ``Gossip`` header.

    Serialized as ``<g:Trace o="origin" s="1" t="1723111042.183001">N</g:Trace>``
    where the text ``N`` is the hop-path counter (0 on the published frame,
    incremented per forward).  Receivers of a *sampled* frame derive
    end-to-end latency from ``t`` and per-hop latency by dividing over the
    hops taken (``path + 1``); unsampled frames carry provenance only.

    Attributes:
        origin: application endpoint that published the rumor.
        publish_ts: publication timestamp on the origin's clock (the node's
            scheduler clock: simulated time in the simulator, the event
            loop's monotonic clock on real transports).
        path: hops this frame's copy has traversed when it was sent.
        sampled: whether receivers should record latency for this frame.
    """

    origin: str
    publish_ts: float
    path: int = 0
    sampled: bool = True

    def to_element(self) -> ET.Element:
        element = ET.Element(_TRACE)
        element.set("o", self.origin)
        element.set("s", "1" if self.sampled else "0")
        element.set("t", "%.6f" % self.publish_ts)
        element.text = str(self.path)
        return element

    @classmethod
    def from_element(cls, element: ET.Element) -> Optional["TraceContext"]:
        """Parse a trace section; malformed sections yield ``None`` --
        telemetry is advisory and must never break delivery."""
        origin = element.get("o")
        ts_text = element.get("t")
        if origin is None or ts_text is None:
            return None
        try:
            publish_ts = float(ts_text)
            path = int(element.text) if element.text else 0
        except (TypeError, ValueError):
            return None
        if path < 0:
            return None
        return cls(
            origin=origin,
            publish_ts=publish_ts,
            path=path,
            sampled=element.get("s") == "1",
        )

    def advanced(self) -> "TraceContext":
        """A copy with one more traversed hop."""
        return replace(self, path=self.path + 1)


@dataclass(frozen=True)
class GossipHeader:
    """Parsed ``Gossip`` header block.

    Attributes:
        activity: the coordination activity this message belongs to.
        message_id: identity of the *data item* (stable across forwards,
            unlike the per-hop ``wsa:MessageID``).
        origin: address of the initiator's application endpoint.
        hops: remaining forwarding budget; decremented per forward.
        style: gossip style the activity runs.
        sequence: per-origin publication counter (``None`` for unordered
            activities; used by the FIFO ordered-delivery extension).
        trace: optional telemetry trace section (``None`` unless the
            publisher runs with ``GossipConfig(telemetry=...)``; absent
            traces leave the wire bytes untouched).
    """

    activity: str
    message_id: str
    origin: str
    hops: int
    style: GossipStyle = GossipStyle.PUSH
    sequence: Optional[int] = None
    trace: Optional[TraceContext] = None

    def to_element(self) -> ET.Element:
        """Serialize as the ``Gossip`` header block."""
        root = ET.Element(GOSSIP_HEADER_TAG)
        children = [
            (_ACTIVITY, self.activity),
            (_MESSAGE_ID, self.message_id),
            (_ORIGIN, self.origin),
            (_HOPS, str(self.hops)),
            (_STYLE, self.style.value),
        ]
        if self.sequence is not None:
            children.append((_SEQUENCE, str(self.sequence)))
        for tag, text in children:
            child = ET.SubElement(root, tag)
            child.text = text
        if self.trace is not None:
            root.append(self.trace.to_element())
        return root

    @classmethod
    def from_element(cls, element: ET.Element) -> "GossipHeader":
        """Parse the header block.

        Raises:
            ValueError: when mandatory children are missing or malformed.
        """
        activity = element.findtext(_ACTIVITY)
        message_id = element.findtext(_MESSAGE_ID)
        origin = element.findtext(_ORIGIN)
        hops_text = element.findtext(_HOPS)
        style_text = element.findtext(_STYLE)
        if activity is None or message_id is None or origin is None:
            raise ValueError("malformed Gossip header: missing children")
        try:
            hops = int(hops_text) if hops_text is not None else 0
        except ValueError:
            raise ValueError(f"malformed Gossip hops: {hops_text!r}") from None
        style = GossipStyle(style_text) if style_text else GossipStyle.PUSH
        sequence_text = element.findtext(_SEQUENCE)
        try:
            sequence = int(sequence_text) if sequence_text is not None else None
        except ValueError:
            raise ValueError(
                f"malformed Gossip sequence: {sequence_text!r}"
            ) from None
        trace_element = element.find(_TRACE)
        trace = (
            TraceContext.from_element(trace_element)
            if trace_element is not None
            else None
        )
        return cls(
            activity=activity,
            message_id=message_id,
            origin=origin,
            hops=hops,
            style=style,
            sequence=sequence,
            trace=trace,
        )

    @classmethod
    def from_envelope(cls, envelope: Envelope) -> Optional["GossipHeader"]:
        """Extract and parse the header from an envelope, if present."""
        element = envelope.header(GOSSIP_HEADER_TAG)
        if element is None:
            return None
        return cls.from_element(element)

    def decremented(self) -> "GossipHeader":
        """A copy with one less hop (floor at zero); a carried trace
        section advances its path counter in step."""
        trace = self.trace.advanced() if self.trace is not None else None
        return replace(self, hops=max(0, self.hops - 1), trace=trace)

    def replace_in(self, envelope: Envelope) -> None:
        """Swap this header into the envelope (removing any previous one)."""
        envelope.remove_header(GOSSIP_HEADER_TAG)
        envelope.add_header(self.to_element())
