"""Epidemic analysis: configuring ``f`` and ``r`` for a target reliability.

The paper (Section 2) states that fanout and rounds "can be configured [6]
such that any desired average number of receivers successfully get the
message" and even "atomically delivered with high probability".  This
module implements the standard results from Eugster, Guerraoui, Kermarrec &
Massoulie, *Epidemic information dissemination in distributed systems*
(IEEE Computer, 2004), which the coordinator uses to hand out parameters:

* The final fraction of infected nodes solves ``pi = 1 - exp(-f * pi)``.
* With mean fanout ``f = ln(n) + c`` the probability that *every* node is
  reached tends to ``exp(-exp(-c))`` (the Erdos-Renyi connectivity / atomic
  broadcast threshold).
* Rounds to infect the whole system grow as ``log2(n) + ln(n) + O(1)``
  (Pittel 1987), i.e. logarithmically -- the scalability claim.

A deterministic mean-field recursion (:func:`infection_curve`) backs the
round-by-round expectations used in benchmark E2/E3 comparisons.
"""

from __future__ import annotations

import math
from typing import List, Optional


def expected_final_fraction(fanout: float, tolerance: float = 1e-12) -> float:
    """Final infected fraction ``pi`` solving ``pi = 1 - exp(-f * pi)``.

    For ``f <= 1`` the epidemic dies out (returns 0.0).  Solved by fixed-
    point iteration, which converges monotonically from ``pi = 1``.
    """
    if fanout <= 1.0:
        return 0.0
    pi = 1.0
    for _ in range(10_000):
        updated = 1.0 - math.exp(-fanout * pi)
        if abs(updated - pi) < tolerance:
            return updated
        pi = updated
    return pi


def atomic_delivery_probability(n: int, fanout: float) -> float:
    """Probability that *all* ``n`` nodes receive the message.

    Uses the Erdos-Renyi asymptotic ``exp(-n * exp(-f))`` valid around the
    connectivity threshold ``f ~ ln n``; clipped to [0, 1].
    """
    if n < 1:
        raise ValueError(f"n must be >= 1: {n!r}")
    if n == 1:
        return 1.0
    exponent = -float(n) * math.exp(-float(fanout))
    return max(0.0, min(1.0, math.exp(exponent)))


def fanout_for_atomicity(n: int, target_probability: float = 0.99) -> float:
    """Mean fanout needed so atomic delivery holds with ``target_probability``.

    Inverts :func:`atomic_delivery_probability`:
    ``f = ln(n) - ln(-ln(p))``.

    Raises:
        ValueError: for probabilities outside (0, 1).
    """
    if not 0.0 < target_probability < 1.0:
        raise ValueError(
            f"target_probability must be in (0, 1): {target_probability!r}"
        )
    if n < 2:
        return 1.0
    return math.log(n) - math.log(-math.log(target_probability))


def infection_curve(
    n: int, fanout: int, max_rounds: Optional[int] = None
) -> List[float]:
    """Mean-field expected infected counts per round.

    Round ``t+1``: every infected node pushes to ``fanout`` uniform targets;
    a susceptible node stays uninfected with probability
    ``(1 - 1/n) ** (fanout * i_t)``::

        i_{t+1} = i_t + (n - i_t) * (1 - (1 - 1/n) ** (f * i_t))

    Returns the list ``[i_0 = 1, i_1, ...]`` until it plateaus (or
    ``max_rounds`` entries).
    """
    if n < 1:
        raise ValueError(f"n must be >= 1: {n!r}")
    counts = [1.0]
    miss = (1.0 - 1.0 / n) if n > 1 else 0.0
    while True:
        current = counts[-1]
        newly = (n - current) * (1.0 - miss ** (fanout * current))
        nxt = min(float(n), current + newly)
        counts.append(nxt)
        if max_rounds is not None and len(counts) > max_rounds:
            return counts[: max_rounds + 1]
        if nxt >= n - 1e-9 or nxt - current < 1e-9:
            return counts


def expected_rounds(n: int, fanout: int, coverage: float = 0.9999) -> int:
    """Rounds until the mean-field curve reaches ``coverage * n``.

    Grows as O(log n); used by E3 as the analytical reference line.
    """
    if not 0.0 < coverage <= 1.0:
        raise ValueError(f"coverage must be in (0, 1]: {coverage!r}")
    target = coverage * n
    curve = infection_curve(n, fanout, max_rounds=max(64, 4 * int(math.log2(n + 1)) + 16))
    for round_index, infected in enumerate(curve):
        if infected >= target:
            return round_index
    return len(curve) - 1


def effective_fanout(fanout: float, loss_rate: float = 0.0, crash_fraction: float = 0.0) -> float:
    """The fanout the epidemic *effectively* runs at under faults.

    A forwarded copy contributes only if the message is not lost on the
    link and the chosen target is alive; uniform selection makes both
    independent thinning factors::

        f_eff = f * (1 - loss) * (1 - crashed)

    Raises:
        ValueError: for rates outside [0, 1).
    """
    if not 0.0 <= loss_rate < 1.0:
        raise ValueError(f"loss_rate must be in [0, 1): {loss_rate!r}")
    if not 0.0 <= crash_fraction < 1.0:
        raise ValueError(f"crash_fraction must be in [0, 1): {crash_fraction!r}")
    return fanout * (1.0 - loss_rate) * (1.0 - crash_fraction)


def fanout_for_atomicity_under_faults(
    n: int,
    target_probability: float = 0.99,
    loss_rate: float = 0.0,
    crash_fraction: float = 0.0,
) -> float:
    """Fanout to configure so atomic delivery survives the given faults.

    Inverts :func:`effective_fanout` around :func:`fanout_for_atomicity`:
    the coordinator uses this when the deployment declares an expected
    loss rate (see ``expected_loss`` in the gossip activity parameters).
    """
    base = fanout_for_atomicity(n, target_probability)
    thinning = (1.0 - loss_rate) * (1.0 - crash_fraction)
    if thinning <= 0.0:
        raise ValueError("faults leave no working fanout")
    return base / thinning


def rounds_for_coverage(n: int, fanout: int, coverage: float = 0.9999, margin: int = 2) -> int:
    """Forwarding budget ``r`` the coordinator hands out.

    The mean-field estimate plus a safety ``margin`` of extra rounds, which
    absorbs the variance the deterministic recursion ignores.
    """
    if margin < 0:
        raise ValueError(f"margin must be non-negative: {margin!r}")
    return expected_rounds(n, fanout, coverage) + margin
