"""Decentralized peer sampling (Cyclon-style view shuffling).

The paper notes that "a distributed Coordinator is supported [...] as the
list of subscribers can be maintained in a distributed fashion" (Section
3).  This module provides that fashion: every node keeps a small partial
view of ``(address, age)`` descriptors and periodically *shuffles* a
random slice of it with its oldest neighbour.  The resulting views are a
uniform-enough sample of the population for the epidemic analysis to hold,
with no central subscriber list.

Protocol (Voulgaris, Gavidia & van Steen, JNSM 2005 -- Cyclon):

1. age every descriptor; pick the oldest peer ``Q``; remove it from view;
2. send ``Q`` a slice of the view plus a fresh descriptor of ourselves;
3. ``Q`` replies with a slice of its own view;
4. both merge: prefer filling empty slots, then replace the entries that
   were sent, never duplicate, never self.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.scheduling import Scheduler
from repro.soap import namespaces as ns
from repro.soap.fault import sender_fault
from repro.soap.handler import MessageContext
from repro.soap.runtime import SoapRuntime
from repro.soap.service import Reply, Service, operation

SHUFFLE_ACTION = f"{ns.WSGOSSIP}/sampling/Shuffle"
SHUFFLE_RESPONSE_ACTION = f"{ns.WSGOSSIP}/sampling/ShuffleResponse"
SAMPLING_SERVICE_PATH = "/sampling"


@dataclass
class Descriptor:
    """One partial-view entry."""

    address: str
    age: int = 0


class PartialView:
    """Bounded set of peer descriptors with Cyclon merge semantics."""

    def __init__(self, capacity: int, self_address: str) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1: {capacity!r}")
        self.capacity = capacity
        self.self_address = self_address
        self._entries: Dict[str, Descriptor] = {}
        # The address list is consumed every gossip round (it is the
        # engine's peer view) but membership changes only on shuffles, so
        # it is cached until a mutation invalidates it.
        self._addresses_cache: Optional[List[str]] = None

    def addresses(self) -> List[str]:
        """Peer addresses currently in the view (cached; do not mutate)."""
        if self._addresses_cache is None:
            self._addresses_cache = list(self._entries)
        return self._addresses_cache

    def descriptors(self) -> List[Descriptor]:
        """The raw (address, age) entries."""
        return list(self._entries.values())

    def add_seed(self, address: str) -> None:
        """Bootstrap entry (age 0); ignored for self or when full."""
        if address == self.self_address or address in self._entries:
            return
        if len(self._entries) < self.capacity:
            self._entries[address] = Descriptor(address, 0)
            self._addresses_cache = None

    def age_all(self) -> None:
        """Increment every descriptor age by one round."""
        for descriptor in self._entries.values():
            descriptor.age += 1

    def oldest(self) -> Optional[Descriptor]:
        """The stalest descriptor, or ``None`` when empty."""
        if not self._entries:
            return None
        return max(self._entries.values(), key=lambda d: d.age)

    def remove(self, address: str) -> None:
        """Drop an address from the view (no-op if absent)."""
        if self._entries.pop(address, None) is not None:
            self._addresses_cache = None

    def sample(self, count: int, rng: random.Random, exclude: Sequence[str] = ()) -> List[Descriptor]:
        """Uniform sample of up to ``count`` descriptors."""
        excluded = set(exclude)
        candidates = [d for d in self._entries.values() if d.address not in excluded]
        if count >= len(candidates):
            return list(candidates)
        return rng.sample(candidates, count)

    def merge(self, incoming: List[Descriptor], sent: List[Descriptor]) -> None:
        """Cyclon merge: fill empty slots first, then replace what we sent."""
        self._addresses_cache = None
        sent_addresses = [d.address for d in sent if d.address in self._entries]
        for descriptor in incoming:
            if descriptor.address == self.self_address:
                continue
            existing = self._entries.get(descriptor.address)
            if existing is not None:
                # Keep the younger information.
                if descriptor.age < existing.age:
                    existing.age = descriptor.age
                continue
            if len(self._entries) < self.capacity:
                self._entries[descriptor.address] = Descriptor(
                    descriptor.address, descriptor.age
                )
            elif sent_addresses:
                victim = sent_addresses.pop()
                self._entries.pop(victim, None)
                self._entries[descriptor.address] = Descriptor(
                    descriptor.address, descriptor.age
                )

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, address: str) -> bool:
        return address in self._entries


def _descriptors_to_value(descriptors: List[Descriptor]) -> list:
    return [{"address": d.address, "age": d.age} for d in descriptors]


def _descriptors_from_value(value) -> List[Descriptor]:
    result = []
    if isinstance(value, list):
        for item in value:
            if isinstance(item, dict) and isinstance(item.get("address"), str):
                try:
                    age = int(item.get("age", 0))
                except (TypeError, ValueError):
                    age = 0
                result.append(Descriptor(item["address"], age))
    return result


class PeerSamplingEngine:
    """Runs the shuffle protocol for one node.

    The engine's :meth:`view_addresses` plugs straight into
    :class:`~repro.core.engine.GossipEngine` (as its ``view``) or into an
    :class:`~repro.core.aggregation.AggregationEngine` ``view_provider``,
    giving the fully decentralized deployment mode.
    """

    def __init__(
        self,
        runtime: SoapRuntime,
        scheduler: Scheduler,
        self_address: str,
        capacity: int = 16,
        shuffle_length: int = 6,
        period: float = 1.0,
        rng: Optional[random.Random] = None,
        jitter: float = 0.1,
    ) -> None:
        if shuffle_length < 1 or shuffle_length > capacity:
            raise ValueError(
                f"need 1 <= shuffle_length <= capacity, got "
                f"{shuffle_length}/{capacity}"
            )
        self.runtime = runtime
        self.scheduler = scheduler
        self.self_address = self_address
        self.view = PartialView(capacity, self_address)
        self.shuffle_length = shuffle_length
        self.period = period
        self.jitter = jitter
        self.rng = rng if rng is not None else random.Random()
        self._running = False

    def bootstrap(self, seeds: Sequence[str]) -> None:
        """Seed the view with known addresses (introducer list)."""
        for seed in seeds:
            self.view.add_seed(seed)

    def view_addresses(self) -> List[str]:
        """Current partial view, for use as a gossip peer view."""
        return self.view.addresses()

    def start(self) -> None:
        """Begin periodic shuffling."""
        if self._running:
            return
        self._running = True
        self._schedule()

    def stop(self) -> None:
        """Stop shuffling."""
        self._running = False

    def rejoin(self, seeds: Sequence[str]) -> None:
        """Restart sampling after a crash-faithful process restart: the
        pre-crash partial view is discarded and rebuilt from ``seeds``
        through ordinary shuffles."""
        self._running = False
        self.view = PartialView(self.view.capacity, self.view.self_address)
        self.bootstrap(seeds)
        self.start()

    def _schedule(self) -> None:
        delay = self.period + self.rng.uniform(0.0, self.jitter)
        self.scheduler.call_after(delay, self._round)

    def _round(self) -> None:
        if not self._running:
            return
        self._shuffle_once()
        self._schedule()

    def _shuffle_once(self) -> None:
        self.view.age_all()
        oldest = self.view.oldest()
        if oldest is None:
            return
        target = oldest.address
        self.view.remove(target)
        slice_out = self.view.sample(
            self.shuffle_length - 1, self.rng, exclude=[target]
        )
        sent = list(slice_out) + [Descriptor(self.self_address, 0)]
        self.runtime.metrics.counter("sampling.shuffle").inc()
        self.runtime.send(
            self._sampling_address(target),
            SHUFFLE_ACTION,
            value={
                "from": self.self_address,
                "descriptors": _descriptors_to_value(sent),
            },
            on_reply=lambda context, value: self._on_shuffle_reply(value, sent),
        )

    def _on_shuffle_reply(self, value, sent: List[Descriptor]) -> None:
        if not isinstance(value, dict):
            return
        incoming = _descriptors_from_value(value.get("descriptors"))
        self.view.merge(incoming, sent)

    def handle_shuffle(self, incoming: List[Descriptor]) -> List[Descriptor]:
        """Passive side: merge the sender's slice, return our own."""
        reply = self.view.sample(self.shuffle_length, self.rng)
        self.view.merge(incoming, reply)
        return reply

    @staticmethod
    def _sampling_address(peer: str) -> str:
        from repro.transport.base import split_address

        scheme, authority, _ = split_address(peer)
        return f"{scheme}://{authority}{SAMPLING_SERVICE_PATH}"


class PeerSamplingService(Service):
    """The ``/sampling`` endpoint: passive side of the shuffle."""

    def __init__(self, engine: PeerSamplingEngine) -> None:
        super().__init__()
        self._engine = engine

    @operation(SHUFFLE_ACTION)
    def shuffle(self, context: MessageContext, value) -> Reply:
        """SOAP operation: merge the sender slice, reply with ours."""
        if not isinstance(value, dict):
            raise sender_fault("Shuffle requires a map payload")
        incoming = _descriptors_from_value(value.get("descriptors"))
        reply = self._engine.handle_shuffle(incoming)
        return Reply(
            value={"descriptors": _descriptors_to_value(reply)},
            action=SHUFFLE_RESPONSE_ACTION,
        )
