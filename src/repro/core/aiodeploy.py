"""Live gossip meshes over the asyncio transports (real sockets).

The simulator answers "does the protocol work at N=5000"; this module
answers "does the *stack* work at N=300+ real sockets in one process" --
the deployment half the paper claims (WS nodes coordinating over an
actual network).  Every node here is a full middleware stack -- a
:class:`~repro.soap.runtime.SoapRuntime`, a
:class:`~repro.core.handler.GossipLayer` with its engines, a per-node
:class:`~repro.obs.hub.MetricsHub` -- bound to its own UDP or keep-alive
HTTP socket, all sharing one event loop.

Membership is static: the mesh samples each node's peer view once at
build time (the coordinator-less ``register=False`` join from the
decentralized mode), so a soak run measures the transport and engine hot
paths, not view convergence.  ``benchmarks/bench_soak.py`` drives this
with the stock workload; ``repro soak`` is the CLI front end.

All engine state lives on the loop thread: publishes from foreign
threads hop onto the loop first (:func:`~repro.transport.aio.run_on_loop`),
so the single-threaded engine invariants hold exactly as they do under
the simulator.
"""

from __future__ import annotations

import asyncio
import random
from typing import Any, Dict, List, Optional, Sequence

from repro.core.decentralized import DEFAULT_ACTION, make_static_context
from repro.core.handler import GossipLayer
from repro.core.params import GossipParams
from repro.core.service import GossipService
from repro.soap.service import Service
from repro.transport.aio import (
    MAX_DATAGRAM_BYTES,
    AioScheduler,
    AsyncHttpNode,
    AsyncUdpNode,
    _on_loop,
    resolve_loop,
    run_on_loop,
)
from repro.wscoord.context import CoordinationContext

APP_PATH = "/app"

#: Envelope + batch-frame overhead headroom under the IPv4 datagram cap.
UDP_SAFE_BATCH_BYTES = 49152

#: The single-core capacity rule from docs/DEPLOY.md ("Capacity on one
#: core"): one event loop sustains roughly this many application
#: deliveries per second, and each publish costs ~N deliveries plus
#: gossip redundancy.
SOAK_DELIVERY_BUDGET = 1000.0


def derive_soak_rate(n_nodes: int, ceiling: float = 10.0) -> float:
    """The default soak publish rate (ticks/s) for an ``n_nodes`` mesh.

    Scales ``--rate`` inversely with ``--nodes`` per the capacity rule:
    ``SOAK_DELIVERY_BUDGET / N`` publishes per second, capped at
    ``ceiling`` so tiny meshes are not flooded pointlessly.
    """
    if n_nodes < 2:
        raise ValueError(f"need at least two nodes: {n_nodes!r}")
    return min(ceiling, SOAK_DELIVERY_BUDGET / n_nodes)


def soak_params(transport: str = "udp", period: float = 0.5) -> GossipParams:
    """Default parameters for a live soak mesh.

    Push-pull gossip (eager push for speed, periodic pull digests to
    repair the gaps push redundancy misses) with multi-rumor batching;
    over UDP the batch byte cap stays under the datagram ceiling so every
    frame rides verbatim.
    """
    from repro.core.message import GossipStyle

    max_batch_bytes = UDP_SAFE_BATCH_BYTES if transport == "udp" else 262144
    return GossipParams(
        fanout=4,
        rounds=6,
        style=GossipStyle.PUSH_PULL,
        period=period,
        jitter=0.3,
        max_batch_rumors=8,
        max_batch_bytes=max_batch_bytes,
    )


class AsyncGossipNode:
    """One live node: socket edge + gossip layer + app endpoint.

    The app endpoint records first-delivery wall-clock times per gossip
    id (the loop's monotonic clock), which is what the soak harness turns
    into end-to-end latency percentiles.
    """

    def __init__(
        self,
        name: str,
        action: str = DEFAULT_ACTION,
        transport: str = "udp",
        loop: Optional[asyncio.AbstractEventLoop] = None,
        params: Optional[GossipParams] = None,
        rng: Optional[random.Random] = None,
        overload=None,
        telemetry=None,
    ) -> None:
        if transport == "udp":
            self.edge = AsyncUdpNode(loop=loop)
        elif transport == "http":
            # With overload protection on, the HTTP edge also gates
            # ingest: over-rate POSTs answer 429 + Retry-After, which
            # the resilient sender honors as breaker-independent backoff.
            from repro.transport.edge import EdgeAdmission

            admission = (
                EdgeAdmission.from_policy(overload)
                if overload is not None else None
            )
            self.edge = AsyncHttpNode(loop=loop, admission=admission)
        else:
            raise ValueError(f"unknown transport (udp|http): {transport!r}")
        self.name = name
        self.action = action
        self.loop = self.edge.loop
        self.runtime = self.edge.runtime
        self.scheduler = AioScheduler(self.loop)
        self.app_service = Service()
        self.app_service.add_operation(action, self._on_delivery)
        self.runtime.add_service(APP_PATH, self.app_service)
        self.gossip_layer = GossipLayer(
            runtime=self.runtime,
            scheduler=self.scheduler,
            app_address=self.app_address,
            rng=rng if rng is not None else random.Random(),
            default_params=params,
            view_provider=self._view,
            overload=overload,
            telemetry=telemetry,
        )
        self.runtime.chain.add_first(self.gossip_layer)
        self.runtime.add_service("/gossip", GossipService(self.gossip_layer))
        self._peers: List[str] = []
        #: gossip id -> first-delivery time on the loop clock.
        self.delivered: Dict[str, float] = {}
        self.delivery_count = 0

    @property
    def app_address(self) -> str:
        return self.runtime.address_of(APP_PATH)

    def set_view(self, peers: Sequence[str]) -> None:
        """Install the node's static peer view (app addresses)."""
        self._peers = [peer for peer in peers if peer != self.app_address]

    def _view(self) -> List[str]:
        return self._peers

    def _on_delivery(self, context, value) -> None:
        from repro.core.message import GossipHeader

        header = GossipHeader.from_envelope(context.envelope)
        self.delivery_count += 1
        if header is not None and header.message_id not in self.delivered:
            self.delivered[header.message_id] = self.loop.time()

    def join(self, context: CoordinationContext):
        """Join coordinator-less; periodic rounds start immediately."""
        return self.gossip_layer.join(context, register=False)

    async def astart(self) -> None:
        await self.edge.astart()

    async def astop(self) -> None:
        self.scheduler.close()
        await self.edge.astop()


class AsyncGossipMesh:
    """N live nodes with static random peer views on one event loop.

    Build it anywhere; run it either from async code (``await
    mesh.astart()`` ... ``await mesh.apublish(...)``) or synchronously
    (``mesh.start()`` / ``mesh.publish(...)``), in which case everything
    hops onto the background loop.
    """

    def __init__(
        self,
        n_nodes: int,
        transport: str = "udp",
        params: Optional[GossipParams] = None,
        view_size: int = 8,
        seed: int = 0,
        action: str = DEFAULT_ACTION,
        loop: Optional[asyncio.AbstractEventLoop] = None,
        telemetry=None,
    ) -> None:
        if n_nodes < 2:
            raise ValueError(f"need at least two nodes: {n_nodes!r}")
        self.loop = resolve_loop(loop)
        self.transport = transport
        self.action = action
        self.params = params if params is not None else soak_params(transport)
        rng = random.Random(seed)
        self.nodes: List[AsyncGossipNode] = [
            AsyncGossipNode(
                f"n{index}",
                action=action,
                transport=transport,
                loop=self.loop,
                params=self.params,
                rng=random.Random(rng.random()),
                telemetry=telemetry,
            )
            for index in range(n_nodes)
        ]
        addresses = [node.app_address for node in self.nodes]
        view_size = min(view_size, n_nodes - 1)
        for index, node in enumerate(self.nodes):
            others = addresses[:index] + addresses[index + 1:]
            node.set_view(rng.sample(others, view_size))
        self.context = make_static_context()
        self.telemetry = telemetry
        self._started = False

    @property
    def population(self) -> int:
        return len(self.nodes)

    # -- lifecycle ------------------------------------------------------------

    async def astart(self) -> None:
        if self._started:
            return
        self._started = True
        await asyncio.gather(*(node.astart() for node in self.nodes))
        for node in self.nodes:
            node.join(self.context)

    async def astop(self) -> None:
        if not self._started:
            return
        self._started = False
        await asyncio.gather(*(node.astop() for node in self.nodes))

    def start(self) -> None:
        run_on_loop(self.loop, self.astart(), timeout=60.0)

    def stop(self) -> None:
        run_on_loop(self.loop, self.astop(), timeout=60.0)

    def __enter__(self) -> "AsyncGossipMesh":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- publishing -----------------------------------------------------------

    async def apublish(self, value: Any, publisher_index: int = 0) -> str:
        """Publish one item from a node (must run on the mesh's loop)."""
        node = self.nodes[publisher_index]
        engine = node.gossip_layer.engine_for(self.context.identifier)
        return engine.publish(self.action, value)

    def publish(self, value: Any, publisher_index: int = 0) -> str:
        """Publish from sync code: hops onto the loop and waits."""
        if _on_loop(self.loop):
            raise RuntimeError("use apublish() from the event loop")
        return run_on_loop(
            self.loop, self.apublish(value, publisher_index), timeout=30.0
        )

    # -- measurement ----------------------------------------------------------

    def delivered_fraction(self, gossip_id: str, publisher_index: int = 0) -> float:
        """Fraction of the *other* nodes that delivered the item."""
        others = [
            node for index, node in enumerate(self.nodes)
            if index != publisher_index
        ]
        hits = sum(1 for node in others if gossip_id in node.delivered)
        return hits / len(others)

    def delivery_latencies(self, published: Dict[str, float]) -> List[float]:
        """Per-(message, node) end-to-end latencies for published items.

        ``published`` maps gossip id -> publish time on the loop clock.
        """
        latencies: List[float] = []
        for node in self.nodes:
            for gossip_id, when in node.delivered.items():
                publish_time = published.get(gossip_id)
                if publish_time is not None:
                    latencies.append(when - publish_time)
        return latencies

    def total_deliveries(self) -> int:
        return sum(node.delivery_count for node in self.nodes)

    def merged_hub(self):
        """One hub with every node's metric state folded in.

        Each live node keeps its own :class:`~repro.obs.hub.MetricsHub`
        (tracer spans, telemetry histograms, counters); merging them is
        what reconstructs group-level infection curves and per-hop latency
        from a real-socket run, exactly like the sharded simulator's
        ``repro obs report --shards`` merge.
        """
        from repro.obs.hub import MetricsHub

        return MetricsHub.merged(
            (node.edge.hub.snapshot_state() for node in self.nodes),
            parent=None,
            name="mesh",
        )

    def telemetry_summary(self) -> Dict[str, Any]:
        """Reconstruct the soak's dissemination picture from trace context.

        Returns per-hop / end-to-end latency percentiles (from the sampled
        wire trace sections), the merged infection curve per rumor, and
        rounds-to-99% -- the live-network analogue of the simulator's
        ``repro obs report`` span section.
        """

        def percentiles(values: List[float]) -> Dict[str, float]:
            if not values:
                return {}
            ordered = sorted(values)
            rank = lambda q: ordered[min(len(ordered) - 1, int(q * len(ordered)))]
            return {
                "p50": rank(0.50),
                "p95": rank(0.95),
                "p99": rank(0.99),
                "max": ordered[-1],
                "count": len(ordered),
            }

        hub = self.merged_hub()
        population = self.population
        rumors = []
        for span in hub.tracer.spans():
            rumors.append(
                {
                    "message_id": span.message_id,
                    "origin": span.origin,
                    "delivered": span.delivered_count,
                    "rounds_max": max(span.rounds_of_deliveries(), default=0),
                    "rounds_to_99": span.rounds_to_fraction(0.99, population),
                    "infection_curve": span.infection_curve(),
                }
            )
        spans = hub.tracer.spans()
        delivered_fraction = (
            sum(
                min(1.0, span.delivered_count / max(1, population - 1))
                for span in spans
            )
            / len(spans)
            if spans
            else 0.0
        )
        return {
            "population": population,
            "rumors": rumors,
            "delivered_fraction": delivered_fraction,
            "hop_latency_ms": percentiles(
                hub.histogram("telemetry.hop_latency_ms").values()
            ),
            "e2e_latency_ms": percentiles(
                hub.histogram("telemetry.e2e_latency_ms").values()
            ),
            "samples": hub.counter("telemetry.samples").value,
            "skew_guarded": hub.counter("telemetry.skew_guarded").value,
        }
