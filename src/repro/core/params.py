"""Gossip parameters.

The paper (Section 2) names the two key parameters:

* **Fanout (f)** -- number of targets each process selects per gossip step.
* **Rounds (r)** -- maximum number of times a message is forwarded before
  being ignored.

This module adds the operational knobs a deployment needs around them
(period between proactive rounds, peer-sample size, buffer capacity) and
validates everything in one place.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, Optional

from repro.core.message import GossipStyle


@dataclass(frozen=True)
class GossipParams:
    """Validated gossip configuration.

    Attributes:
        fanout: targets selected per gossip step (``f`` in the paper).
        rounds: forwarding budget per message (``r``); a message arriving
            with no remaining rounds is consumed but not forwarded
            (infect-and-die).
        style: which gossip variant the engine runs.
        period: seconds between proactive rounds (pull digests,
            anti-entropy exchanges, peer refresh).  Push gossip forwards
            reactively and only uses the period for peer refresh.
        peer_sample_size: how many peers the coordinator hands out per
            registration; must be >= fanout.
        buffer_capacity: per-activity message store size (FIFO eviction).
        jitter: uniform extra delay added to periodic timers, decorrelating
            rounds across nodes.
        ordered: enforce per-origin FIFO delivery (holdback buffer; see
            :mod:`repro.core.ordering`).
        stop_probability: feedback-style only -- probability of losing
            interest in a rumor per duplicate feedback received.
    """

    fanout: int = 3
    rounds: int = 5
    style: GossipStyle = GossipStyle.PUSH
    period: float = 1.0
    peer_sample_size: int = 12
    buffer_capacity: int = 1024
    jitter: float = 0.1
    ordered: bool = False
    stop_probability: float = 0.5

    def __post_init__(self) -> None:
        if self.fanout < 1:
            raise ValueError(f"fanout must be >= 1: {self.fanout!r}")
        if self.rounds < 1:
            raise ValueError(f"rounds must be >= 1: {self.rounds!r}")
        if self.period <= 0:
            raise ValueError(f"period must be positive: {self.period!r}")
        if self.peer_sample_size < self.fanout:
            raise ValueError(
                f"peer_sample_size ({self.peer_sample_size}) must be >= "
                f"fanout ({self.fanout})"
            )
        if self.buffer_capacity < 1:
            raise ValueError(f"buffer_capacity must be >= 1: {self.buffer_capacity!r}")
        if self.jitter < 0:
            raise ValueError(f"jitter must be non-negative: {self.jitter!r}")
        if not 0.0 < self.stop_probability <= 1.0:
            raise ValueError(
                f"stop_probability must be in (0, 1]: {self.stop_probability!r}"
            )

    # -- wire form (serializer maps, exchanged with the coordinator) --------

    def to_value(self) -> Dict[str, Any]:
        """Serialize for a RegisterResponse payload."""
        return {
            "fanout": self.fanout,
            "rounds": self.rounds,
            "style": self.style.value,
            "period": self.period,
            "peer_sample_size": self.peer_sample_size,
            "buffer_capacity": self.buffer_capacity,
            "jitter": self.jitter,
            "ordered": self.ordered,
            "stop_probability": self.stop_probability,
        }

    @classmethod
    def from_value(cls, value: Dict[str, Any]) -> "GossipParams":
        """Parse from a RegisterResponse payload.

        Raises:
            ValueError / KeyError: on malformed maps (callers translate to
            faults where appropriate).
        """
        return cls(
            fanout=int(value["fanout"]),
            rounds=int(value["rounds"]),
            style=GossipStyle(value["style"]),
            period=float(value["period"]),
            peer_sample_size=int(value["peer_sample_size"]),
            buffer_capacity=int(value["buffer_capacity"]),
            jitter=float(value["jitter"]),
            ordered=bool(value.get("ordered", False)),
            stop_probability=float(value.get("stop_probability", 0.5)),
        )

    def with_style(self, style: GossipStyle) -> "GossipParams":
        """A copy with a different style."""
        return replace(self, style=style)

    def with_fanout(self, fanout: int) -> "GossipParams":
        """A copy with a different fanout."""
        return replace(self, fanout=fanout)

    def with_rounds(self, rounds: int) -> "GossipParams":
        """A copy with a different rounds budget."""
        return replace(self, rounds=rounds)
