"""Gossip parameters.

The paper (Section 2) names the two key parameters:

* **Fanout (f)** -- number of targets each process selects per gossip step.
* **Rounds (r)** -- maximum number of times a message is forwarded before
  being ignored.

This module adds the operational knobs a deployment needs around them
(period between proactive rounds, peer-sample size, buffer capacity) and
validates everything in one place.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, Optional

from repro.core.message import GossipStyle


class ParamError(ValueError):
    """A gossip parameter is missing or malformed.

    Subclasses :class:`ValueError` so existing broad handlers keep
    working; carries the offending ``key`` so callers (coordinator faults,
    error messages) can name it.
    """

    def __init__(self, key: str, message: str) -> None:
        super().__init__(message)
        self.key = key


def _convert(value: Dict[str, Any], key: str, caster, *, required: bool = False, default: Any = None) -> Any:
    """Pull ``key`` out of an activation/registration map, converting with
    ``caster`` and raising :class:`ParamError` that names the key."""
    if key not in value:
        if required:
            raise ParamError(key, f"missing gossip parameter {key!r}")
        return default
    try:
        return caster(value[key])
    except (TypeError, ValueError) as exc:
        raise ParamError(
            key, f"invalid gossip parameter {key!r}: {value[key]!r} ({exc})"
        ) from exc


@dataclass(frozen=True)
class GossipParams:
    """Validated gossip configuration.

    Attributes:
        fanout: targets selected per gossip step (``f`` in the paper).
        rounds: forwarding budget per message (``r``); a message arriving
            with no remaining rounds is consumed but not forwarded
            (infect-and-die).
        style: which gossip variant the engine runs.
        period: seconds between proactive rounds (pull digests,
            anti-entropy exchanges, peer refresh).  Push gossip forwards
            reactively and only uses the period for peer refresh.
        peer_sample_size: how many peers the coordinator hands out per
            registration; must be >= fanout.
        buffer_capacity: per-activity message store size (FIFO eviction).
        jitter: uniform extra delay added to periodic timers, decorrelating
            rounds across nodes.
        ordered: enforce per-origin FIFO delivery (holdback buffer; see
            :mod:`repro.core.ordering`).
        stop_probability: feedback-style only -- probability of losing
            interest in a rumor per duplicate feedback received.
        max_batch_rumors: upper bound on rumors/control entries coalesced
            into one batched envelope (lpbcast-style piggybacking).  ``1``
            (the default) disables batching entirely: every frame is a
            legacy single-rumor envelope.
        max_batch_bytes: upper bound on a batch's payload bytes; a batch
            is cut when either cap is hit.  A single oversized rumor still
            ships (alone) -- the cap bounds coalescing, not message size.
    """

    fanout: int = 3
    rounds: int = 5
    style: GossipStyle = GossipStyle.PUSH
    period: float = 1.0
    peer_sample_size: int = 12
    buffer_capacity: int = 1024
    jitter: float = 0.1
    ordered: bool = False
    stop_probability: float = 0.5
    max_batch_rumors: int = 1
    max_batch_bytes: int = 262144

    def __post_init__(self) -> None:
        if self.fanout < 1:
            raise ParamError("fanout", f"fanout must be >= 1: {self.fanout!r}")
        if self.rounds < 1:
            raise ParamError("rounds", f"rounds must be >= 1: {self.rounds!r}")
        if self.period <= 0:
            raise ParamError("period", f"period must be positive: {self.period!r}")
        if self.peer_sample_size < self.fanout:
            raise ParamError(
                "peer_sample_size",
                f"peer_sample_size ({self.peer_sample_size}) must be >= "
                f"fanout ({self.fanout})",
            )
        if self.buffer_capacity < 1:
            raise ParamError(
                "buffer_capacity",
                f"buffer_capacity must be >= 1: {self.buffer_capacity!r}",
            )
        if self.jitter < 0:
            raise ParamError("jitter", f"jitter must be non-negative: {self.jitter!r}")
        if not 0.0 < self.stop_probability <= 1.0:
            raise ParamError(
                "stop_probability",
                f"stop_probability must be in (0, 1]: {self.stop_probability!r}",
            )
        if self.max_batch_rumors < 1:
            raise ParamError(
                "max_batch_rumors",
                f"max_batch_rumors must be >= 1: {self.max_batch_rumors!r}",
            )
        if self.max_batch_bytes < 1024:
            raise ParamError(
                "max_batch_bytes",
                f"max_batch_bytes must be >= 1024: {self.max_batch_bytes!r}",
            )

    # -- wire form (serializer maps, exchanged with the coordinator) --------

    def to_value(self) -> Dict[str, Any]:
        """Serialize for a RegisterResponse payload."""
        return {
            "fanout": self.fanout,
            "rounds": self.rounds,
            "style": self.style.value,
            "period": self.period,
            "peer_sample_size": self.peer_sample_size,
            "buffer_capacity": self.buffer_capacity,
            "jitter": self.jitter,
            "ordered": self.ordered,
            "stop_probability": self.stop_probability,
            "max_batch_rumors": self.max_batch_rumors,
            "max_batch_bytes": self.max_batch_bytes,
        }

    @classmethod
    def from_value(cls, value: Dict[str, Any]) -> "GossipParams":
        """Parse from a RegisterResponse payload.

        Raises:
            ParamError: naming the missing/malformed key (a
                :class:`ValueError` subclass, so broad handlers still work).
        """
        if not isinstance(value, dict):
            raise ParamError("params", f"parameter map expected, got {value!r}")
        return cls(
            fanout=_convert(value, "fanout", int, required=True),
            rounds=_convert(value, "rounds", int, required=True),
            style=_convert(value, "style", GossipStyle, required=True),
            period=_convert(value, "period", float, required=True),
            peer_sample_size=_convert(value, "peer_sample_size", int, required=True),
            buffer_capacity=_convert(value, "buffer_capacity", int, required=True),
            jitter=_convert(value, "jitter", float, required=True),
            ordered=_convert(value, "ordered", bool, default=False),
            stop_probability=_convert(value, "stop_probability", float, default=0.5),
            # Optional with defaults: RegisterResponses from pre-batching
            # coordinators simply leave batching off.
            max_batch_rumors=_convert(value, "max_batch_rumors", int, default=1),
            max_batch_bytes=_convert(value, "max_batch_bytes", int, default=262144),
        )

    @classmethod
    def from_activation(
        cls, parameters: Dict[str, Any], base: Optional["GossipParams"] = None
    ) -> "GossipParams":
        """Build parameters from a (partial) activation dict over ``base``.

        Every key is optional; the base (default-constructed when omitted)
        supplies the rest.  Raises :class:`ParamError` naming the offending
        key on any malformed entry -- never a bare ``KeyError`` or
        context-free ``ValueError``.
        """
        if not isinstance(parameters, dict):
            raise ParamError(
                "parameters", f"activation parameter map expected, got {parameters!r}"
            )
        base = base if base is not None else cls()
        return cls(
            fanout=_convert(parameters, "fanout", int, default=base.fanout),
            rounds=_convert(parameters, "rounds", int, default=base.rounds),
            style=_convert(parameters, "style", GossipStyle, default=base.style),
            period=_convert(parameters, "period", float, default=base.period),
            peer_sample_size=_convert(
                parameters, "peer_sample_size", int, default=base.peer_sample_size
            ),
            buffer_capacity=_convert(
                parameters, "buffer_capacity", int, default=base.buffer_capacity
            ),
            jitter=_convert(parameters, "jitter", float, default=base.jitter),
            ordered=_convert(parameters, "ordered", bool, default=base.ordered),
            stop_probability=_convert(
                parameters, "stop_probability", float, default=base.stop_probability
            ),
            max_batch_rumors=_convert(
                parameters, "max_batch_rumors", int, default=base.max_batch_rumors
            ),
            max_batch_bytes=_convert(
                parameters, "max_batch_bytes", int, default=base.max_batch_bytes
            ),
        )

    def with_style(self, style: GossipStyle) -> "GossipParams":
        """A copy with a different style."""
        return replace(self, style=style)

    def with_fanout(self, fanout: int) -> "GossipParams":
        """A copy with a different fanout."""
        return replace(self, fanout=fanout)

    def with_rounds(self, rounds: int) -> "GossipParams":
        """A copy with a different rounds budget."""
        return replace(self, rounds=rounds)
