"""Topic directory: named gossip activities.

WS-Notification users think in *topics*; WS-Gossip thinks in coordination
*activities*.  This module bridges them: a directory service on the
coordinator maps topic names to gossip activities, creating them on first
use.  Publishers and subscribers address topics by name and never handle
raw activity identifiers.

This is the idiom the stock-market scenario wants: one activity per
symbol (or per feed tier), consumers subscribing only to the topics they
care about.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from repro.core.coordination import GOSSIP_COORDINATION_TYPE
from repro.soap import namespaces as ns
from repro.soap.fault import sender_fault
from repro.soap.handler import MessageContext
from repro.soap.service import Service, operation
from repro.soap.runtime import SoapRuntime
from repro.wsa.addressing import EndpointReference
from repro.wscoord.context import CoordinationContext
from repro.wscoord.coordinator import Coordinator
from repro.wscoord.registration import ACTIVITY_ID_PARAM

ENSURE_ACTION = f"{ns.WSGOSSIP}/topic/Ensure"
TOPIC_DIRECTORY_PATH = "/topics"


class TopicDirectoryService(Service):
    """Maps topic names to gossip activities, creating on first use.

    Args:
        coordinator: the coordinator whose activities back the topics.
        default_parameters: gossip parameters applied to new topics
            (individual Ensure requests may override per topic).
    """

    def __init__(
        self,
        coordinator: Coordinator,
        default_parameters: Optional[Dict[str, Any]] = None,
    ) -> None:
        super().__init__()
        self._coordinator = coordinator
        self._default_parameters = dict(default_parameters or {})
        self._topics: Dict[str, str] = {}

    def topics(self) -> Dict[str, str]:
        """Mapping of topic name to activity identifier."""
        return dict(self._topics)

    @operation(ENSURE_ACTION)
    def ensure(
        self, context: MessageContext, value: Optional[Dict[str, Any]]
    ) -> Dict[str, Any]:
        """SOAP operation: resolve or create the named topic."""
        if not isinstance(value, dict):
            raise sender_fault("Ensure requires a map payload")
        topic = value.get("topic")
        if not isinstance(topic, str) or not topic:
            raise sender_fault("Ensure requires a non-empty topic name")
        parameters = value.get("parameters") or {}
        if not isinstance(parameters, dict):
            raise sender_fault("parameters must be a map")

        created = False
        activity_id = self._topics.get(topic)
        if activity_id is None or activity_id not in self._coordinator:
            merged = dict(self._default_parameters)
            merged.update(parameters)
            coordination_context = self._coordinator.create_context(
                GOSSIP_COORDINATION_TYPE, parameters=merged
            )
            activity_id = coordination_context.identifier
            self._topics[topic] = activity_id
            created = True

        activity = self._coordinator.activity(activity_id)
        return {
            "topic": topic,
            "activity": activity_id,
            "registration": activity.context.registration_service.address,
            "created": created,
        }


def context_from_ensure_response(value: Dict[str, Any]) -> CoordinationContext:
    """Rebuild the activity's coordination context from an Ensure reply.

    Raises:
        ValueError: on malformed responses.
    """
    activity_id = value.get("activity")
    registration = value.get("registration")
    if not isinstance(activity_id, str) or not isinstance(registration, str):
        raise ValueError(f"malformed Ensure response: {value!r}")
    return CoordinationContext(
        identifier=activity_id,
        coordination_type=GOSSIP_COORDINATION_TYPE,
        registration_service=EndpointReference(
            registration, {ACTIVITY_ID_PARAM: activity_id}
        ),
    )


def ensure_topic(
    runtime: SoapRuntime,
    directory_address: str,
    topic: str,
    parameters: Optional[Dict[str, Any]] = None,
    on_context: Optional[Callable[[CoordinationContext, Dict[str, Any]], None]] = None,
) -> str:
    """Resolve (or create) a topic; returns the request's MessageID.

    ``on_context`` receives the reconstructed
    :class:`~repro.wscoord.context.CoordinationContext` plus the raw
    response map once the directory answers.
    """

    def handle(reply_context: MessageContext, value: Any) -> None:
        if not isinstance(value, dict):
            runtime.metrics.counter("topics.ensure-failed").inc()
            return
        try:
            coordination_context = context_from_ensure_response(value)
        except ValueError:
            runtime.metrics.counter("topics.ensure-malformed").inc()
            return
        if on_context is not None:
            on_context(coordination_context, value)

    return runtime.send(
        directory_address,
        ENSURE_ACTION,
        value={"topic": topic, "parameters": parameters or {}},
        on_reply=handle,
    )
