"""Peer-health: adaptive failure suspicion feeding degraded-mode gossip.

The epidemic analysis (paper, Section 2) assumes every selected target is
a live process; fanout spent on crashed peers is silently wasted and the
effective infection rate drops below the configured ``f``.  This module
closes that gap with a lightweight phi-accrual-style detector:

* every failed send adds ``failure_weight`` to the destination's
  *suspicion score*;
* the score decays exponentially with half-life ``half_life`` (absence of
  evidence slowly restores trust);
* any positive evidence -- a successful send, or gossip *received from*
  the peer -- subtracts ``success_relief`` immediately;
* the membership detector's verdict (:class:`~repro.wsmembership.engine.
  MembershipEngine` ``on_failure``) pins the score above threshold at
  once (hard evidence beats accrual).

A peer whose score exceeds ``suspicion_threshold`` is *suspected*.
Degraded-mode gossip then (a) prefers unsuspected peers when selecting
targets (:class:`HealthAwareSelector`) and (b) raises the effective
fanout in proportion to the suspected fraction of the view, capped at
``boost_cap`` (:meth:`PeerHealth.effective_fanout`) -- so the *expected
number of live infections per round* stays close to the configured
fanout even while a third of the population is down.

Scores are keyed by node base address (``scheme://authority``), the same
key the transport circuit breakers use: all services of one node share
one health record.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.params import ParamError, _convert
from repro.simnet.metrics import HealthStats
from repro.transport.base import (
    BreakerPolicy,
    RetryPolicy,
    SendOutcome,
    split_address,
)


@dataclass(frozen=True)
class HealthPolicy:
    """Validated knobs of the peer-health layer.

    Attributes:
        suspicion_threshold: score above which a peer counts as suspected.
        failure_weight: score added per observed send failure.
        success_relief: score subtracted per positive observation.
        half_life: seconds for an untouched score to halve.
        boost_cap: maximum multiplier applied to the configured fanout
            when the healthy pool shrinks (bounds the traffic blow-up).
        max_retries: transport-level resend attempts per message.
        retry_backoff: initial backoff before the first retry (seconds).
        breaker_threshold: consecutive failures that open a destination's
            circuit breaker.
        breaker_reset: seconds an open breaker waits before the half-open
            probe that tests recovery.
    """

    suspicion_threshold: float = 1.5
    failure_weight: float = 1.0
    success_relief: float = 1.0
    half_life: float = 10.0
    boost_cap: float = 2.0
    max_retries: int = 1
    retry_backoff: float = 0.05
    breaker_threshold: int = 3
    breaker_reset: float = 5.0

    def __post_init__(self) -> None:
        if self.suspicion_threshold <= 0:
            raise ParamError(
                "suspicion_threshold",
                f"suspicion_threshold must be positive: {self.suspicion_threshold!r}",
            )
        if self.failure_weight <= 0:
            raise ParamError(
                "failure_weight",
                f"failure_weight must be positive: {self.failure_weight!r}",
            )
        if self.success_relief < 0:
            raise ParamError(
                "success_relief",
                f"success_relief must be non-negative: {self.success_relief!r}",
            )
        if self.half_life <= 0:
            raise ParamError(
                "half_life", f"half_life must be positive: {self.half_life!r}"
            )
        if self.boost_cap < 1.0:
            raise ParamError(
                "boost_cap", f"boost_cap must be >= 1: {self.boost_cap!r}"
            )
        if self.max_retries < 0:
            raise ParamError(
                "max_retries",
                f"max_retries must be non-negative: {self.max_retries!r}",
            )
        if self.retry_backoff <= 0:
            raise ParamError(
                "retry_backoff",
                f"retry_backoff must be positive: {self.retry_backoff!r}",
            )
        if self.breaker_threshold < 1:
            raise ParamError(
                "breaker_threshold",
                f"breaker_threshold must be >= 1: {self.breaker_threshold!r}",
            )
        if self.breaker_reset <= 0:
            raise ParamError(
                "breaker_reset",
                f"breaker_reset must be positive: {self.breaker_reset!r}",
            )

    # -- wire/config form ----------------------------------------------------

    def to_value(self) -> Dict[str, Any]:
        """Serialize to a plain mapping."""
        return {
            "suspicion_threshold": self.suspicion_threshold,
            "failure_weight": self.failure_weight,
            "success_relief": self.success_relief,
            "half_life": self.half_life,
            "boost_cap": self.boost_cap,
            "max_retries": self.max_retries,
            "retry_backoff": self.retry_backoff,
            "breaker_threshold": self.breaker_threshold,
            "breaker_reset": self.breaker_reset,
        }

    @classmethod
    def from_value(cls, value: Dict[str, Any]) -> "HealthPolicy":
        """Parse from a (partial) mapping over the defaults.

        Raises:
            ParamError: naming the malformed or unknown key.
        """
        if not isinstance(value, dict):
            raise ParamError("health", f"health policy map expected, got {value!r}")
        known = set(cls().to_value())
        unknown = sorted(set(value) - known)
        if unknown:
            raise ParamError(
                unknown[0], f"unknown health policy key(s): {', '.join(unknown)}"
            )
        base = cls()
        return cls(
            suspicion_threshold=_convert(
                value, "suspicion_threshold", float,
                default=base.suspicion_threshold,
            ),
            failure_weight=_convert(
                value, "failure_weight", float, default=base.failure_weight
            ),
            success_relief=_convert(
                value, "success_relief", float, default=base.success_relief
            ),
            half_life=_convert(value, "half_life", float, default=base.half_life),
            boost_cap=_convert(value, "boost_cap", float, default=base.boost_cap),
            max_retries=_convert(
                value, "max_retries", int, default=base.max_retries
            ),
            retry_backoff=_convert(
                value, "retry_backoff", float, default=base.retry_backoff
            ),
            breaker_threshold=_convert(
                value, "breaker_threshold", int, default=base.breaker_threshold
            ),
            breaker_reset=_convert(
                value, "breaker_reset", float, default=base.breaker_reset
            ),
        )

    # -- derived transport policies -----------------------------------------

    def retry_policy(self) -> RetryPolicy:
        """The transport retry policy this health policy implies."""
        return RetryPolicy(max_retries=self.max_retries, backoff=self.retry_backoff)

    def breaker_policy(self) -> BreakerPolicy:
        """The per-destination circuit-breaker policy this implies."""
        return BreakerPolicy(
            failure_threshold=self.breaker_threshold,
            reset_timeout=self.breaker_reset,
        )

    def with_overrides(self, **overrides: Any) -> "HealthPolicy":
        """A copy with the given fields replaced."""
        return replace(self, **overrides)


def key_of(address: str) -> str:
    """Normalize any peer address to its health key.

    Full endpoint addresses collapse to the node base
    (``scheme://authority``); bare names pass through -- so membership
    addresses, gossip ports and app endpoints of one node all share one
    health record.
    """
    if "://" not in address:
        return address
    scheme, authority, _ = split_address(address)
    return f"{scheme}://{authority}"


class PeerHealth:
    """Per-peer suspicion scores with exponential decay.

    One instance per node.  Evidence flows in from three sources:

    * the transport's structured send outcomes
      (:meth:`record_outcome`, registered via
      ``transport.add_outcome_listener``);
    * any inbound gossip traffic (:meth:`observe_alive` -- hearing from a
      peer is proof of life);
    * the WS-Membership failure detector (:meth:`mark_failed`, wired to
      ``MembershipEngine.on_failure``).

    Args:
        policy: the knobs (defaults used when omitted).
        clock: monotonic time source; inject the simulator clock inside
            experiments (defaults to :func:`time.monotonic`).
    """

    def __init__(
        self,
        policy: Optional[HealthPolicy] = None,
        clock: Optional[Callable[[], float]] = None,
        stats: Optional[HealthStats] = None,
    ) -> None:
        self.policy = policy if policy is not None else HealthPolicy()
        self._clock = clock if clock is not None else time.monotonic
        if stats is None:
            from repro.obs.hub import default_hub

            stats = default_hub().health
        self.stats = stats
        # key -> (score at `stamp`, stamp)
        self._scores: Dict[str, Tuple[float, float]] = {}
        self._suspected: set = set()

    # -- evidence in ---------------------------------------------------------

    def record_outcome(self, outcome: SendOutcome) -> None:
        """Transport listener: fold one send outcome into the score."""
        if outcome.ok:
            self.observe_alive(outcome.destination)
        else:
            self._add(key_of(outcome.destination), self.policy.failure_weight)

    def observe_alive(self, peer: str) -> None:
        """Positive evidence: a send succeeded or the peer was heard from."""
        if self.policy.success_relief > 0:
            self._add(key_of(peer), -self.policy.success_relief)

    def mark_failed(self, peer: str) -> None:
        """Hard verdict from a failure detector: suspect immediately."""
        key = key_of(peer)
        now = self._clock()
        floor = self.policy.suspicion_threshold + self.policy.failure_weight
        score = max(self._decayed(key, now), floor)
        self._scores[key] = (score, now)
        self._reclassify(key, score)

    def forget(self, peer: str) -> None:
        """Drop all state about a peer (it left the system for good)."""
        key = key_of(peer)
        self._scores.pop(key, None)
        self._suspected.discard(key)

    def reset(self) -> None:
        """Drop every score (an amnesia restart forgets its suspicions;
        see the crash-recovery section of docs/RESILIENCE.md)."""
        self._scores.clear()
        self._suspected.clear()

    # -- queries -------------------------------------------------------------

    def suspicion(self, peer: str) -> float:
        """The peer's current (decayed) suspicion score."""
        return self._decayed(key_of(peer), self._clock())

    def is_suspected(self, peer: str) -> bool:
        """True when the score exceeds the policy threshold."""
        return self.suspicion(peer) > self.policy.suspicion_threshold

    def partition(
        self, view: Sequence[str]
    ) -> Tuple[List[str], List[str]]:
        """Split a peer view into (healthy, suspected) sublists."""
        healthy: List[str] = []
        suspected: List[str] = []
        for peer in view:
            (suspected if self.is_suspected(peer) else healthy).append(peer)
        return healthy, suspected

    def effective_fanout(self, fanout: int, view: Sequence[str]) -> int:
        """Fanout compensated for the suspected fraction of the view.

        With ``s`` of ``n`` view members suspected, scaling fanout by
        ``n / (n - s)`` keeps the expected number of *live* targets per
        round at the configured ``f``; the multiplier is capped at
        ``boost_cap`` so a mostly-dead view cannot cause a send storm.
        """
        if not view:
            return fanout
        healthy, suspected = self.partition(view)
        if not suspected or not healthy:
            # Nothing to compensate -- or nothing healthy to compensate
            # *with* (the selector will fall back to suspected peers).
            return fanout
        multiplier = min(self.policy.boost_cap, len(view) / len(healthy))
        boosted = int(round(fanout * multiplier))
        if boosted > fanout:
            self.stats.fanout_boosts += 1
        return max(fanout, boosted)

    def suspected_peers(self) -> List[str]:
        """Every key currently over threshold (refreshes decayed entries)."""
        now = self._clock()
        for key in list(self._scores):
            self._reclassify(key, self._decayed(key, now))
        return sorted(self._suspected)

    def snapshot(self) -> Dict[str, float]:
        """Current decayed score per known peer (diagnostics)."""
        now = self._clock()
        return {key: self._decayed(key, now) for key in self._scores}

    # -- internals -----------------------------------------------------------

    def _decayed(self, key: str, now: float) -> float:
        entry = self._scores.get(key)
        if entry is None:
            return 0.0
        score, stamp = entry
        elapsed = max(0.0, now - stamp)
        if elapsed == 0.0:
            return score
        return score * 0.5 ** (elapsed / self.policy.half_life)

    def _add(self, key: str, delta: float) -> None:
        now = self._clock()
        score = max(0.0, self._decayed(key, now) + delta)
        if score == 0.0 and key not in self._suspected:
            # Keep the table tight: fully-recovered unsuspected peers need
            # no entry (absence already means "score 0").
            self._scores.pop(key, None)
        else:
            self._scores[key] = (score, now)
        self._reclassify(key, score)

    def _reclassify(self, key: str, score: float) -> None:
        suspected = score > self.policy.suspicion_threshold
        if suspected and key not in self._suspected:
            self._suspected.add(key)
            self.stats.peers_suspected += 1
        elif not suspected and key in self._suspected:
            self._suspected.discard(key)
            self.stats.peers_restored += 1

    def __repr__(self) -> str:
        return (
            f"PeerHealth(known={len(self._scores)}, "
            f"suspected={len(self._suspected)})"
        )
