"""The distributed-Coordinator mode.

    "Notice that a distributed Coordinator is supported by
    WS-Coordination and thus also by WS-Gossip, as the list of
    subscribers can be maintained in a distributed fashion as proposed by
    WS-Membership [10]."  (paper, Section 3)

This module wires that mode together: every node runs WS-Membership
heartbeats plus Cyclon peer sampling, and its gossip engines draw their
peer view from the *live local membership* instead of a coordinator's
RegisterResponse.  There is no central subscriber list, no Activation /
Registration round trip, and no single node whose loss stops new
participants from joining.

:class:`DecentralizedGossipNode` is the building block;
:class:`DecentralizedGroup` builds a whole simulated deployment with the
same measurement surface as :class:`repro.core.api.GossipGroup`.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.core.engine import GossipEngine, gossip_address_of
from repro.core.handler import GossipLayer
from repro.core.health import HealthPolicy, PeerHealth
from repro.core.message import GossipStyle
from repro.core.params import GossipParams
from repro.core.peersampling import (
    SAMPLING_SERVICE_PATH,
    PeerSamplingEngine,
    PeerSamplingService,
)
from repro.core.roles import APP_PATH, AppNode
from repro.core.scheduling import ProcessScheduler
from repro.core.service import GossipService
from repro.simnet.events import Simulator
from repro.simnet.latency import LatencyModel
from repro.obs.hub import MetricsHub, default_hub, use_hub
from repro.simnet.network import Network
from repro.simnet.trace import TraceLog
from repro.wsa.addressing import EndpointReference
from repro.wscoord.context import CoordinationContext, new_context_identifier
from repro.wsmembership.engine import MembershipEngine
from repro.wsmembership.service import MembershipService

DEFAULT_ACTION = "urn:ws-gossip:example/Event"


def make_static_context(activity_id: Optional[str] = None) -> CoordinationContext:
    """A coordination context for a coordinator-less activity.

    The registration EPR points nowhere meaningful ("urn:decentralized");
    nodes in this mode never register -- the context's only job is to
    identify the activity in message headers.
    """
    identifier = activity_id or new_context_identifier()
    return CoordinationContext(
        identifier=identifier,
        coordination_type="urn:ws-gossip:2008:coordination",
        registration_service=EndpointReference("urn:decentralized"),
    )


class DecentralizedGossipNode(AppNode):
    """A gossip node whose peer view is maintained by membership gossip.

    Components per node: app endpoint, gossip layer + service, Cyclon
    peer sampling, WS-Membership heartbeats.  The gossip view is the set
    of *alive* members intersected with nothing -- membership is the
    authority; sampling keeps it mixed.
    """

    def __init__(
        self,
        name: str,
        network: Network,
        params: Optional[GossipParams] = None,
        membership_period: float = 0.5,
        sampling_period: float = 0.5,
        t_fail: float = 4.0,
        view_capacity: int = 16,
        health_policy: Optional[HealthPolicy] = None,
        durability=None,
        overload=None,
    ) -> None:
        super().__init__(name, network, app_path=APP_PATH)
        scheduler = ProcessScheduler(self)
        # Optional peer-health layer: retrying/breaker-guarded transport
        # plus degraded-mode gossip, fed by send outcomes AND the
        # membership detector's verdicts.
        self.health: Optional[PeerHealth] = None
        if health_policy is not None:
            self.health = PeerHealth(
                health_policy,
                clock=lambda: self.sim.now,
                stats=network.hub.health,
            )
            self.runtime.transport.configure_resilience(
                retry=health_policy.retry_policy(),
                breaker=health_policy.breaker_policy(),
            )
            self.runtime.transport.add_outcome_listener(self.health.record_outcome)
        self.membership = MembershipEngine(
            runtime=self.runtime,
            scheduler=scheduler,
            self_address=self.app_address,
            period=membership_period,
            t_fail=t_fail,
            rng=self.sim.rng.get(f"membership:{name}"),
            on_failure=self.health.mark_failed if self.health else None,
        )
        self.runtime.add_service("/membership", MembershipService(self.membership))
        self.sampling = PeerSamplingEngine(
            runtime=self.runtime,
            scheduler=scheduler,
            self_address=self.app_address,
            capacity=view_capacity,
            shuffle_length=min(6, view_capacity),
            period=sampling_period,
            rng=self.sim.rng.get(f"sampling:{name}"),
        )
        self.runtime.add_service(
            SAMPLING_SERVICE_PATH, PeerSamplingService(self.sampling)
        )
        self.gossip_layer = GossipLayer(
            runtime=self.runtime,
            scheduler=scheduler,
            app_address=self.app_address,
            rng=self.sim.rng.get(f"gossip:{name}"),
            default_params=params,
            view_provider=self._gossip_view,
            health=self.health,
            durability=durability,
            overload=overload,
        )
        self.runtime.chain.add_first(self.gossip_layer)
        self.runtime.add_service("/gossip", GossipService(self.gossip_layer))
        self._seeds: List[str] = []
        #: Messages restored from the WAL by the most recent durable restart.
        self.replayed_messages = 0

    def _gossip_view(self) -> List[str]:
        """Alive members first; fall back to the sampling view while the
        membership table is still warming up."""
        alive = self.membership.alive_members()
        if alive:
            return alive
        return self.sampling.view_addresses()

    def bootstrap(self, seeds: Sequence[str]) -> None:
        """Introduce a few known peers (both protocols share the seeds)."""
        self._seeds = [seed for seed in seeds if seed]
        self.membership.bootstrap(seeds)
        self.sampling.bootstrap(seeds)

    def on_start(self) -> None:
        self.membership.start()
        self.sampling.start()

    def reset_state(self, amnesia: bool) -> None:
        """Crash-faithful restart: wipe (or replay) the gossip engines and
        drop in-memory health scores.  Membership/sampling views are
        rebuilt from the original seed list in :meth:`on_restart` -- the
        seeds model the node's static introducer configuration, the one
        thing that survives any restart."""
        super().reset_state(amnesia)
        self.replayed_messages = self.gossip_layer.prepare_restart(
            amnesia=amnesia, on_replayed=self._delivered_ids.add
        )
        if self.health is not None:
            self.health.reset()

    def on_restart(self, amnesia: bool) -> None:
        """Rejoin: restart membership and sampling from the seed list,
        then run the gossip catch-up protocol."""
        self.membership.rejoin(self._seeds)
        self.sampling.rejoin(self._seeds)
        self.gossip_layer.rejoin()

    def join(self, context: CoordinationContext) -> GossipEngine:
        """Join an activity without any coordinator round trip."""
        return self.gossip_layer.join(context, register=False)

    def publish(self, context: CoordinationContext, action: str, value: Any) -> str:
        """Join (if needed) and disseminate one invocation."""
        return self.join(context).publish(action, value)


class DecentralizedGroup:
    """A complete coordinator-less deployment (experiment facade).

    Mirrors :class:`repro.core.api.GossipGroup`'s measurement surface so
    the ablation bench can sweep both modes interchangeably.
    """

    def __init__(
        self,
        n_nodes: int = 16,
        seed: int = 0,
        latency: Optional[LatencyModel] = None,
        loss_rate: float = 0.0,
        params: Optional[GossipParams] = None,
        seeds_per_node: int = 2,
        action: str = DEFAULT_ACTION,
        trace: bool = False,
        health_policy: Optional[HealthPolicy] = None,
    ) -> None:
        if n_nodes < 2:
            raise ValueError(f"need at least two nodes: {n_nodes!r}")
        self.sim = Simulator(seed=seed)
        self.trace = TraceLog(enabled=trace)
        # One hub per decentralized group (chained to the default hub),
        # so concurrent simulations never share metric state.
        self.metrics = MetricsHub(parent=default_hub(), name="decentralized-group")
        self.hub = self.metrics
        self.network = Network(
            self.sim, latency=latency, loss_rate=loss_rate,
            trace=self.trace, metrics=self.metrics,
        )
        self.action = action
        self.params = params if params is not None else GossipParams(
            fanout=4, rounds=7, style=GossipStyle.PUSH_PULL, period=0.5,
        )
        self.nodes: List[DecentralizedGossipNode] = [
            DecentralizedGossipNode(
                f"n{index}", self.network, params=self.params,
                health_policy=health_policy,
            )
            for index in range(n_nodes)
        ]
        addresses = [node.app_address for node in self.nodes]
        for index, node in enumerate(self.nodes):
            node.bind(self.action)
            # Ring-ish sparse bootstrap: a couple of successors each.
            seeds = [
                addresses[(index + offset + 1) % n_nodes]
                for offset in range(seeds_per_node)
            ]
            node.bootstrap(seeds)
        for node in self.nodes:
            node.start()
        self.context = make_static_context()
        self._setup_done = False

    @property
    def population(self) -> int:
        return len(self.nodes)

    def setup(self, warmup: float = 8.0) -> str:
        """Let membership and sampling converge; join every node."""
        if not self._setup_done:
            self._setup_done = True
            self.run_for(warmup)
            for node in self.nodes:
                node.join(self.context)
        return self.context.identifier

    def publish(self, value: Any, publisher_index: int = 0) -> str:
        """Disseminate one item from the chosen node."""
        with use_hub(self.hub):
            return self.nodes[publisher_index].publish(
                self.context, self.action, value
            )

    def run_for(self, duration: float) -> None:
        """Advance simulated time by ``duration`` seconds (under this
        group's hub, so hub-less call sites attribute costs here)."""
        with use_hub(self.hub):
            self.sim.run_until(self.sim.now + duration)

    def delivered_fraction(self, gossip_id: str, publisher_index: int = 0) -> float:
        """Fraction of other nodes that received the item."""
        others = [
            node for index, node in enumerate(self.nodes)
            if index != publisher_index
        ]
        delivered = sum(1 for node in others if node.has_delivered(gossip_id))
        return delivered / len(others)

    def delivery_times(self, gossip_id: str) -> List[float]:
        """First-delivery times across nodes that received the item."""
        times = []
        for node in self.nodes:
            when = node.delivery_time(gossip_id)
            if when is not None:
                times.append(when)
        return times

    def message_counts(self) -> Dict[str, int]:
        """Network-level counters (sent / delivered / dropped...)."""
        return self.metrics.counters()
