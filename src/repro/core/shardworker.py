"""The worker-process side of a sharded gossip deployment.

:func:`gossip_shard_worker` is the module-level entry point
:class:`~repro.simnet.shard.ShardCluster` spawns (module-level so it is
picklable under every multiprocessing start method).  Each worker builds
the *local slice* of the Figure-1 topology -- only the nodes its
:class:`~repro.simnet.shard.ShardPlan` assigns to it -- on a private
single-process :class:`~repro.simnet.events.Simulator`, then serves the
parent's barrier windows and orchestration commands via
:func:`~repro.simnet.shard.shard_worker_loop`.

Determinism notes:

* Per-node RNG streams are derived from the master seed and the node
  name alone (``sim.rng.fork(name)`` inside the node stack), so a node
  makes the *same* protocol-level draws regardless of which shard it
  lands on or how many shards exist.
* The network's loss/latency stream is per-shard
  (``RngStreams.for_shard``): with K shards there are K independent
  fabric streams where a single-process run has one, which is why
  individual latency samples differ across shard counts while protocol
  behaviour does not.
* The coordination context crosses shard boundaries as its canonical
  XML (:meth:`~repro.wscoord.context.CoordinationContext.to_element`),
  the same encoding it has on the wire.
"""

from __future__ import annotations

import hashlib
import xml.etree.ElementTree as ET
from typing import Any, Dict, List, Mapping, Optional

from repro.core.engine import PROTOCOL_DISSEMINATOR
from repro.core.health import HealthPolicy, PeerHealth
from repro.core.roles import (
    ConsumerNode,
    CoordinatorNode,
    DisseminatorNode,
    InitiatorNode,
)
from repro.wscoord.context import CoordinationContext
from repro.obs.hub import MetricsHub, default_hub, use_hub
from repro.simnet.events import Simulator
from repro.simnet.network import Network
from repro.simnet.shard import ShardEgress, ShardPlan, shard_worker_loop
from repro.simnet.trace import TraceLog


def topology_names(n_disseminators: int, n_consumers: int) -> List[str]:
    """Every node name in the Figure-1 topology, declaration order.

    The parent and all workers derive the shard plan from this one list,
    so they always agree on ownership without exchanging it.
    """
    return (
        ["coordinator", "initiator"]
        + [f"d{i}" for i in range(n_disseminators)]
        + [f"c{i}" for i in range(n_consumers)]
    )


class GossipShardRuntime:
    """One shard's slice of a gossip deployment plus its command handlers."""

    def __init__(self, shard_index: int, config: Any) -> None:
        self.shard_index = shard_index
        self.config = config
        self.plan = ShardPlan(
            topology_names(config.n_disseminators, config.n_consumers),
            config.shards,
            config.shard_map,
        )
        local = set(self.plan.members(shard_index))

        self.sim = Simulator(seed=config.seed)
        self.trace = TraceLog(enabled=config.trace)
        self.hub = MetricsHub(
            parent=default_hub(), name=f"gossip-shard-{shard_index}"
        )
        self.hub.tracer.enabled = config.rumor_tracing
        # The fabric stream is per-shard; every per-node stream is derived
        # from the node's name and stays shard-count independent.
        self.network = Network(
            self.sim,
            latency=config.latency,
            loss_rate=config.loss_rate,
            trace=self.trace,
            metrics=self.hub,
            rng=self.sim.rng.for_shard(shard_index).get("network"),
        )
        self.egress = ShardEgress(self.plan, shard_index)
        self.network.set_egress(self.egress)
        self.action = config.action

        self.coordinator: Optional[CoordinatorNode] = (
            CoordinatorNode(
                "coordinator",
                self.network,
                auto_tune=config.auto_tune,
                target_reliability=config.target_reliability,
            )
            if "coordinator" in local
            else None
        )
        self.initiator: Optional[InitiatorNode] = (
            InitiatorNode(
                "initiator",
                self.network,
                durability=config.durability,
                overload=config.overload,
            )
            if "initiator" in local
            else None
        )
        self.disseminators = [
            DisseminatorNode(
                f"d{index}",
                self.network,
                durability=config.durability,
                overload=config.overload,
            )
            for index in range(config.n_disseminators)
            if f"d{index}" in local
        ]
        self.consumers = [
            ConsumerNode(f"c{index}", self.network)
            for index in range(config.n_consumers)
            if f"c{index}" in local
        ]

        if config.health:
            policy = (
                config.health_policy
                if config.health_policy is not None
                else HealthPolicy()
            )
            for node in self._gossip_nodes():
                health = PeerHealth(
                    policy,
                    clock=lambda: self.sim.now,
                    stats=self.hub.health,
                )
                node.runtime.transport.configure_resilience(
                    retry=policy.retry_policy(),
                    breaker=policy.breaker_policy(),
                )
                node.runtime.transport.add_outcome_listener(health.record_outcome)
                node.gossip_layer.health = health
                node.health = health

        for node in self._app_nodes():
            node.bind(self.action)
        for node in self._all_nodes():
            node.start()

        self.activity_id: Optional[str] = None
        self._acked: set = set()

    # -- topology ------------------------------------------------------------

    def _app_nodes(self) -> List[Any]:
        nodes: List[Any] = []
        if self.initiator is not None:
            nodes.append(self.initiator)
        nodes.extend(self.disseminators)
        nodes.extend(self.consumers)
        return nodes

    def _all_nodes(self) -> List[Any]:
        nodes: List[Any] = []
        if self.coordinator is not None:
            nodes.append(self.coordinator)
        nodes.extend(self._app_nodes())
        return nodes

    def _gossip_nodes(self) -> List[Any]:
        nodes: List[Any] = []
        if self.initiator is not None:
            nodes.append(self.initiator)
        nodes.extend(self.disseminators)
        return nodes

    def _engine(self) -> Any:
        if self.initiator is None or self.activity_id is None:
            raise RuntimeError("no activated initiator on this shard")
        return self.initiator.activities[self.activity_id]

    # -- the shard_worker_loop contract --------------------------------------

    def activate(self):
        return use_hub(self.hub)

    def handle(self, msg: Mapping[str, Any]) -> Dict[str, Any]:
        op = msg["op"]
        handler = getattr(self, f"_op_{op}", None)
        if handler is None:
            raise ValueError(f"unknown shard command: {op!r}")
        return handler(msg)

    # -- orchestration commands ----------------------------------------------

    def _op_addresses(self, msg: Mapping[str, Any]) -> Dict[str, Any]:
        """The coordinator's well-known endpoints (coordinator shard only)."""
        if self.coordinator is None:
            return {"activation": None, "subscription": None}
        return {
            "activation": self.coordinator.activation_address,
            "subscription": self.coordinator.subscription_address,
        }

    def _op_activate(self, msg: Mapping[str, Any]) -> Dict[str, Any]:
        if self.initiator is None:
            return {}
        self.initiator.activate(
            msg["activation_address"],
            parameters=dict(self.config.params),
            on_ready=self._on_activated,
        )
        return {}

    def _on_activated(self, engine: Any) -> None:
        self.activity_id = engine.activity_id

    def _op_state(self, msg: Mapping[str, Any]) -> Dict[str, Any]:
        """Cheap orchestration state: what is ready, what is pending."""
        context_xml = None
        view_ready = False
        if self.initiator is not None and self.activity_id is not None:
            engine = self._engine()
            context_xml = ET.tostring(
                engine.context.to_element(), encoding="unicode"
            )
            view_ready = bool(engine.view)
        pending = [
            node.name
            for node in self._app_nodes()
            if node is not self.initiator and node.name not in self._acked
        ]
        return {
            "activity_id": self.activity_id,
            "context": context_xml,
            "view_ready": view_ready,
            "subscribe_pending": pending,
        }

    def _op_subscribe(self, msg: Mapping[str, Any]) -> Dict[str, Any]:
        """(Re-)subscribe every local app node not yet acknowledged."""
        for node in self._app_nodes():
            if node is self.initiator or node.name in self._acked:
                continue
            node.subscribe(
                msg["subscription_address"],
                msg["activity_id"],
                on_reply=lambda _ctx, _val, name=node.name: self._acked.add(name),
            )
        return {}

    def _op_join(self, msg: Mapping[str, Any]) -> Dict[str, Any]:
        """Eager-join every local disseminator (pull-family styles)."""
        context = CoordinationContext.from_element(
            ET.fromstring(msg["context"])
        )
        for node in self.disseminators:
            node.gossip_layer.join(context, PROTOCOL_DISSEMINATOR)
        return {}

    def _op_refresh_view(self, msg: Mapping[str, Any]) -> Dict[str, Any]:
        self._engine().refresh_view()
        return {}

    def _op_publish(self, msg: Mapping[str, Any]) -> Dict[str, Any]:
        return {
            "message_id": self.initiator.publish(
                self.activity_id, self.action, msg["value"]
            )
        }

    # -- measurement commands -------------------------------------------------

    def _op_measure(self, msg: Mapping[str, Any]) -> Dict[str, Any]:
        """Receivers and first-delivery times among local app nodes."""
        receivers: Dict[str, List[str]] = {}
        times: Dict[str, List[float]] = {}
        for gossip_id in msg["message_ids"]:
            got: List[str] = []
            whens: List[float] = []
            for node in self._app_nodes():
                if node is self.initiator:
                    continue
                if node.has_delivered(gossip_id):
                    got.append(node.name)
                    when = node.delivery_time(gossip_id)
                    if when is not None:
                        whens.append(when)
            receivers[gossip_id] = got
            times[gossip_id] = whens
        return {"receivers": receivers, "times": times}

    def _op_hub(self, msg: Mapping[str, Any]) -> Dict[str, Any]:
        return {"state": self.hub.snapshot_state()}

    def _op_trace_digest(self, msg: Mapping[str, Any]) -> Dict[str, Any]:
        """A stable digest of this shard's run, for determinism checks.

        Hashes the local trace events (uuid-free) plus the executed-event
        count; two runs with the same seed and shard count must agree on
        every shard's digest.
        """
        digest = hashlib.sha256()
        for event in self.trace.events():
            digest.update(
                f"{event.time:.9f}|{event.kind}|{event.node}|"
                f"{sorted(event.detail.items())!r}\n".encode("utf-8")
            )
        return {
            "digest": digest.hexdigest(),
            "trace_events": len(self.trace),
            "events_executed": self.sim.events_executed,
        }


def gossip_shard_worker(
    conn: Any, shard_index: int, config_dict: Dict[str, Any]
) -> None:
    """Process entry point: build the shard, report ready, serve commands."""
    try:
        from repro.core.api import GossipConfig

        runtime = GossipShardRuntime(
            shard_index, GossipConfig.from_dict(config_dict)
        )
    except Exception as exc:
        try:
            conn.send({"ok": False, "error": f"{type(exc).__name__}: {exc}"})
        finally:
            return
    conn.send(
        {
            "ok": True,
            "egress": runtime.egress.drain(),
            "next": runtime.sim._queue.peek_time(),
        }
    )
    shard_worker_loop(conn, runtime)
