"""High-level facade: build and drive a complete WS-Gossip deployment.

:class:`GossipGroup` wires up the Figure-1 topology at any scale -- one
coordinator, one initiator, N disseminators, M consumers -- orchestrates
activation / subscription / registration, and exposes the measurements the
experiments need (delivery fraction, latency, message counts).

Example:
    >>> group = GossipGroup(n_disseminators=16, n_consumers=8, seed=42)
    >>> group.setup()
    >>> message_id = group.publish({"symbol": "QIM", "price": 13.37})
    >>> group.run_for(5.0)
    >>> group.delivered_fraction(message_id)  # doctest: +SKIP
    1.0
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.core.engine import PROTOCOL_DISSEMINATOR
from repro.core.message import GossipStyle
from repro.core.params import GossipParams
from repro.core.roles import (
    AppNode,
    ConsumerNode,
    CoordinatorNode,
    DisseminatorNode,
    InitiatorNode,
)
from repro.simnet.events import Simulator
from repro.simnet.latency import LatencyModel
from repro.simnet.metrics import MetricsRegistry
from repro.simnet.network import Network
from repro.simnet.trace import TraceLog

DEFAULT_ACTION = "urn:ws-gossip:example/Event"


class GossipGroup:
    """One complete, simulated WS-Gossip deployment.

    Args:
        n_disseminators: gossip-capable nodes besides the initiator.
        n_consumers: completely unchanged nodes (push styles only -- pull
            styles spread between gossip-capable nodes).
        seed: master seed; every run with the same seed is identical.
        latency: network latency model (default 1 ms fixed).
        loss_rate: uniform message-loss probability.
        params: activation parameters handed to the coordinator, e.g.
            ``{"style": "push", "fanout": 4, "rounds": 6}``.
        auto_tune: let the coordinator grow fanout/rounds with population.
        target_reliability: auto-tune goal for atomic delivery.
        action: the application action disseminated invocations use.
        trace: record a full event trace (memory-heavy at large N).
    """

    def __init__(
        self,
        n_disseminators: int = 8,
        n_consumers: int = 0,
        seed: int = 0,
        latency: Optional[LatencyModel] = None,
        loss_rate: float = 0.0,
        params: Optional[Dict[str, Any]] = None,
        auto_tune: bool = True,
        target_reliability: float = 0.99,
        action: str = DEFAULT_ACTION,
        trace: bool = False,
    ) -> None:
        if n_disseminators < 0 or n_consumers < 0:
            raise ValueError("node counts must be non-negative")
        self.sim = Simulator(seed=seed)
        self.trace = TraceLog(enabled=trace)
        self.metrics = MetricsRegistry()
        self.network = Network(
            self.sim,
            latency=latency,
            loss_rate=loss_rate,
            trace=self.trace,
            metrics=self.metrics,
        )
        self.action = action
        self.activation_parameters = dict(params or {})

        self.coordinator = CoordinatorNode(
            "coordinator",
            self.network,
            auto_tune=auto_tune,
            target_reliability=target_reliability,
        )
        self.initiator = InitiatorNode("initiator", self.network)
        self.disseminators: List[DisseminatorNode] = [
            DisseminatorNode(f"d{index}", self.network)
            for index in range(n_disseminators)
        ]
        self.consumers: List[ConsumerNode] = [
            ConsumerNode(f"c{index}", self.network) for index in range(n_consumers)
        ]
        for node in self.app_nodes():
            node.bind(self.action)
        for node in self.all_nodes():
            node.start()

        self.activity_id: Optional[str] = None
        self._setup_done = False

    # -- topology ------------------------------------------------------------

    def app_nodes(self) -> List[AppNode]:
        """Every node with an application endpoint (initiator included)."""
        return [self.initiator, *self.disseminators, *self.consumers]

    def all_nodes(self) -> List:
        """Every node including the coordinator."""
        return [self.coordinator, *self.app_nodes()]

    @property
    def population(self) -> int:
        """Number of application endpoints in the group."""
        return len(self.app_nodes())

    # -- orchestration ------------------------------------------------------------

    def setup(self, settle: float = 2.0, eager_join: Optional[bool] = None) -> str:
        """Activate the gossip interaction and subscribe every node.

        Mirrors Figure 1: the initiator activates at the coordinator, every
        app endpoint subscribes, and the initiator refreshes its peer view
        once the subscriber list is populated.  ``eager_join`` makes the
        disseminators register immediately rather than on first message --
        required by the pull-family styles (defaults to exactly that).

        Returns the activity id.
        """
        if self._setup_done:
            if self.activity_id is None:
                raise RuntimeError("previous setup did not complete")
            return self.activity_id
        self._setup_done = True

        ready: List[str] = []
        for _ in range(5):  # activation is control traffic: retry on loss
            self.initiator.activate(
                self.coordinator.activation_address,
                parameters=self.activation_parameters,
                on_ready=lambda engine: ready.append(engine.activity_id),
            )
            self.run_for(settle)
            if ready:
                break
        if not ready:
            raise RuntimeError("activation did not complete; is the coordinator up?")
        self.activity_id = ready[0]

        acked: set = set()
        pending = [*self.disseminators, *self.consumers]
        for _ in range(5):  # subscriptions retried until acknowledged
            for node in pending:
                node.subscribe(
                    self.coordinator.subscription_address,
                    self.activity_id,
                    on_reply=lambda _context, _value, name=node.name: acked.add(name),
                )
            self.run_for(settle)
            pending = [node for node in pending if node.name not in acked]
            if not pending:
                break

        style = self._style()
        if eager_join is None:
            eager_join = style is not GossipStyle.PUSH
        if eager_join:
            engine = self.initiator.activities[self.activity_id]
            for node in self.disseminators:
                node.gossip_layer.join(engine.context, PROTOCOL_DISSEMINATOR)
            self.run_for(settle)

        # The initiator registered before anyone subscribed; refresh so its
        # first fanout has real targets.  Retried: the refresh reply rides
        # the same lossy fabric.
        engine = self.initiator.activities[self.activity_id]
        for _ in range(5):
            engine.refresh_view()
            self.run_for(settle)
            if engine.view:
                break
        return self.activity_id

    def _style(self) -> GossipStyle:
        style = self.activation_parameters.get("style")
        return GossipStyle(style) if style else GossipStyle.PUSH

    def publish(self, value: Any) -> str:
        """Disseminate one data item from the initiator."""
        if self.activity_id is None:
            raise RuntimeError("call setup() before publish()")
        return self.initiator.publish(self.activity_id, self.action, value)

    def run_for(self, duration: float) -> None:
        """Advance simulated time by ``duration`` seconds."""
        self.sim.run_until(self.sim.now + duration)

    # -- measurements -----------------------------------------------------------------

    def receivers(self, gossip_id: str) -> List[AppNode]:
        """Nodes (other than the initiator) whose app saw the item."""
        return [
            node
            for node in self.app_nodes()
            if node is not self.initiator and node.has_delivered(gossip_id)
        ]

    def delivered_fraction(self, gossip_id: str) -> float:
        """Fraction of non-initiator app endpoints that received the item."""
        others = self.population - 1
        if others <= 0:
            return 1.0
        return len(self.receivers(gossip_id)) / others

    def is_atomic(self, gossip_id: str) -> bool:
        """True when every app endpoint received the item."""
        return self.delivered_fraction(gossip_id) >= 1.0

    def delivery_times(self, gossip_id: str) -> List[float]:
        """First-delivery times across receiving nodes."""
        times = []
        for node in self.app_nodes():
            if node is self.initiator:
                continue
            when = node.delivery_time(gossip_id)
            if when is not None:
                times.append(when)
        return times

    def message_counts(self) -> Dict[str, int]:
        """Network-level counters (sent / delivered / dropped...)."""
        return self.metrics.counters()

    def duplicate_deliveries(self, gossip_id: str) -> int:
        """App-level duplicate receipts of one item (consumers have no
        dedup layer, so this measures the duplication cost of gossip)."""
        duplicates = 0
        for node in self.app_nodes():
            count = sum(
                1 for delivery in node.deliveries if delivery.gossip_id == gossip_id
            )
            if count > 1:
                duplicates += count - 1
        return duplicates

    def __repr__(self) -> str:
        return (
            f"GossipGroup(n={self.population}, activity={self.activity_id!r}, "
            f"now={self.sim.now:.3f})"
        )
