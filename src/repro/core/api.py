"""High-level facade: build and drive a complete WS-Gossip deployment.

:class:`GossipConfig` is the one immutable description of a deployment;
:class:`GossipGroup` takes a config and wires up the Figure-1 topology at
any scale -- one coordinator, one initiator, N disseminators, M consumers
-- orchestrates activation / subscription / registration, and exposes the
measurements the experiments need (delivery fraction, latency, message
counts).

Example:
    >>> group = GossipGroup(config=GossipConfig(n_disseminators=16, seed=42))
    >>> group.setup()
    >>> message_id = group.publish({"symbol": "QIM", "price": 13.37})
    >>> group.run_for(5.0)
    >>> group.delivered_fraction(message_id)  # doctest: +SKIP
    1.0

The pre-config keyword soup (``GossipGroup(n_disseminators=16, seed=42)``)
was removed after a deprecation cycle: passing deployment settings as
keyword arguments now raises :class:`~repro.core.params.ParamError`
pointing at the ``GossipConfig`` replacement.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field, fields
from typing import Any, Dict, List, Mapping, Optional

from repro.core.control import AdaptiveController, AdaptivePolicy
from repro.core.engine import PROTOCOL_DISSEMINATOR
from repro.core.health import HealthPolicy, PeerHealth
from repro.core.message import GossipStyle
from repro.core.overload import OverloadPolicy
from repro.core.params import GossipParams, ParamError
from repro.core.roles import (
    AppNode,
    ConsumerNode,
    CoordinatorNode,
    DisseminatorNode,
    InitiatorNode,
)
from repro.core.store import DurabilityPolicy
from repro.core.telemetry import TelemetryPolicy
from repro.obs.hub import MetricsHub, default_hub, use_hub
from repro.obs.windows import SloBurnMonitor, WindowRollup, recent_delivery_fraction
from repro.simnet.events import Simulator
from repro.simnet.latency import LatencyModel
from repro.simnet.network import Network
from repro.simnet.trace import TraceLog

DEFAULT_ACTION = "urn:ws-gossip:example/Event"


@dataclass(frozen=True)
class GossipConfig:
    """Immutable description of one simulated WS-Gossip deployment.

    Attributes:
        n_disseminators: gossip-capable nodes besides the initiator.
        n_consumers: completely unchanged nodes (push styles only -- pull
            styles spread between gossip-capable nodes).
        seed: master seed; every run with the same seed is identical.
        latency: network latency model (default 1 ms fixed).
        loss_rate: uniform message-loss probability.
        params: activation parameters handed to the coordinator, e.g.
            ``{"style": "push", "fanout": 4, "rounds": 6}``.
        auto_tune: let the coordinator grow fanout/rounds with population.
        target_reliability: auto-tune goal for atomic delivery.
        action: the application action disseminated invocations use.
        trace: record a full event trace (memory-heavy at large N).
        health: enable the peer-health layer on every gossip-capable
            node -- retrying transports with per-destination circuit
            breakers, failure suspicion, and degraded-mode peer
            selection (see :mod:`repro.core.health`).
        health_policy: knobs for the health layer; a plain dict is
            accepted and validated via
            :meth:`~repro.core.health.HealthPolicy.from_value`.
        durability: enable the crash-recovery subsystem on every
            gossip-capable node -- each engine keeps a
            :class:`~repro.core.store.GossipLog` (WAL + snapshots) and
            restarted nodes rejoin via the bounded catch-up protocol.
            Accepts a :class:`~repro.core.store.DurabilityPolicy`, a plain
            dict (validated via
            :meth:`~repro.core.store.DurabilityPolicy.from_value`), or
            ``True`` for the defaults.
        shards: run the simulation across this many worker processes
            (conservative-PDES sharding, see docs/ARCHITECTURE.md,
            "Parallel simulation").  ``1`` (the default) is the plain
            single-process simulator, byte-for-byte unchanged; ``K > 1``
            makes :meth:`build` return a
            :class:`~repro.core.shard.ShardedGossipGroup`.
        shard_map: optional explicit ``{node_name: shard_index}``
            partition; must cover every node.  Default: stable hash.
        rumor_tracing: record a causal span per published rumor
            (publish/forward/deliver hops with round attribution) on the
            group's :class:`~repro.obs.hub.MetricsHub` -- the source of
            the infection curve and rounds-to-delivery percentiles
            (see docs/OBSERVABILITY.md).  Cheap; on by default.
        adaptive: attach an :class:`~repro.core.control.AdaptiveController`
            that re-tunes fanout/rounds/mode/batching from observed
            delivery every epoch (see docs/RESILIENCE.md, "Adaptive
            control").  Accepts an
            :class:`~repro.core.control.AdaptivePolicy`, a plain dict
            (validated via
            :meth:`~repro.core.control.AdaptivePolicy.from_value`), or
            ``True`` for the defaults.  Requires ``rumor_tracing`` (the
            delivery signal comes from the causal spans).
        overload: enable overload protection on every gossip-capable
            node -- bounded outboxes and ingest queues with priority
            load shedding, publish backpressure at the hard limit, and
            a pressure signal the adaptive controller reads (see
            docs/RESILIENCE.md, "Overload and backpressure").  Accepts
            an :class:`~repro.core.overload.OverloadPolicy`, a plain
            dict (validated via
            :meth:`~repro.core.overload.OverloadPolicy.from_value`), or
            ``True`` for the defaults.  ``None`` (the default) keeps
            every overload code path dormant: the wire trace is
            byte-for-byte identical to the pre-overload behaviour.
        telemetry: enable the live telemetry plane -- wire-level trace
            context on gossip frames (per-hop latency from sampled
            publications), rolling-window counter rates, and the SLO
            burn-rate alert timeline (see docs/OBSERVABILITY.md, "Live
            telemetry").  Accepts a
            :class:`~repro.core.telemetry.TelemetryPolicy`, a plain dict
            (validated via
            :meth:`~repro.core.telemetry.TelemetryPolicy.from_value`), or
            ``True`` for the defaults.  ``None`` (the default) emits no
            trace section: the wire trace stays byte-for-byte identical
            to the pre-telemetry behaviour.
    """

    n_disseminators: int = 8
    n_consumers: int = 0
    seed: int = 0
    shards: int = 1
    shard_map: Optional[Mapping[str, int]] = None
    latency: Optional[LatencyModel] = None
    loss_rate: float = 0.0
    params: Mapping[str, Any] = field(default_factory=dict)
    auto_tune: bool = True
    target_reliability: float = 0.99
    action: str = DEFAULT_ACTION
    trace: bool = False
    health: bool = False
    health_policy: Optional[HealthPolicy] = None
    durability: Optional[DurabilityPolicy] = None
    rumor_tracing: bool = True
    adaptive: Optional[AdaptivePolicy] = None
    overload: Optional[OverloadPolicy] = None
    telemetry: Optional[TelemetryPolicy] = None

    def __post_init__(self) -> None:
        if self.n_disseminators < 0:
            raise ParamError(
                "n_disseminators",
                f"n_disseminators must be non-negative: {self.n_disseminators!r}",
            )
        if self.n_consumers < 0:
            raise ParamError(
                "n_consumers",
                f"n_consumers must be non-negative: {self.n_consumers!r}",
            )
        if (
            not isinstance(self.shards, int)
            or isinstance(self.shards, bool)
            or self.shards < 1
        ):
            raise ParamError(
                "shards", f"shards must be an integer >= 1: {self.shards!r}"
            )
        if self.shard_map is not None:
            if not isinstance(self.shard_map, Mapping):
                raise ParamError(
                    "shard_map",
                    f"shard_map must be a mapping of node name to shard "
                    f"index: {self.shard_map!r}",
                )
            object.__setattr__(self, "shard_map", dict(self.shard_map))
        if not 0.0 <= self.loss_rate < 1.0:
            raise ParamError(
                "loss_rate", f"loss_rate must be in [0, 1): {self.loss_rate!r}"
            )
        if not 0.0 < self.target_reliability < 1.0:
            raise ParamError(
                "target_reliability",
                f"target_reliability must be in (0, 1): {self.target_reliability!r}",
            )
        # Freeze the activation parameters into a private copy so a caller
        # mutating the dict they passed cannot alter this config.
        object.__setattr__(self, "params", dict(self.params))
        if isinstance(self.health_policy, dict):
            object.__setattr__(
                self, "health_policy", HealthPolicy.from_value(self.health_policy)
            )
        if self.durability is True:
            object.__setattr__(self, "durability", DurabilityPolicy())
        elif isinstance(self.durability, dict):
            object.__setattr__(
                self, "durability", DurabilityPolicy.from_value(self.durability)
            )
        elif self.durability is not None and not isinstance(
            self.durability, DurabilityPolicy
        ):
            raise ParamError(
                "durability",
                "durability must be a DurabilityPolicy, a dict of its "
                f"fields, True, or None: {self.durability!r}",
            )
        if self.adaptive is True:
            object.__setattr__(self, "adaptive", AdaptivePolicy())
        elif isinstance(self.adaptive, dict):
            object.__setattr__(
                self, "adaptive", AdaptivePolicy.from_value(self.adaptive)
            )
        elif self.adaptive is not None and not isinstance(
            self.adaptive, AdaptivePolicy
        ):
            raise ParamError(
                "adaptive",
                "adaptive must be an AdaptivePolicy, a dict of its "
                f"fields, True, or None: {self.adaptive!r}",
            )
        if self.adaptive is not None and not self.rumor_tracing:
            raise ParamError(
                "adaptive",
                "adaptive control needs rumor_tracing=True (the delivery "
                "signal is read from the causal rumor spans)",
            )
        if self.overload is True:
            object.__setattr__(self, "overload", OverloadPolicy())
        elif isinstance(self.overload, dict):
            object.__setattr__(
                self, "overload", OverloadPolicy.from_value(self.overload)
            )
        elif self.overload is not None and not isinstance(
            self.overload, OverloadPolicy
        ):
            raise ParamError(
                "overload",
                "overload must be an OverloadPolicy, a dict of its "
                f"fields, True, or None: {self.overload!r}",
            )
        if self.telemetry is True:
            object.__setattr__(self, "telemetry", TelemetryPolicy())
        elif isinstance(self.telemetry, dict):
            object.__setattr__(
                self, "telemetry", TelemetryPolicy.from_value(self.telemetry)
            )
        elif self.telemetry is not None and not isinstance(
            self.telemetry, TelemetryPolicy
        ):
            raise ParamError(
                "telemetry",
                "telemetry must be a TelemetryPolicy, a dict of its "
                f"fields, True, or None: {self.telemetry!r}",
            )

    @classmethod
    def field_names(cls) -> List[str]:
        """The configurable field names, declaration order."""
        return [f.name for f in fields(cls)]

    @classmethod
    def from_dict(cls, value: Mapping[str, Any]) -> "GossipConfig":
        """Build a config from a plain mapping (e.g. parsed JSON/TOML).

        Raises:
            ParamError: naming any unknown key.
        """
        known = set(cls.field_names())
        unknown = sorted(set(value) - known)
        if unknown:
            raise ParamError(
                unknown[0], f"unknown GossipConfig key(s): {', '.join(unknown)}"
            )
        return cls(**dict(value))

    def with_overrides(self, **overrides: Any) -> "GossipConfig":
        """A copy with the given fields replaced.

        Raises:
            ParamError: naming any unknown key.
        """
        known = set(self.field_names())
        unknown = sorted(set(overrides) - known)
        if unknown:
            raise ParamError(
                unknown[0], f"unknown GossipConfig key(s): {', '.join(unknown)}"
            )
        return dataclasses.replace(self, **overrides)

    def to_dict(self) -> Dict[str, Any]:
        """The config as a plain dict (``params``/``shard_map`` copied)."""
        result = {name: getattr(self, name) for name in self.field_names()}
        result["params"] = dict(self.params)
        if self.shard_map is not None:
            result["shard_map"] = dict(self.shard_map)
        return result

    def gossip_params(self, base: Optional[GossipParams] = None) -> GossipParams:
        """The validated :class:`GossipParams` the activation will produce
        (useful for inspecting a config before running it)."""
        return GossipParams.from_activation(
            {
                key: value
                for key, value in self.params.items()
                if key in {f.name for f in fields(GossipParams)}
            },
            base=base,
        )

    def build(self) -> Any:
        """Construct the deployment this config describes.

        ``shards == 1`` builds the plain in-process :class:`GossipGroup`
        (wire behaviour untouched); ``shards > 1`` builds a
        :class:`~repro.core.shard.ShardedGossipGroup` running the same
        topology across worker processes.
        """
        if self.shards > 1:
            from repro.core.shard import ShardedGossipGroup

            return ShardedGossipGroup(config=self)
        return GossipGroup(config=self)


# Sentinel distinguishing "kwarg not passed" from an explicit None/False.
_UNSET: Any = object()


class GossipGroup:
    """One complete, simulated WS-Gossip deployment.

    Args:
        config: the deployment description (see :class:`GossipConfig`).
        **legacy: the pre-config keyword soup (``n_disseminators=...`` and
            friends) is gone: after a deprecation cycle it now raises
            :class:`~repro.core.params.ParamError` naming the offending
            keywords.  Build a :class:`GossipConfig` and pass ``config=``
            (or call ``GossipConfig(...).build()``).
    """

    def __init__(
        self,
        n_disseminators: int = _UNSET,
        n_consumers: int = _UNSET,
        seed: int = _UNSET,
        latency: Optional[LatencyModel] = _UNSET,
        loss_rate: float = _UNSET,
        params: Optional[Dict[str, Any]] = _UNSET,
        auto_tune: bool = _UNSET,
        target_reliability: float = _UNSET,
        action: str = _UNSET,
        trace: bool = _UNSET,
        config: Optional[GossipConfig] = None,
    ) -> None:
        legacy = {
            name: value
            for name, value in {
                "n_disseminators": n_disseminators,
                "n_consumers": n_consumers,
                "seed": seed,
                "latency": latency,
                "loss_rate": loss_rate,
                "params": params if params is not _UNSET and params is not None else _UNSET,
                "auto_tune": auto_tune,
                "target_reliability": target_reliability,
                "action": action,
                "trace": trace,
            }.items()
            if value is not _UNSET
        }
        if legacy:
            raise ParamError(
                sorted(legacy)[0],
                "passing GossipGroup settings as keyword arguments was "
                "removed; build a GossipConfig and pass config=... or call "
                "GossipConfig(...).build() "
                f"(got: {', '.join(sorted(legacy))})",
            )
        self.config = config if config is not None else GossipConfig()

        self.sim = Simulator(seed=self.config.seed)
        self.trace = TraceLog(enabled=self.config.trace)
        # One observability hub per group: chained to the default hub so
        # process-wide aggregates (the deprecated *_STATS aliases) still
        # see this simulation, but never shared with another group.
        self.metrics = MetricsHub(parent=default_hub(), name="gossip-group")
        self.hub = self.metrics
        self.hub.tracer.enabled = self.config.rumor_tracing
        self.network = Network(
            self.sim,
            latency=self.config.latency,
            loss_rate=self.config.loss_rate,
            trace=self.trace,
            metrics=self.metrics,
        )
        self.action = self.config.action
        self.activation_parameters = dict(self.config.params)

        self.coordinator = CoordinatorNode(
            "coordinator",
            self.network,
            auto_tune=self.config.auto_tune,
            target_reliability=self.config.target_reliability,
        )
        self.initiator = InitiatorNode(
            "initiator",
            self.network,
            durability=self.config.durability,
            overload=self.config.overload,
            telemetry=self.config.telemetry,
        )
        self.disseminators: List[DisseminatorNode] = [
            DisseminatorNode(
                f"d{index}",
                self.network,
                durability=self.config.durability,
                overload=self.config.overload,
                telemetry=self.config.telemetry,
            )
            for index in range(self.config.n_disseminators)
        ]
        self.consumers: List[ConsumerNode] = [
            ConsumerNode(f"c{index}", self.network)
            for index in range(self.config.n_consumers)
        ]
        if self.config.health:
            policy = (
                self.config.health_policy
                if self.config.health_policy is not None
                else HealthPolicy()
            )
            for node in [self.initiator, *self.disseminators]:
                health = PeerHealth(
                    policy,
                    clock=lambda: self.sim.now,
                    stats=self.hub.health,
                )
                node.runtime.transport.configure_resilience(
                    retry=policy.retry_policy(),
                    breaker=policy.breaker_policy(),
                )
                node.runtime.transport.add_outcome_listener(health.record_outcome)
                node.gossip_layer.health = health
                node.health = health

        self.controller: Optional[AdaptiveController] = None
        if self.config.adaptive is not None:
            gossip_nodes = [self.initiator, *self.disseminators]
            self.controller = AdaptiveController(
                self.hub,
                self.config.adaptive,
                population=lambda: self.population,
                engines=lambda: [
                    engine
                    for node in gossip_nodes
                    for engine in node.gossip_layer.engines()
                ],
                healths=(
                    (lambda: [node.health for node in gossip_nodes])
                    if self.config.health
                    else None
                ),
            )
            # Tick on the simulator itself, not a node's scheduler: the
            # control plane models an external operator and must survive
            # node crashes.
            self.controller.start(self.sim)

        # Live telemetry rollups: a periodic tick on the simulator (same
        # crash-survival rationale as the controller) that bins counter
        # deltas into rolling windows and feeds the SLO burn-rate monitor
        # from recently-published rumor spans.
        self.burn_monitor: Optional[SloBurnMonitor] = None
        self._window_rollup: Optional[WindowRollup] = None
        if self.config.telemetry is not None:
            self._start_telemetry(self.config.telemetry)

        for node in self.app_nodes():
            node.bind(self.action)
        for node in self.all_nodes():
            node.start()

        self.activity_id: Optional[str] = None
        self._setup_done = False

    def _start_telemetry(self, policy: TelemetryPolicy) -> None:
        """Begin the telemetry rollup ticks (windowed rates + SLO burn)."""
        self._window_rollup = WindowRollup(
            self.hub, width=policy.epoch, buckets=max(2, int(60.0 / policy.epoch))
        )
        self.burn_monitor = SloBurnMonitor(
            self.hub, slo=policy.slo_delivery, window=policy.window
        )
        # Delivery is judged over rumors old enough to have finished their
        # rounds: the grace mirrors the AdaptiveController's observation
        # window so both planes read the same signal.
        gossip_params = GossipParams.from_activation(self.activation_parameters)
        grace = 0.5 * policy.epoch + gossip_params.rounds * gossip_params.period
        lookback = 2.5 * policy.epoch

        def tick() -> None:
            now = self.sim.now
            self._window_rollup.tick(now)
            delivery = recent_delivery_fraction(
                self.hub, now, self.population, lookback=lookback, grace=grace
            )
            if delivery is not None:
                self.burn_monitor.record(now, delivery)
            self.sim.call_after(policy.epoch, tick)

        self.sim.call_after(policy.epoch, tick)

    # -- topology ------------------------------------------------------------

    def app_nodes(self) -> List[AppNode]:
        """Every node with an application endpoint (initiator included)."""
        return [self.initiator, *self.disseminators, *self.consumers]

    def all_nodes(self) -> List:
        """Every node including the coordinator."""
        return [self.coordinator, *self.app_nodes()]

    @property
    def population(self) -> int:
        """Number of application endpoints in the group."""
        return len(self.app_nodes())

    # -- orchestration ------------------------------------------------------------

    def setup(self, settle: float = 2.0, eager_join: Optional[bool] = None) -> str:
        """Activate the gossip interaction and subscribe every node.

        Mirrors Figure 1: the initiator activates at the coordinator, every
        app endpoint subscribes, and the initiator refreshes its peer view
        once the subscriber list is populated.  ``eager_join`` makes the
        disseminators register immediately rather than on first message --
        required by the pull-family styles (defaults to exactly that).

        Returns the activity id.
        """
        if self._setup_done:
            if self.activity_id is None:
                raise RuntimeError("previous setup did not complete")
            return self.activity_id
        self._setup_done = True

        ready: List[str] = []
        for _ in range(5):  # activation is control traffic: retry on loss
            self.initiator.activate(
                self.coordinator.activation_address,
                parameters=self.activation_parameters,
                on_ready=lambda engine: ready.append(engine.activity_id),
            )
            self.run_for(settle)
            if ready:
                break
        if not ready:
            raise RuntimeError("activation did not complete; is the coordinator up?")
        self.activity_id = ready[0]

        acked: set = set()
        pending = [*self.disseminators, *self.consumers]
        for _ in range(5):  # subscriptions retried until acknowledged
            for node in pending:
                node.subscribe(
                    self.coordinator.subscription_address,
                    self.activity_id,
                    on_reply=lambda _context, _value, name=node.name: acked.add(name),
                )
            self.run_for(settle)
            pending = [node for node in pending if node.name not in acked]
            if not pending:
                break

        style = self._style()
        if eager_join is None:
            eager_join = style is not GossipStyle.PUSH
        if eager_join:
            engine = self.initiator.activities[self.activity_id]
            for node in self.disseminators:
                node.gossip_layer.join(engine.context, PROTOCOL_DISSEMINATOR)
            self.run_for(settle)

        # The initiator registered before anyone subscribed; refresh so its
        # first fanout has real targets.  Retried: the refresh reply rides
        # the same lossy fabric.
        engine = self.initiator.activities[self.activity_id]
        for _ in range(5):
            engine.refresh_view()
            self.run_for(settle)
            if engine.view:
                break
        return self.activity_id

    def _style(self) -> GossipStyle:
        style = self.activation_parameters.get("style")
        return GossipStyle(style) if style else GossipStyle.PUSH

    def publish(self, value: Any) -> str:
        """Disseminate one data item from the initiator."""
        if self.activity_id is None:
            raise RuntimeError("call setup() before publish()")
        with use_hub(self.hub):
            return self.initiator.publish(self.activity_id, self.action, value)

    def run_for(self, duration: float) -> None:
        """Advance simulated time by ``duration`` seconds.

        Runs under :func:`~repro.obs.hub.use_hub` so hub-less call sites
        (the envelope codec) attribute wire costs to this group's hub.
        """
        with use_hub(self.hub):
            self.sim.run_until(self.sim.now + duration)

    # -- measurements -----------------------------------------------------------------

    def receivers(self, gossip_id: str) -> List[AppNode]:
        """Nodes (other than the initiator) whose app saw the item."""
        return [
            node
            for node in self.app_nodes()
            if node is not self.initiator and node.has_delivered(gossip_id)
        ]

    def delivered_fraction(self, gossip_id: str) -> float:
        """Fraction of non-initiator app endpoints that received the item."""
        others = self.population - 1
        if others <= 0:
            return 1.0
        return len(self.receivers(gossip_id)) / others

    def is_atomic(self, gossip_id: str) -> bool:
        """True when every app endpoint received the item."""
        return self.delivered_fraction(gossip_id) >= 1.0

    def delivery_times(self, gossip_id: str) -> List[float]:
        """First-delivery times across receiving nodes."""
        times = []
        for node in self.app_nodes():
            if node is self.initiator:
                continue
            when = node.delivery_time(gossip_id)
            if when is not None:
                times.append(when)
        return times

    def message_counts(self) -> Dict[str, int]:
        """Network-level counters (sent / delivered / dropped...)."""
        return self.metrics.counters()

    def duplicate_deliveries(self, gossip_id: str) -> int:
        """App-level duplicate receipts of one item (consumers have no
        dedup layer, so this measures the duplication cost of gossip)."""
        duplicates = 0
        for node in self.app_nodes():
            count = sum(
                1 for delivery in node.deliveries if delivery.gossip_id == gossip_id
            )
            if count > 1:
                duplicates += count - 1
        return duplicates

    def __repr__(self) -> str:
        return (
            f"GossipGroup(n={self.population}, activity={self.activity_id!r}, "
            f"now={self.sim.now:.3f})"
        )
