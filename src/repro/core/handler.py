"""The gossip layer as a SOAP handler -- the paper's deployment story.

    "for a Disseminator it will require configuring an additional handler,
    the gossip layer, in the middleware stack, which intercepts the
    outgoing message and re-routes it to selected destinations. [...] Upon
    arrival, the message is again intercepted by the gossip layer in the
    middleware stack.  If this is an unknown gossip interaction, it
    registers itself with the Registration service, thus obtaining gossip
    targets to which it will forward the message."  (Section 3)

:class:`GossipLayer` implements exactly that: it watches inbound messages
for the ``Gossip`` header, auto-joins unknown activities via the
``CoordinationContext`` header, dedups, forwards, and lets fresh messages
continue up the stack so the application sees a plain invocation.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.core.batch import (
    BatchError,
    batch_has_control,
    is_batch_frame,
    scan_batch_activity,
    scan_batch_control,
    scan_batch_holder,
    split_batch,
)
from repro.core.engine import (
    ADVERTISE_ACTION,
    FEEDBACK_ACTION,
    PROTOCOL_DISSEMINATOR,
    PULL_ACTION,
    PULL_RESPONSE_ACTION,
    GossipEngine,
)
from repro.core.message import (
    GossipHeader,
    scan_gossip_message_id,
    scan_gossip_message_ids,
)
from repro.core.overload import OverloadPolicy, TokenBucket, threshold_for
from repro.core.params import GossipParams
from repro.core.peers import PeerSelector
from repro.core.scheduling import Scheduler
from repro.obs.hub import hub_of
from repro.soap.handler import Handler, MessageContext
from repro.soap.runtime import SoapRuntime
from repro.wscoord.context import CoordinationContext


class GossipLayer(Handler):
    """Per-node gossip middleware: engine registry plus the intercept hook.

    Args:
        runtime: the node's SOAP runtime (the layer should also be added to
            ``runtime.chain``; :func:`install_gossip_layer` does both).
        scheduler: timers/clock for the engines.
        app_address: the node's application endpoint address -- the
            participant identity used when auto-registering.
        rng: random stream for peer selection.
        auto_join: when True (Disseminator behaviour), unknown gossip
            interactions trigger registration; when False the node behaves
            like an unchanged Consumer that happens to have the layer
            installed (messages pass through with dedup only).
        default_params: parameters used before the coordinator responds.
        selector: peer-selection strategy shared by created engines.
    """

    def __init__(
        self,
        runtime: SoapRuntime,
        scheduler: Scheduler,
        app_address: str,
        rng: Optional[random.Random] = None,
        auto_join: bool = True,
        default_params: Optional[GossipParams] = None,
        selector: Optional[PeerSelector] = None,
        view_provider=None,
        health=None,
        durability=None,
        overload: Optional[OverloadPolicy] = None,
        telemetry=None,
    ) -> None:
        self.runtime = runtime
        self.scheduler = scheduler
        self.app_address = app_address
        self.rng = rng if rng is not None else random.Random()
        self.auto_join = auto_join
        self.default_params = default_params
        self.selector = selector
        # Optional node-wide peer-health record; engines created by this
        # layer gossip in degraded mode when it is set.
        self.health = health
        # Optional decentralized mode: engines draw their peer view from
        # this callable (peer sampling / WS-Membership) instead of the
        # coordinator's RegisterResponse.
        self.view_provider = view_provider
        # Optional crash recovery: a DurabilityPolicy makes every engine
        # keep a GossipLog, and prepare_restart/rejoin drive the
        # crash-recovery protocol (docs/RESILIENCE.md).
        self.durability = durability
        # Optional live telemetry plane: engines created by this layer
        # stamp wire-level trace context on publications and account
        # sampled frames on delivery (docs/OBSERVABILITY.md).
        self.telemetry = telemetry
        self._engines: Dict[str, GossipEngine] = {}
        # Observability: wire/batch stat groups of the hub behind this
        # node's metrics sink.
        obs = hub_of(runtime.metrics)
        self._wire_stats = obs.wire
        self._batch_stats = obs.batch
        self._overload_stats = obs.overload
        self._hub = obs
        # Overload protection: the bounded ingest queue + its shed ladder
        # (docs/RESILIENCE.md, "Overload and backpressure").  With
        # ``overload=None`` the queue machinery only engages when a
        # throttle (slow-consumer fault) is active -- and then the queue
        # is *unbounded*, which is exactly the collapse the shed-off
        # ablation in bench_overload demonstrates.
        self.overload = overload
        self._ingest_queue: Deque[Tuple[bytes, Optional[str]]] = deque()
        self._ingest_bucket: Optional[TokenBucket] = None
        self._ingest_overloaded = False
        self._draining = False
        self._drain_scheduled = False
        # Receive-side fast path: drop already-seen gossip messages with a
        # byte scan, before the runtime pays for the full XML parse.
        runtime.add_preparse_gate(self.preparse_gate)

    # -- engine registry ------------------------------------------------------

    def engine_for(self, activity_id: str) -> Optional[GossipEngine]:
        """The engine for an activity, or ``None`` when not joined."""
        return self._engines.get(activity_id)

    def engines(self) -> List[GossipEngine]:
        """Every engine this layer manages."""
        return list(self._engines.values())

    def create_engine(
        self,
        context: CoordinationContext,
        params: Optional[GossipParams] = None,
    ) -> GossipEngine:
        """Create (or return the existing) engine for an activity."""
        existing = self._engines.get(context.identifier)
        if existing is not None:
            return existing
        log = None
        if self.durability is not None:
            log = self.durability.make_log(
                f"{self.app_address}:{context.identifier}",
                stats=hub_of(self.runtime.metrics).recovery,
            )
        engine = GossipEngine(
            runtime=self.runtime,
            scheduler=self.scheduler,
            context=context,
            app_address=self.app_address,
            params=params if params is not None else self.default_params,
            rng=self.rng,
            selector=self.selector,
            view_provider=self.view_provider,
            health=self.health,
            log=log,
            durability=self.durability,
            overload=self.overload,
            pressure_provider=self.ingest_pressure if self.overload else None,
            telemetry=self.telemetry,
        )
        self._engines[context.identifier] = engine
        return engine

    def join(
        self,
        context: CoordinationContext,
        protocol: str = PROTOCOL_DISSEMINATOR,
        params: Optional[GossipParams] = None,
        register: bool = True,
    ) -> GossipEngine:
        """Explicitly join an activity (create engine + register).

        ``register=False`` is the decentralized mode: no coordinator
        round trip -- the engine relies on its ``view_provider`` and the
        periodic rounds start immediately.
        """
        engine = self.create_engine(context, params=params)
        if register:
            if not engine.registered and not engine.register_pending:
                engine.register(protocol)
        else:
            engine.start_periodic_rounds()
        return engine

    # -- crash recovery -------------------------------------------------------

    def prepare_restart(
        self,
        amnesia: bool = True,
        on_replayed: Optional[Callable[[str], None]] = None,
    ) -> int:
        """Reset every engine to post-crash state (see
        :meth:`GossipEngine.prepare_restart`); returns total messages
        replayed from durable logs."""
        # Whatever was queued for ingest died with the process.
        self._ingest_queue.clear()
        self._ingest_overloaded = False
        self._drain_scheduled = False
        self._draining = False
        replayed = 0
        for engine in self._engines.values():
            replayed += engine.prepare_restart(
                amnesia=amnesia, on_replayed=on_replayed
            )
        return replayed

    def rejoin(self, protocol: Optional[str] = None) -> None:
        """Run the rejoin protocol on every engine after a restart.  Each
        engine re-registers as whatever it was before the crash unless
        ``protocol`` overrides that."""
        for engine in self._engines.values():
            engine.rejoin(protocol)

    # -- the bounded ingest queue (overload protection) -------------------------

    def throttle(self, rate: float) -> None:
        """Cap this node's inbound processing to ``rate`` frames/second.

        The slow-consumer model behind :meth:`FaultPlan.throttle_at
        <repro.simnet.faults.FaultPlan.throttle_at>`: arrivals past the
        rate are queued (bounded and shed-laddered with an
        :class:`~repro.core.overload.OverloadPolicy`; unbounded without
        one) and drained on a paced timer.  One token covers one wire
        frame -- a batch and a singleton cost the same slot.
        """
        self._ingest_bucket = TokenBucket(rate, 1.0)

    def unthrottle(self) -> None:
        """Remove the processing-rate cap and drain any backlog."""
        self._ingest_bucket = None
        self._schedule_drain()

    def ingest_pressure(self) -> float:
        """Ingest-queue fill fraction in ``[0, 1]``; 0.0 without a policy."""
        if self.overload is None:
            return 0.0
        return min(1.0, len(self._ingest_queue) / self.overload.ingest_capacity)

    def _ingest_class(self, data: bytes) -> str:
        """Classify a wire frame onto the shed ladder with byte scans only.

        Duplicate rumor payloads count as ``digest`` (re-advertisements of
        something we already have -- the cheapest rung, exactly what the
        ladder sheds first).
        """
        if is_batch_frame(data):
            # A control-only batch carries digests/ads/feedback; any
            # carried rumor makes the whole frame a payload.
            return "digest" if scan_gossip_message_id(data) is None else "payload"
        if PULL_RESPONSE_ACTION.encode() in data:
            return "pull"
        if ADVERTISE_ACTION.encode() in data or (
            PULL_ACTION.encode() + b"<"
        ) in data:
            return "digest"
        if FEEDBACK_ACTION.encode() in data:
            return "feedback"
        message_id = scan_gossip_message_id(data)
        if message_id is not None and self._engine_knowing(message_id) is not None:
            return "digest"
        return "payload"

    def _ingest_gate(self, data: bytes, source: Optional[str]) -> bool:
        """Admit, queue, or shed one arriving frame (the gate is engaged
        only while a throttle is active or a backlog remains)."""
        now = self.scheduler.now
        if not self._ingest_queue and (
            self._ingest_bucket is None or self._ingest_bucket.admit(now)
        ):
            if self.overload is not None:
                self._overload_stats.admitted += 1
            return self._preparse_classify(data, source)
        policy = self.overload
        if policy is not None:
            pressure = self.ingest_pressure()
            if not self._ingest_overloaded and pressure >= policy.high_watermark:
                self._ingest_overloaded = True
                self._overload_stats.pressure_highs += 1
            elif self._ingest_overloaded and pressure < policy.low_watermark:
                self._ingest_overloaded = False
            effective = pressure
            if self._ingest_overloaded and effective < policy.high_watermark:
                effective = policy.high_watermark
            shed_class = self._ingest_class(data)
            if effective >= threshold_for(policy, shed_class):
                self._overload_stats.count_shed(shed_class)
                self.runtime.metrics.counter(f"gossip.shed.{shed_class}").inc()
                return False
            if len(self._ingest_queue) >= policy.ingest_capacity:
                # The bound is absolute: whatever the class, nothing
                # queues past it (this is the memory guarantee).
                self._overload_stats.count_shed("payload")
                self.runtime.metrics.counter("gossip.shed.payload").inc()
                return False
        self._ingest_queue.append((data, source))
        self._overload_stats.throttled += 1
        depth = len(self._ingest_queue)
        peak = self._hub.gauge("overload.ingest-queue-peak")
        if depth > peak.value:
            peak.set(depth)
        self._schedule_drain()
        return False

    def _schedule_drain(self) -> None:
        if self._drain_scheduled or not self._ingest_queue:
            return
        self._drain_scheduled = True
        delay = 0.0
        if self._ingest_bucket is not None:
            delay = self._ingest_bucket.retry_after(self.scheduler.now)
        self.scheduler.call_after(delay, self._drain_ingest)

    def _drain_ingest(self) -> None:
        """Process queued frames as the pacing bucket allows."""
        self._drain_scheduled = False
        while self._ingest_queue:
            if self._ingest_bucket is not None and not self._ingest_bucket.admit(
                self.scheduler.now
            ):
                break
            data, source = self._ingest_queue.popleft()
            if self.overload is not None:
                self._overload_stats.admitted += 1
            self._draining = True
            try:
                self.runtime.receive(data, source=source)
            finally:
                self._draining = False
        self._schedule_drain()

    # -- the pre-parse dedup gate ---------------------------------------------------

    def preparse_gate(self, data: bytes, source: Optional[str]) -> bool:
        """Drop wire bytes whose gossip message id we have already seen.

        A cheap byte scan extracts the ``Gossip`` header's ``MessageId``;
        if any engine's store knows the identity, the message is consumed
        here -- no XML parse, no handler chain -- with the same observable
        behaviour as the post-parse duplicate branch.  A failed scan (no
        gossip header, unusual id) always passes the message through.
        Batch frames are unpacked here too -- see :meth:`_ingest_batch`.
        When a throttle or backlog is in force, arrivals detour through
        the bounded ingest queue first (:meth:`_ingest_gate`).
        """
        if not self._draining and (
            self._ingest_bucket is not None or self._ingest_queue
        ):
            return self._ingest_gate(data, source)
        return self._preparse_classify(data, source)

    def _preparse_classify(self, data: bytes, source: Optional[str]) -> bool:
        """The original gate body: dedup scan + batch unpack."""
        if is_batch_frame(data):
            return self._ingest_batch(data, source)
        message_id = scan_gossip_message_id(data)
        if message_id is None:
            return True
        for engine in self._engines.values():
            if message_id in engine.store:
                self._wire_stats.dedup_preparse_hits += 1
                self.runtime.metrics.counter("gossip.dedup-preparse").inc()
                engine.on_duplicate_preparse(message_id, source)
                return False
        return True

    def _ingest_batch(self, data: bytes, source: Optional[str]) -> bool:
        """Unpack a batch frame at the byte level.

        Fast paths, in order: drop the *whole* batch when every carried
        rumor is already known (one scan, zero parses); otherwise slice it
        into legacy frames and feed each through the normal receive path,
        then apply any piggybacked control sections.  Returns False when
        consumed here; True falls through to the full XML parse and the
        gossip service's ``Batch`` operation (the robust fallback).
        """
        try:
            frames = split_batch(data)
        except BatchError:
            self.runtime.metrics.counter("gossip.batch-unsplittable").inc()
            return True
        self._batch_stats.batches_received += 1
        has_control = batch_has_control(data)
        if frames and not has_control:
            message_ids = scan_gossip_message_ids(data)
            if len(message_ids) == len(frames):
                owners = []
                for message_id in message_ids:
                    owner = self._engine_knowing(message_id)
                    if owner is None:
                        break
                    owners.append((message_id, owner))
                if len(owners) == len(message_ids):
                    self._batch_stats.batches_skipped_preparse += 1
                    self._wire_stats.dedup_preparse_hits += len(message_ids)
                    self.runtime.metrics.counter("gossip.dedup-preparse").inc(
                        len(message_ids)
                    )
                    for message_id, owner in owners:
                        owner.on_duplicate_preparse(message_id, source)
                    return False
        for frame in frames:
            self._batch_stats.rumors_unpacked += 1
            self.runtime.receive(frame, source=source)
        if has_control:
            self._apply_batch_control(data, source)
        return False

    def _engine_knowing(self, message_id: str) -> Optional[GossipEngine]:
        for engine in self._engines.values():
            if message_id in engine.store:
                return engine
        return None

    def _apply_batch_control(self, data: bytes, source: Optional[str]) -> None:
        control = scan_batch_control(data)
        if control is None or control.empty():
            return
        activity = scan_batch_activity(data)
        holder = scan_batch_holder(data)
        engine = self._engines.get(activity) if activity else None
        if engine is None or holder is None:
            # Control sections only matter between joined peers; a node
            # that has not joined yet auto-joins via the rumor frames.
            self.runtime.metrics.counter("gossip.batch-control-dropped").inc()
            return
        engine.on_batch_control(control, holder, source)

    # -- the intercept hook --------------------------------------------------------

    def on_inbound(self, context: MessageContext) -> bool:
        """The intercept hook: dedup, auto-join, forward, pass fresh through."""
        try:
            header = GossipHeader.from_envelope(context.envelope)
        except ValueError:
            self.runtime.metrics.counter("gossip.malformed-header").inc()
            return False
        if header is None:
            return True  # not a gossip message; pass through untouched

        engine = self._engines.get(header.activity)
        if engine is None:
            if not self.auto_join:
                # Consumer behaviour: deliver, never forward.
                self.runtime.metrics.counter("gossip.passthrough").inc()
                return True
            engine = self._auto_join(context)
            if engine is None:
                return True

        fresh = engine.on_gossip(context.envelope, header, source=context.source)
        return fresh

    def _auto_join(self, context: MessageContext) -> Optional[GossipEngine]:
        """Join an unknown gossip interaction from its context header."""
        try:
            coordination = CoordinationContext.from_envelope(context.envelope)
        except ValueError:
            coordination = None
        if coordination is None:
            self.runtime.metrics.counter("gossip.no-context").inc()
            return None
        self.runtime.metrics.counter("gossip.auto-join").inc()
        return self.join(coordination, register=self.view_provider is None)
