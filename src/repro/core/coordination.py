"""The gossip coordination type plugged into WS-Coordination.

The coordinator "knows the entire list of subscribers, as well as those
that are participating in gossiping.  It is thus capable of providing
adequate parameter configurations and peers for each gossip round"
(paper Section 3).  :class:`GossipCoordinationProtocol` implements that:
on registration it hands back

* the activity's :class:`~repro.core.params.GossipParams` -- either the
  configured ones or, in auto-tune mode, fanout/rounds derived from the
  current population via :mod:`repro.core.analysis`;
* a uniform random peer sample drawn from every known participant.
"""

from __future__ import annotations

import dataclasses
import math
import random
from typing import Any, Dict, Optional

from repro.core.analysis import (
    fanout_for_atomicity_under_faults,
    rounds_for_coverage,
)
from repro.core.params import GossipParams, ParamError
from repro.soap import namespaces as ns
from repro.soap.fault import sender_fault
from repro.wscoord.coordinator import Activity, CoordinationProtocol, Participant

GOSSIP_COORDINATION_TYPE = ns.WSGOSSIP_COORD

_PARAMS_KEY = "gossip.params"
_AUTO_TUNE_KEY = "gossip.auto_tune"
_TARGET_KEY = "gossip.target_reliability"
_EXPECTED_LOSS_KEY = "gossip.expected_loss"


class GossipCoordinationProtocol(CoordinationProtocol):
    """Coordinator-side behaviour of gossip activities.

    Args:
        rng: seeded stream for peer sampling.
        defaults: baseline parameters for new activities.
        auto_tune: when True, fanout/rounds grow with the registered
            population to keep atomic delivery at ``target_reliability``.
        target_reliability: probability that a dissemination reaches every
            participant (auto-tune mode).
    """

    coordination_type = GOSSIP_COORDINATION_TYPE

    def __init__(
        self,
        rng: Optional[random.Random] = None,
        defaults: Optional[GossipParams] = None,
        auto_tune: bool = True,
        target_reliability: float = 0.99,
    ) -> None:
        if not 0.0 < target_reliability < 1.0:
            raise ValueError(
                f"target_reliability must be in (0, 1): {target_reliability!r}"
            )
        self.rng = rng if rng is not None else random.Random()
        self.defaults = defaults if defaults is not None else GossipParams()
        self.auto_tune = auto_tune
        self.target_reliability = target_reliability

    # -- CoordinationProtocol hooks ------------------------------------------

    def on_create(self, activity: Activity, parameters: Dict[str, Any]) -> None:
        params = self._params_from(parameters)
        activity.properties[_PARAMS_KEY] = params
        activity.properties[_AUTO_TUNE_KEY] = bool(
            parameters.get("auto_tune", self.auto_tune)
        )
        activity.properties[_TARGET_KEY] = float(
            parameters.get("target_reliability", self.target_reliability)
        )
        expected_loss = float(parameters.get("expected_loss", 0.0))
        if not 0.0 <= expected_loss < 1.0:
            raise sender_fault(f"expected_loss must be in [0, 1): {expected_loss!r}")
        activity.properties[_EXPECTED_LOSS_KEY] = expected_loss

    def on_register(
        self, activity: Activity, participant: Participant
    ) -> Dict[str, Any]:
        params = self.activity_params(activity)
        peers = self._peer_sample(activity, participant, params)
        return {"params": params.to_value(), "peers": peers}

    # -- parameter management ----------------------------------------------------

    def activity_params(self, activity: Activity) -> GossipParams:
        """Current parameters, auto-tuned to the live population size."""
        params: GossipParams = activity.properties[_PARAMS_KEY]
        if not activity.properties.get(_AUTO_TUNE_KEY, False):
            return params
        population = len(activity.participants)
        if population < 2:
            return params
        target = activity.properties.get(_TARGET_KEY, self.target_reliability)
        expected_loss = activity.properties.get(_EXPECTED_LOSS_KEY, 0.0)
        fanout = max(
            params.fanout,
            int(
                math.ceil(
                    fanout_for_atomicity_under_faults(
                        population, target, loss_rate=expected_loss
                    )
                )
            ),
        )
        rounds = max(params.rounds, rounds_for_coverage(population, fanout))
        tuned = dataclasses.replace(
            params,
            fanout=fanout,
            rounds=rounds,
            peer_sample_size=max(params.peer_sample_size, 2 * fanout),
        )
        activity.properties[_PARAMS_KEY] = tuned
        return tuned

    def _params_from(self, parameters: Dict[str, Any]) -> GossipParams:
        try:
            return GossipParams.from_activation(parameters, base=self.defaults)
        except ParamError as exc:
            # The fault names the offending key, so a misconfigured
            # activation is diagnosable from the initiator side.
            raise sender_fault(
                f"invalid gossip parameter {exc.key!r}: {exc}"
            ) from exc
        except (TypeError, ValueError) as exc:
            raise sender_fault(f"invalid gossip parameters: {exc}") from exc

    def _peer_sample(
        self, activity: Activity, participant: Participant, params: GossipParams
    ) -> list:
        """Uniform sample of other participants' application addresses.

        Uses the activity's distinct-address index: registration happens
        per node, so materializing and sorting the full address set here
        would make N registrations cost O(N^2) overall.
        """
        me = participant.endpoint.address
        addresses = activity.distinct_addresses()
        size = params.peer_sample_size
        if len(addresses) <= 256:
            # Small activity: sort the filtered view and sample from it --
            # bit-identical to the historical behaviour (seeded runs keep
            # their outcomes) and cheap at this scale.
            view = sorted(address for address in addresses if address != me)
            if len(view) <= size:
                return view
            return self.rng.sample(view, size)
        # Sample one extra so dropping ourselves still leaves `size` picks.
        sample = self.rng.sample(addresses, size + 1)
        view = [address for address in sample if address != me]
        return view[:size]
