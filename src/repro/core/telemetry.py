"""Telemetry policy: the live trace-context plane's knobs.

``GossipConfig(telemetry=...)`` turns on wire-level trace context: every
published rumor may carry a compact ``Trace`` section (origin id, publish
timestamp, hop counter, sampling flag) that receivers use to reconstruct
per-hop latency and infection curves on *real* transports, the same way
the causal tracer does inside the simulator.

Everything here is strictly opt-in: with ``telemetry=None`` (the default)
no trace section is emitted and the wire trace stays byte-for-byte
identical (gated by ``tests/integration/test_trace_identity.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict

from repro.core.params import ParamError, _convert

#: Delivery SLO the burn-rate monitor defends when the policy leaves
#: ``slo_delivery`` at its default -- matches ``AdaptivePolicy.slo_delivery``.
DEFAULT_SLO_DELIVERY = 0.99


@dataclass(frozen=True)
class TelemetryPolicy:
    """Validated knobs for the live telemetry plane.

    Attributes:
        sample_rate: probability that a publication is path-sampled (head
            sampling, decided once at publish).  Sampled publications carry
            the ``Trace`` section on every frame and are measured hop by
            hop; unsampled publications carry *no* trace section at all, so
            the wire and parse cost of telemetry scales with the sample
            rate.  The default 0.1 keeps the N=1000 drain overhead under
            the 5% budget ``make bench-telemetry-smoke`` gates; raise it to
            1.0 for full-fidelity runs (small meshes, tests).
        max_path_length: upper bound on the hop counter a receiver trusts;
            a sampled frame whose path exceeds it is counted
            (``telemetry.path_clamped``) and skipped rather than polluting
            the per-hop histogram with a runaway denominator.
        clock_skew_guard: seconds of *negative* end-to-end latency tolerated
            before a sample is discarded as clock skew
            (``telemetry.skew_guarded``).  Small negative readings inside
            the guard clamp to zero.
        epoch: seconds between telemetry rollup ticks (windowed counter
            rates + SLO burn-rate sampling) when the group runs its own
            ticker.
        slo_delivery: delivery-fraction SLO the burn-rate monitor burns
            against.
        window: seconds of history the SLO burn-rate window spans.
    """

    sample_rate: float = 0.1
    max_path_length: int = 32
    clock_skew_guard: float = 2.0
    epoch: float = 2.0
    slo_delivery: float = DEFAULT_SLO_DELIVERY
    window: float = 30.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.sample_rate <= 1.0:
            raise ParamError(
                "sample_rate",
                f"sample_rate must be in [0, 1]: {self.sample_rate!r}",
            )
        if self.max_path_length < 1:
            raise ParamError(
                "max_path_length",
                f"max_path_length must be >= 1: {self.max_path_length!r}",
            )
        if self.clock_skew_guard < 0:
            raise ParamError(
                "clock_skew_guard",
                f"clock_skew_guard must be non-negative: {self.clock_skew_guard!r}",
            )
        if self.epoch <= 0:
            raise ParamError("epoch", f"epoch must be positive: {self.epoch!r}")
        if not 0.0 < self.slo_delivery < 1.0:
            raise ParamError(
                "slo_delivery",
                f"slo_delivery must be in (0, 1): {self.slo_delivery!r}",
            )
        if self.window <= 0:
            raise ParamError("window", f"window must be positive: {self.window!r}")

    def to_value(self) -> Dict[str, Any]:
        """Serialize to a plain map (config dumps, wire activation)."""
        return {
            "sample_rate": self.sample_rate,
            "max_path_length": self.max_path_length,
            "clock_skew_guard": self.clock_skew_guard,
            "epoch": self.epoch,
            "slo_delivery": self.slo_delivery,
            "window": self.window,
        }

    @classmethod
    def from_value(cls, value: Dict[str, Any]) -> "TelemetryPolicy":
        """Parse from a plain map, raising :class:`ParamError` with the
        offending key on any malformed entry."""
        if not isinstance(value, dict):
            raise ParamError(
                "telemetry", f"telemetry policy map expected, got {value!r}"
            )
        base = cls()
        return cls(
            sample_rate=_convert(
                value, "sample_rate", float, default=base.sample_rate
            ),
            max_path_length=_convert(
                value, "max_path_length", int, default=base.max_path_length
            ),
            clock_skew_guard=_convert(
                value, "clock_skew_guard", float, default=base.clock_skew_guard
            ),
            epoch=_convert(value, "epoch", float, default=base.epoch),
            slo_delivery=_convert(
                value, "slo_delivery", float, default=base.slo_delivery
            ),
            window=_convert(value, "window", float, default=base.window),
        )
