"""WS-Gossip: the paper's contribution.

The framework layers epidemic dissemination over the SOAP stack:

* :mod:`repro.core.params`       -- gossip parameters (fanout ``f``,
  rounds ``r``, period, style).
* :mod:`repro.core.analysis`     -- epidemic math used to configure ``f``
  and ``r`` for a target reliability (Eugster et al. 2004).
* :mod:`repro.core.message`      -- the ``Gossip`` SOAP header block.
* :mod:`repro.core.buffer`       -- per-activity message store and dedup.
* :mod:`repro.core.peers`        -- peer-selection strategies.
* :mod:`repro.core.health`       -- per-peer failure suspicion feeding
  degraded-mode selection and fanout compensation (docs/RESILIENCE.md).
* :mod:`repro.core.control`      -- the adaptive controller: self-tuning
  fanout/rounds/mode/batching against a delivery SLO (docs/RESILIENCE.md).
* :mod:`repro.core.engine`       -- node-local protocol engine implementing
  the gossip styles (push, pull, push-pull, anti-entropy).
* :mod:`repro.core.handler`      -- the gossip layer as a SOAP handler
  ("an additional handler in the middleware stack", paper Section 3).
* :mod:`repro.core.service`      -- the gossip port type (digest/pull ops).
* :mod:`repro.core.coordination` -- the gossip coordination type plugged
  into WS-Coordination.
* :mod:`repro.core.subscription` -- the coordinator's subscription list.
* :mod:`repro.core.roles`        -- Initiator / Disseminator / Consumer /
  Coordinator node classes (paper Figure 1).
* :mod:`repro.core.aggregation`  -- push-sum gossip aggregation.
* :mod:`repro.core.peersampling` -- Cyclon-style partial views for the
  distributed-coordinator mode.
* :mod:`repro.core.decentralized` -- the full distributed-coordinator
  deployment (WS-Membership views, no central subscriber list).
* :mod:`repro.core.ordering`     -- optional per-origin FIFO delivery.
* :mod:`repro.core.topics`       -- named topics over gossip activities.
* :mod:`repro.core.api`          -- the high-level ``GossipGroup`` facade.
"""

from repro.core.analysis import (
    atomic_delivery_probability,
    effective_fanout,
    expected_final_fraction,
    expected_rounds,
    fanout_for_atomicity,
    fanout_for_atomicity_under_faults,
    rounds_for_coverage,
)
from repro.core.api import GossipConfig, GossipGroup
from repro.core.control import AdaptiveController, AdaptivePolicy, ControlDecision
from repro.core.decentralized import DecentralizedGossipNode, DecentralizedGroup
from repro.core.engine import GossipEngine
from repro.core.health import HealthPolicy, PeerHealth
from repro.core.message import GossipHeader, GossipStyle
from repro.core.params import GossipParams, ParamError
from repro.core.peers import HealthAwareSelector
from repro.core.roles import (
    ConsumerNode,
    CoordinatorNode,
    DisseminatorNode,
    InitiatorNode,
)
from repro.core.store import (
    DurabilityPolicy,
    FileGossipLog,
    GossipLog,
    MemoryGossipLog,
    ReplayResult,
)

__all__ = [
    "AdaptiveController",
    "AdaptivePolicy",
    "ControlDecision",
    "ConsumerNode",
    "CoordinatorNode",
    "DecentralizedGossipNode",
    "DecentralizedGroup",
    "DisseminatorNode",
    "DurabilityPolicy",
    "FileGossipLog",
    "GossipConfig",
    "GossipEngine",
    "GossipLog",
    "MemoryGossipLog",
    "ReplayResult",
    "GossipGroup",
    "GossipHeader",
    "GossipParams",
    "GossipStyle",
    "HealthAwareSelector",
    "HealthPolicy",
    "InitiatorNode",
    "ParamError",
    "PeerHealth",
    "atomic_delivery_probability",
    "effective_fanout",
    "expected_final_fraction",
    "expected_rounds",
    "fanout_for_atomicity",
    "fanout_for_atomicity_under_faults",
    "rounds_for_coverage",
]
