"""The node-local gossip engine.

One :class:`GossipEngine` instance exists per (node, activity).  It owns
the activity's message store, peer view and parameters, and implements the
behaviour of every gossip style:

* **push**: a fresh message is immediately forwarded to ``fanout`` peers
  with a decremented round budget (infect-and-die rumor mongering).
* **pull**: no eager forwarding; every ``period`` the engine sends its
  digest to ``fanout`` random peers, which return the messages it lacks.
* **push-pull**: eager push plus the periodic pull as a repair path.
* **anti-entropy**: every ``period`` the engine reconciles bidirectionally
  with one random peer (digest exchange, then both sides complete).
* **lazy-push**: eager hops carry only message *identifiers* (Advertise);
  peers that lack the item Fetch it from the advertiser -- the
  Plumtree-style bandwidth optimization.
* **feedback**: re-forward each period while "hot"; duplicate feedback
  cools the rumor with probability ``stop_probability`` (Demers-style
  coin variant), bounded by the rounds cap.

The engine normally never *delivers* messages to the application itself:
delivery is the normal SOAP dispatch that continues after the gossip
handler lets a fresh message through -- which is how the paper keeps
Consumers unchanged.  The one exception is FIFO ordered mode
(``params.ordered``): the engine holds out-of-order arrivals back and
re-runs local dispatch when gaps close.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.batch import BatchControl, build_batch
from repro.core.buffer import MessageStore
from repro.core.message import (
    GossipHeader,
    GossipStyle,
    TraceContext,
    new_gossip_message_id,
    splice_forward,
    splice_hops,
)
from repro.core.ordering import FifoBuffer
from repro.core.overload import OverloadError, OverloadPolicy, threshold_for
from repro.core.params import GossipParams
from repro.core.peers import HealthAwareSelector, PeerSelector, UniformSelector
from repro.core.scheduling import Scheduler
from repro.core.store import DurabilityPolicy, GossipLog
from repro.core.telemetry import TelemetryPolicy
from repro.obs.hub import hub_of
from repro.soap import namespaces as ns
from repro.soap.envelope import Envelope
from repro.soap.handler import Direction, MessageContext
from repro.soap.runtime import SoapRuntime
from repro.transport.base import split_address
from repro.wsa.addressing import AddressingHeaders
from repro.wscoord.context import CoordinationContext

GOSSIP_ACTION = f"{ns.WSGOSSIP}/Gossip"
PULL_ACTION = f"{ns.WSGOSSIP}/Pull"
PULL_RESPONSE_ACTION = f"{ns.WSGOSSIP}/PullResponse"
DELIVER_ACTION = f"{ns.WSGOSSIP}/Deliver"
ADVERTISE_ACTION = f"{ns.WSGOSSIP}/Advertise"
FETCH_ACTION = f"{ns.WSGOSSIP}/Fetch"
FEEDBACK_ACTION = f"{ns.WSGOSSIP}/Feedback"

# Registration protocol identifiers (the "protocol" field of Register).
PROTOCOL_DISSEMINATOR = f"{ns.WSGOSSIP}/protocol/disseminator"
PROTOCOL_INITIATOR = f"{ns.WSGOSSIP}/protocol/initiator"
PROTOCOL_SUBSCRIBER = f"{ns.WSGOSSIP}/protocol/subscriber"

GOSSIP_SERVICE_PATH = "/gossip"


def gossip_address_of(app_address: str) -> str:
    """Derive a node's gossip port address from any of its app addresses.

    By framework convention every gossip-capable node mounts its gossip
    service at ``/gossip`` on the same base address.
    """
    scheme, authority, _ = split_address(app_address)
    return f"{scheme}://{authority}{GOSSIP_SERVICE_PATH}"


class GossipEngine:
    """Protocol state machine for one activity on one node.

    Args:
        runtime: the node's SOAP runtime.
        scheduler: timer/clock facade for the host (sim or threads).
        context: the activity's coordination context.
        app_address: the local application endpoint the activity targets
            (used for self-exclusion and as the registered participant).
        params: initial parameters; replaced by whatever the coordinator
            returns at registration.
        rng: the random stream for peer selection.
        selector: peer-selection strategy (uniform by default).
        on_params: optional hook invoked when the coordinator updates the
            parameters.
        view_provider: optional callable returning the current peer view;
            when set it replaces the coordinator-supplied ``view`` entirely
            -- this is the distributed-coordinator mode, fed by peer
            sampling or WS-Membership.
        health: optional :class:`~repro.core.health.PeerHealth`.  When
            set the engine gossips in degraded mode: target selection
            down-weights suspected peers, the effective fanout grows as
            the healthy pool shrinks, and inbound gossip counts as proof
            of life for its sender.
        log: optional :class:`~repro.core.store.GossipLog`.  When set the
            engine appends gossip-critical state changes to the WAL so a
            crashed node can be restarted without amnesia
            (docs/RESILIENCE.md, "Crash-recovery and rejoin").
        durability: the :class:`~repro.core.store.DurabilityPolicy`
            governing snapshot cadence and the rejoin catch-up bounds;
            defaults apply when a ``log`` is given without a policy.
    """

    def __init__(
        self,
        runtime: SoapRuntime,
        scheduler: Scheduler,
        context: CoordinationContext,
        app_address: str,
        params: Optional[GossipParams] = None,
        rng: Optional[random.Random] = None,
        selector: Optional[PeerSelector] = None,
        on_params: Optional[Callable[[GossipParams], None]] = None,
        view_provider: Optional[Callable[[], Sequence[str]]] = None,
        health=None,
        log: Optional[GossipLog] = None,
        durability: Optional[DurabilityPolicy] = None,
        overload: Optional[OverloadPolicy] = None,
        pressure_provider: Optional[Callable[[], float]] = None,
        telemetry: Optional[TelemetryPolicy] = None,
    ) -> None:
        self.runtime = runtime
        self.scheduler = scheduler
        self.context = context
        self.app_address = app_address
        self.params = params if params is not None else GossipParams()
        self.rng = rng if rng is not None else random.Random()
        self.health = health
        self.selector = selector if selector is not None else UniformSelector()
        if health is not None and not isinstance(self.selector, HealthAwareSelector):
            # Degraded-mode gossip: prefer unsuspected peers, whatever the
            # underlying strategy.
            self.selector = HealthAwareSelector(health, self.selector)
        self.store = MessageStore(self.params.buffer_capacity)
        self.view: List[str] = []
        self.view_provider = view_provider
        self.registered = False
        self.register_pending = False
        self._on_params = on_params
        self._periodic_started = False
        self._stopped = False
        # Messages that arrived before registration completed: the paper's
        # flow is register -> obtain targets -> forward, so fresh messages
        # wait here until the RegisterResponse delivers a peer view.
        self._pending_forwards: List[tuple] = []
        self._pending_limit = 128
        # Lazy push: remaining ad budget per advertised message id, plus
        # the ids we have already fetched but not yet received (avoids
        # duplicate fetches when several ads race ahead of the payload).
        self._ad_hops: Dict[str, int] = {}
        self._pending_fetch: set = set()
        # Feedback style: message id -> remaining hot rounds; a hot rumor
        # is re-forwarded every period until feedback cools it.
        self._hot: Dict[str, int] = {}
        # FIFO ordered mode: per-origin holdback and publication counter.
        self._fifo = FifoBuffer()
        self._publish_sequence = 0
        # Crash recovery: optional WAL + policy, and the rejoin state.
        # While ``_recovering`` the engine ingests and delivers but does
        # not eagerly forward -- it first catches up with healthy peers.
        self.log = log
        self.durability = (
            durability
            if durability is not None
            else (DurabilityPolicy() if log is not None else None)
        )
        self._recovering = False
        self._catch_up_rounds_left = 0
        self._last_protocol = PROTOCOL_DISSEMINATOR
        # Multi-rumor batching (params.max_batch_rumors > 1): outgoing
        # traffic is parked here and coalesced by a zero-delay flush event,
        # so everything a node emits within one simulated instant -- eager
        # payloads, advertisements, feedback, pull digests -- shares one
        # envelope per destination.  Fan-out entries are grouped by their
        # exclusion key and resolve to concrete targets at flush time, so
        # a whole burst shares one peer selection.
        self._outbox_fanout: Dict[tuple, List[bytes]] = {}
        self._outbox_direct: Dict[str, List[bytes]] = {}
        self._outbox_control: Dict[str, BatchControl] = {}
        self._flush_scheduled = False
        # Observability: the hub behind this node's metrics sink provides
        # the batch/recovery stat groups and the causal rumor tracer.
        obs = hub_of(runtime.metrics)
        self._batch_stats = obs.batch
        self._recovery_stats = obs.recovery
        self._control_stats = obs.control
        self._overload_stats = obs.overload
        self._tracer = obs.tracer
        # Live telemetry plane (docs/OBSERVABILITY.md, "Live telemetry").
        # ``None`` (the default) keeps every trace-context code path
        # dormant -- no Trace section is serialized and the wire bytes are
        # byte-for-byte what they were before this subsystem existed
        # (tests/integration/test_trace_identity).  The histograms are
        # bound eagerly so the receive path does a dict-free record.
        self.telemetry = telemetry
        if telemetry is not None:
            self._hop_latency = obs.histogram("telemetry.hop_latency_ms")
            self._e2e_latency = obs.histogram("telemetry.e2e_latency_ms")
            self._telemetry_samples = obs.counter("telemetry.samples")
            self._telemetry_skew = obs.counter("telemetry.skew_guarded")
            self._telemetry_clamped = obs.counter("telemetry.path_clamped")
        # Overload protection (docs/RESILIENCE.md, "Overload and
        # backpressure").  ``None`` (the default) keeps every overload
        # code path dormant -- the wire trace is guaranteed identical to
        # the pre-overload behaviour (tests/integration/test_trace_identity).
        # ``pressure_provider`` folds in external pressure (the layer's
        # bounded ingest queue) so one signal covers both directions.
        self.overload = overload
        self._pressure_provider = pressure_provider
        self._overloaded = False
        # Adaptive control: a hard ceiling on the *effective* fanout after
        # the health layer's degraded-mode boost.  ``None`` (the default)
        # preserves the PR 2 behaviour where ``HealthPolicy.boost_cap``
        # alone bounds the boost; the AdaptiveController sets it so its
        # own boost and the health boost can never compound past it.
        self.fanout_ceiling: Optional[int] = None

    @property
    def activity_id(self) -> str:
        return self.context.identifier

    @property
    def metrics(self):
        return self.runtime.metrics

    # -- registration -----------------------------------------------------------

    def register(
        self,
        protocol: str = PROTOCOL_DISSEMINATOR,
        max_attempts: int = 12,
        retry_timeout: float = 1.5,
    ) -> None:
        """Register with the activity's Registration service.

        The RegisterResponse delivers the coordinator-chosen parameters and
        a fresh peer sample ("adequate parameter configurations and peers
        for each gossip round", paper Section 3).  The exchange is retried
        up to ``max_attempts`` times: registration is control traffic that
        must survive the same lossy fabric the gossip rides on.
        """
        self.register_pending = True
        self._last_protocol = protocol
        attempt_state = {"sent": 0, "answered": False, "last_id": None}

        def on_reply(reply_context, value) -> None:
            attempt_state["answered"] = True
            self._on_register_reply(reply_context, value)

        def send_attempt() -> None:
            if attempt_state["answered"] or self._stopped:
                return
            # A retry supersedes the previous attempt: drop its callback so
            # abandoned attempts do not accumulate in the runtime.
            if attempt_state["last_id"] is not None:
                self.runtime.cancel_reply(attempt_state["last_id"])
            if attempt_state["sent"] >= max_attempts:
                self.register_pending = False
                self.metrics.counter("gossip.register.gave-up").inc()
                return
            attempt_state["sent"] += 1
            self.metrics.counter("gossip.register").inc()
            attempt_state["last_id"] = self.runtime.send(
                self.context.registration_service,
                f"{ns.WSCOORD}/Register",
                value={
                    "protocol": protocol,
                    "participant": self.app_address,
                    "metadata": {"gossip": gossip_address_of(self.app_address)},
                    "activity": self.activity_id,
                },
                on_reply=on_reply,
            )
            self.scheduler.call_after(retry_timeout, send_attempt)

        send_attempt()

    def _on_register_reply(self, reply_context, value) -> None:
        self.register_pending = False
        if not isinstance(value, dict):
            self.metrics.counter("gossip.register.failed").inc()
            return
        params_value = value.get("params")
        if isinstance(params_value, dict):
            try:
                self.params = GossipParams.from_value(params_value)
            except (KeyError, ValueError):
                self.metrics.counter("gossip.register.bad-params").inc()
        peers = value.get("peers")
        if isinstance(peers, list):
            self.view = [peer for peer in peers if isinstance(peer, str)]
        self.registered = True
        if self._on_params is not None:
            self._on_params(self.params)
        self._start_periodic_rounds()
        self._flush_pending_forwards()

    def _flush_pending_forwards(self) -> None:
        pending, self._pending_forwards = self._pending_forwards, []
        for data, header, source in pending:
            self._forward(Envelope.from_bytes(data), header, source)

    def refresh_view(self) -> None:
        """Re-register to obtain a fresh peer sample and parameters."""
        if not self._stopped:
            self.register()

    # -- publishing (Initiator role) ------------------------------------------------

    def publish(self, action: str, value, tag: Optional[str] = None) -> str:
        """Disseminate an application invocation; returns its gossip id.

        This is the Initiator's single notification: the engine builds the
        gossip headers and pushes to ``fanout`` peers; the epidemic does the
        rest.

        Raises:
            OverloadError: when an :class:`OverloadPolicy` is active and
                the node is at its hard limit -- backpressure on the
                publisher instead of unbounded queueing.
        """
        if self.overload is not None:
            pressure = self.overload_pressure
            if pressure >= 1.0:
                self._overload_stats.publish_rejected += 1
                self.metrics.counter("gossip.publish-rejected").inc()
                raise OverloadError(
                    "publish rejected: node overloaded",
                    pressure=pressure,
                    retry_after=self.overload.retry_after,
                )
        message_id = new_gossip_message_id()
        sequence = None
        if self.params.ordered:
            sequence = self._publish_sequence
            self._publish_sequence += 1
        trace = None
        if self.telemetry is not None:
            # Head sampling: the publish-time draw decides whether this
            # publication carries a trace section at all, so telemetry's
            # wire and parse cost scales with the sample rate instead of
            # taxing every frame.
            sample_rate = self.telemetry.sample_rate
            if sample_rate >= 1.0 or self.rng.random() < sample_rate:
                trace = TraceContext(
                    origin=self.app_address,
                    publish_ts=self.scheduler.now,
                    path=0,
                    sampled=True,
                )
        header = GossipHeader(
            activity=self.activity_id,
            message_id=message_id,
            origin=self.app_address,
            hops=self.params.rounds,
            style=self.params.style,
            sequence=sequence,
            trace=trace,
        )
        self.metrics.counter("gossip.publish").inc()
        if self._tracer.enabled:
            self._tracer.on_publish(
                message_id, self.app_address, self.scheduler.now,
                budget=self.params.rounds,
            )
        # Encode the invocation once; every fanout target and the message
        # store share the same wire bytes (the zero-copy fast path).
        data = self._publication_envelope(action, value, tag, header).to_bytes()
        if self.params.style in (GossipStyle.PUSH, GossipStyle.PUSH_PULL):
            if self.batching:
                # Park the frame; a burst of publications flushes as one
                # batched envelope per destination.
                self._enqueue_fanout(data, self.app_address, None)
            else:
                targets = self._select_targets(exclude=[self.app_address])
                for target in targets:
                    self.runtime.send_bytes(target, data)
                    self.metrics.counter("gossip.fanout-send").inc()
        # Pull-family and lazy styles: the payload waits at the origin;
        # peers pull digests or fetch advertised identifiers.
        # Remember our own message (so an echo is not treated as fresh) and
        # retain the wire bytes for pull serving.
        self.store.add(message_id, data, self.scheduler.now, self.app_address)
        self._log_message(message_id, data, self.app_address)
        if self.params.style is GossipStyle.LAZY_PUSH:
            self._advertise([message_id], self.params.rounds)
        elif self.params.style is GossipStyle.FEEDBACK:
            self._hot[message_id] = self.params.rounds
            self._forward_hot(message_id)
            self._log_append({"type": "hot", "id": message_id, "rounds": self.params.rounds})
        if self.params.ordered:
            # Our own publication counts toward the origin's sequence.
            self._fifo.offer(self.app_address, sequence, b"")
            self._log_append({"type": "pub_seq", "value": self._publish_sequence})
            self._log_fifo(self.app_address)
        return message_id

    def _publication_envelope(self, action, value, tag, header) -> Envelope:
        """Build the disseminated invocation envelope (encoded exactly once
        by the caller; the ``To`` names our own endpoint, and receivers
        dispatch by service path)."""
        import xml.etree.ElementTree as ET

        from repro.soap.serializer import to_element
        from repro.soap.runtime import _default_tag
        from repro.wsa.addressing import new_message_id

        if isinstance(value, ET.Element):
            body = value
        else:
            body = to_element(tag or _default_tag(action), value)
        envelope = Envelope(body=body)
        envelope.add_header(self.context.to_element())
        envelope.add_header(header.to_element())
        addressing = AddressingHeaders(
            to=self.app_address, action=action, message_id=new_message_id()
        )
        addressing.apply(envelope)
        return envelope

    # -- receiving -------------------------------------------------------------------

    def on_gossip(self, envelope: Envelope, header: GossipHeader, source: Optional[str]) -> bool:
        """Handle an incoming gossiped application message.

        Returns True when the message should be delivered locally now,
        False when it is consumed (duplicate, or held back for ordering --
        held messages are re-dispatched by the engine once in order).
        """
        if self.health is not None and source is not None:
            self.health.observe_alive(source)
        self._pending_fetch.discard(header.message_id)
        fresh = self.store.add(
            header.message_id,
            envelope.to_bytes(),
            self.scheduler.now,
            header.origin,
        )
        if not fresh:
            self.metrics.counter("gossip.duplicate").inc()
            if self._recovering:
                self._recovery_stats.redelivered_suppressed += 1
            if self.params.style is GossipStyle.FEEDBACK and source is not None:
                self._send_feedback(header.message_id, source)
            return False
        self.metrics.counter("gossip.fresh").inc()
        if self._tracer.enabled:
            self._tracer.on_deliver(
                header.message_id, self.app_address, self.scheduler.now,
                hops_left=header.hops,
            )
        if self.telemetry is not None and header.trace is not None:
            self._record_trace_sample(header.trace)
        self._log_message(header.message_id, envelope.to_bytes(), header.origin)
        if self._recovering:
            self._recovery_stats.fetched += 1
        if header.origin == self.app_address and header.sequence is not None:
            # Our own pre-crash publication came back via catch-up: never
            # reuse a sequence number the group may already have delivered.
            self._publish_sequence = max(
                self._publish_sequence, header.sequence + 1
            )
        # (duplicates that never reach here are dropped pre-parse by
        # on_duplicate_preparse -- keep the two paths in sync)
        self._propagate(envelope, header, source)
        if self.params.ordered and header.sequence is not None:
            return self._offer_ordered(envelope, header)
        return True

    def on_duplicate_preparse(self, message_id: str, source: Optional[str]) -> None:
        """Handle a duplicate identified by the pre-parse byte scan.

        Mirrors the duplicate branch of :meth:`on_gossip` exactly -- the
        message was consumed before any XML parse, but the observable
        protocol behaviour (duplicate accounting, feedback) is identical.
        """
        if self.health is not None and source is not None:
            self.health.observe_alive(source)
        self._pending_fetch.discard(message_id)
        self.metrics.counter("gossip.duplicate").inc()
        if self._recovering:
            self._recovery_stats.redelivered_suppressed += 1
        if self.params.style is GossipStyle.FEEDBACK and source is not None:
            self._send_feedback(message_id, source)

    def _propagate(self, envelope: Envelope, header: GossipHeader, source: Optional[str]) -> None:
        """Run the style's forwarding step for a fresh message."""
        if self._recovering:
            # A rejoining node first reconciles with healthy peers; eager
            # forwarding resumes once catch-up finishes (the catch-up
            # fetches would otherwise echo stale hops around the group).
            self.metrics.counter("gossip.forward-during-recovery-skipped").inc()
            return
        if self.params.style in (GossipStyle.PUSH, GossipStyle.PUSH_PULL):
            if self.has_view:
                self._forward(envelope, header, source)
            elif len(self._pending_forwards) < self._pending_limit:
                self.metrics.counter("gossip.forward-deferred").inc()
                self._pending_forwards.append(
                    (envelope.to_bytes(), header, source)
                )
        elif self.params.style is GossipStyle.LAZY_PUSH:
            budget = self._ad_hops.pop(header.message_id, header.hops)
            self._advertise([header.message_id], budget - 1)
        elif self.params.style is GossipStyle.FEEDBACK:
            # Become hot: forward now and keep re-forwarding each period
            # until feedback (or the rounds cap) cools the rumor.
            self._hot[header.message_id] = self.params.rounds
            self._log_append(
                {"type": "hot", "id": header.message_id, "rounds": self.params.rounds}
            )
            if self.has_view:
                self._forward_hot(header.message_id, source)

    def _offer_ordered(self, envelope: Envelope, header: GossipHeader) -> bool:
        """FIFO mode: hold back out-of-order arrivals; re-dispatch on gap
        close.  Always returns False -- the engine owns delivery here."""
        released = self._fifo.offer(
            header.origin, header.sequence, envelope.to_bytes()
        )
        if not released:
            if header.sequence < self._fifo.next_expected(header.origin):
                # Below the delivered watermark: a pre-crash delivery came
                # around again; swallowing it is the whole point of the
                # durable FIFO counters.
                self.metrics.counter("gossip.fifo-suppressed").inc()
                self._recovery_stats.redelivered_suppressed += 1
            else:
                self.metrics.counter("gossip.held-back").inc()
        for data in released:
            self.metrics.counter("gossip.released-in-order").inc()
            self._dispatch_stored(data)
        if released:
            self._log_fifo(header.origin)
        return False

    def _dispatch_stored(self, data: bytes) -> None:
        """Re-run local dispatch (past the handler chain) for stored wire
        bytes -- used when the holdback buffer releases a message."""
        replay = Envelope.from_bytes(data)
        context = MessageContext(
            replay,
            Direction.INBOUND,
            addressing=AddressingHeaders.extract(replay),
            runtime=self.runtime,
        )
        self.runtime.deliver_local(context)

    @property
    def has_view(self) -> bool:
        """True when the engine has any source of peers."""
        return self.view_provider is not None or self.registered

    def current_view(self) -> List[str]:
        """The peer view in force (provider-backed or coordinator-supplied)."""
        if self.view_provider is not None:
            return list(self.view_provider())
        return list(self.view)

    def _record_trace_sample(self, trace: TraceContext) -> None:
        """Account a first delivery against the frame's trace section.

        End-to-end latency is the gap between the origin's publish
        timestamp and our clock; the per-hop figure divides it over the
        hops actually taken (``path + 1``: a freshly published frame has
        path 0 and traveled one hop to reach us).  Only sampled frames are
        measured; the skew guard discards readings more negative than the
        policy tolerates and clamps the rest to zero.
        """
        if not trace.sampled:
            return
        policy = self.telemetry
        hops_taken = trace.path + 1
        if hops_taken > policy.max_path_length:
            self._telemetry_clamped.inc()
            return
        latency = self.scheduler.now - trace.publish_ts
        if latency < -policy.clock_skew_guard:
            self._telemetry_skew.inc()
            return
        latency_ms = max(0.0, latency) * 1000.0
        self._e2e_latency.observe(latency_ms)
        self._hop_latency.observe(latency_ms / hops_taken)
        self._telemetry_samples.inc()

    def _forward(self, envelope: Envelope, header: GossipHeader, source: Optional[str]) -> None:
        if header.hops <= 0:
            self.metrics.counter("gossip.hops-exhausted").inc()
            return
        if self._shed("payload"):
            # Eager rumor payloads are the last rung of the shed ladder:
            # this only fires at the hard limit (pressure 1.0).
            return
        if self.batching:
            # Hop decrement by byte splice -- no parse, no re-encode; the
            # flush resolves targets and folds the frame into its batches.
            # A carried trace section gets its path counter spliced in the
            # same single pass, keeping telemetry off the re-encode path.
            raw = envelope.to_bytes()
            if header.trace is not None:
                data = splice_forward(raw, header.hops - 1, header.trace.path + 1)
            else:
                data = splice_hops(raw, header.hops - 1)
            if data is None:
                header.decremented().replace_in(envelope)
                data = envelope.to_bytes()
            self._enqueue_fanout(data, header.origin, source)
            self.metrics.counter("gossip.forward").inc()
            if self._tracer.enabled:
                # Batched sends resolve targets at flush time; attribute
                # the configured fanout as the intended spread.
                self._tracer.on_forward(
                    header.message_id, self.app_address, self.scheduler.now,
                    targets=self.params.fanout,
                )
            return
        exclude = [self.app_address, header.origin]
        if source is not None:
            exclude.append(source)
        targets = self._select_targets(exclude=exclude)
        if not targets:
            return
        # Swap in the decremented header and encode once; every target
        # receives the same bytes object.  The stale per-hop WS-A headers
        # are deliberately kept: receivers dispatch by service path and
        # dedup by the gossip MessageId, so rewriting To / MessageID per
        # copy would buy nothing but an XML encode per target.
        header.decremented().replace_in(envelope)
        data = envelope.to_bytes()
        for target in targets:
            self.runtime.send_bytes(target, data)
            self.metrics.counter("gossip.forward").inc()
        if self._tracer.enabled:
            self._tracer.on_forward(
                header.message_id, self.app_address, self.scheduler.now,
                targets=len(targets),
            )

    def _select_targets(self, exclude: Sequence[str]) -> List[str]:
        view = self.current_view()
        fanout = self.params.fanout
        if self.health is not None:
            fanout = self.health.effective_fanout(fanout, view)
        ceiling = self.fanout_ceiling
        if ceiling is not None and fanout > ceiling:
            fanout = ceiling
            self._control_stats.ceiling_clamps += 1
        return self.selector.select(view, fanout, self.rng, exclude=exclude)

    # -- overload protection (backpressure + the shed ladder) ---------------------

    @property
    def outbox_depth(self) -> int:
        """Frames (and pending control sections) parked in the outbox."""
        return (
            sum(len(frames) for frames in self._outbox_fanout.values())
            + sum(len(frames) for frames in self._outbox_direct.values())
            + len(self._outbox_control)
        )

    @property
    def overload_pressure(self) -> float:
        """This node's load pressure in ``[0, 1]``; always 0.0 without an
        :class:`~repro.core.overload.OverloadPolicy`.

        The max of outbox fill (send-side backpressure) and whatever the
        ``pressure_provider`` reports (the layer's bounded ingest queue),
        so the adaptive controller reads one number per engine.
        """
        policy = self.overload
        if policy is None:
            return 0.0
        pressure = min(1.0, self.outbox_depth / policy.outbox_bound)
        if self._pressure_provider is not None:
            pressure = max(pressure, self._pressure_provider())
        return pressure

    def _shed(self, shed_class: str) -> bool:
        """True when the shed ladder says to drop ``shed_class`` traffic.

        Hysteresis: crossing ``high_watermark`` latches the node
        overloaded (counted once in ``pressure_highs``) and holds the
        effective pressure at the watermark until raw pressure falls back
        below ``low_watermark`` -- so shedding does not flap at the
        boundary.  Payloads only shed at raw pressure 1.0.
        """
        policy = self.overload
        if policy is None:
            return False
        pressure = self.overload_pressure
        if not self._overloaded and pressure >= policy.high_watermark:
            self._overloaded = True
            self._overload_stats.pressure_highs += 1
        elif self._overloaded and pressure < policy.low_watermark:
            self._overloaded = False
        effective = pressure
        if self._overloaded and effective < policy.high_watermark:
            effective = policy.high_watermark
        if effective >= threshold_for(policy, shed_class):
            self._overload_stats.count_shed(shed_class)
            self.metrics.counter(f"gossip.shed.{shed_class}").inc()
            return True
        return False

    # -- batched outbox (multi-rumor envelopes) -----------------------------------

    @property
    def batching(self) -> bool:
        """True when multi-rumor batching is enabled for this activity."""
        return self.params.max_batch_rumors > 1

    def _enqueue_fanout(
        self, data: bytes, origin: Optional[str], source: Optional[str]
    ) -> None:
        """Park a frame for fan-out; targets resolve at flush time, so one
        burst shares a single peer selection per exclusion key."""
        self._outbox_fanout.setdefault((origin, source), []).append(data)
        self._schedule_flush()

    def _enqueue_direct(self, gossip_address: str, data: bytes) -> None:
        """Park a frame addressed to one specific peer's gossip port."""
        self._outbox_direct.setdefault(gossip_address, []).append(data)
        self._schedule_flush()

    def _outbox_control_for(self, gossip_address: str) -> BatchControl:
        """The control sections accumulating for one destination."""
        control = self._outbox_control.get(gossip_address)
        if control is None:
            control = self._outbox_control[gossip_address] = BatchControl()
        self._schedule_flush()
        return control

    def _schedule_flush(self) -> None:
        # A zero-delay event runs after every same-instant delivery already
        # scheduled (FIFO tie-breaking), so the whole burst lands in the
        # outbox before it is coalesced.
        if not self._flush_scheduled:
            self._flush_scheduled = True
            self.scheduler.call_after(0.0, self._flush_outbox)

    def _flush_outbox(self) -> None:
        """Coalesce everything parked this instant into one envelope per
        destination (splitting only at the batch caps)."""
        self._flush_scheduled = False
        fanout, self._outbox_fanout = self._outbox_fanout, {}
        direct, self._outbox_direct = self._outbox_direct, {}
        control, self._outbox_control = self._outbox_control, {}
        if self._stopped:
            return
        self._batch_stats.flushes += 1
        per_destination: Dict[str, List[bytes]] = {}
        for destination, frames in direct.items():
            per_destination.setdefault(destination, []).extend(frames)
        for (origin, source), frames in fanout.items():
            exclude = [self.app_address]
            if origin:
                exclude.append(origin)
            if source is not None:
                exclude.append(source)
            for target in self._select_targets(exclude=exclude):
                per_destination.setdefault(
                    gossip_address_of(target), []
                ).extend(frames)
        destinations = list(per_destination)
        for destination in control:
            if destination not in per_destination:
                destinations.append(destination)
        shared: Dict[tuple, bytes] = {}
        holder = gossip_address_of(self.app_address)
        for destination in destinations:
            self._send_batches(
                destination,
                per_destination.get(destination, ()),
                control.get(destination),
                holder,
                shared,
            )

    def _send_batches(
        self,
        destination: str,
        frames: Sequence[bytes],
        control: Optional[BatchControl],
        holder: str,
        shared: Dict[tuple, bytes],
    ) -> None:
        if control is not None and control.empty():
            control = None
        chunks = self._chunk_frames(frames)
        if not chunks:
            if control is None:
                return
            chunks = [[]]
        for index, chunk in enumerate(chunks):
            chunk_control = control if index == len(chunks) - 1 else None
            if len(chunk) == 1 and chunk_control is None:
                # A lone rumor needs no carrier: ship the legacy frame, so
                # batching-unaware peers stay fully interoperable.
                self._batch_stats.legacy_singletons += 1
                self.runtime.send_bytes(destination, chunk[0])
                self.metrics.counter("gossip.fanout-send").inc()
                continue
            if chunk_control is None:
                # Fan-out twins share one encode: an identical frame run
                # resolves to the same buffer (the zero-copy batch path).
                key = tuple(map(id, chunk))
                data = shared.get(key)
                if data is None:
                    data = build_batch(self.activity_id, holder, chunk)
                    shared[key] = data
                    self._batch_stats.batches_built += 1
            else:
                data = build_batch(self.activity_id, holder, chunk, chunk_control)
                self._batch_stats.batches_built += 1
                self._batch_stats.control_piggybacked += chunk_control.section_count()
            self._batch_stats.batches_sent += 1
            self._batch_stats.rumors_batched += len(chunk)
            self.runtime.send_bytes(destination, data)
            self.metrics.counter("gossip.batch-send").inc()

    def _chunk_frames(self, frames: Sequence[bytes]) -> List[List[bytes]]:
        """Split a frame run at the batch caps (count and bytes); an
        oversized single frame still ships, alone."""
        max_rumors = self.params.max_batch_rumors
        max_bytes = self.params.max_batch_bytes
        chunks: List[List[bytes]] = []
        current: List[bytes] = []
        size = 0
        for frame in frames:
            if current and (
                len(current) >= max_rumors or size + len(frame) > max_bytes
            ):
                chunks.append(current)
                current, size = [], 0
            current.append(frame)
            size += len(frame)
        if current:
            chunks.append(current)
        return chunks

    def on_batch_control(
        self, control: BatchControl, holder: str, source: Optional[str]
    ) -> None:
        """Apply the piggybacked control sections of a received batch."""
        for message_ids, hops in control.ads:
            self.on_advertise(message_ids, hops, holder)
        if control.feedback:
            self.on_feedback(control.feedback)
        if control.digest is not None:
            message_ids, kind = control.digest
            self._serve_batch_digest(message_ids, kind, holder)

    def _serve_batch_digest(
        self, remote_digest: List[str], kind: str, holder: str
    ) -> None:
        """Answer a piggybacked pull digest: missing frames go back as
        batched rumors (no request/response correlation needed) and a
        ``req`` earns a counter-digest, so one exchange repairs both
        directions; the ``rsp`` digest terminates it."""
        if self._shed("pull"):
            return
        served = 0
        for message_id in self.store.not_in(remote_digest):
            stored = self.store.get(message_id)
            if stored is not None and stored.data:
                self._enqueue_direct(holder, stored.data)
                served += 1
        if served:
            self.metrics.counter("gossip.pull-served").inc()
        if kind == "req":
            self._outbox_control_for(holder).digest = (self.store.digest(), "rsp")

    # -- lazy push (Advertise / Fetch) ---------------------------------------------

    def _advertise(self, message_ids: List[str], hops: int) -> None:
        """Send identifier-only advertisements to ``fanout`` peers."""
        if hops <= 0 or not message_ids:
            self.metrics.counter("gossip.ad-exhausted").inc()
            return
        if self._shed("digest"):
            return
        targets = self._select_targets(exclude=[self.app_address])
        holder = gossip_address_of(self.app_address)
        if self.batching:
            for target in targets:
                self.metrics.counter("gossip.advertise").inc()
                self._outbox_control_for(gossip_address_of(target)).ads.append(
                    (list(message_ids), hops)
                )
            return
        for target in targets:
            self.metrics.counter("gossip.advertise").inc()
            self.runtime.send(
                gossip_address_of(target),
                ADVERTISE_ACTION,
                value={
                    "activity": self.activity_id,
                    "ids": list(message_ids),
                    "hops": hops,
                    "holder": holder,
                },
            )

    def on_advertise(self, message_ids: List[str], hops: int, holder: str) -> None:
        """Passive side of lazy push: fetch whatever we have not seen."""
        wanted = [
            message_id
            for message_id in self.store.missing_from(message_ids)
            if message_id not in self._pending_fetch
        ]
        # Bound the ad-budget bookkeeping: entries for messages that never
        # arrive must not accumulate forever.
        if len(self._ad_hops) > 4 * self.params.buffer_capacity:
            self._ad_hops.clear()
        for message_id in wanted:
            budget = self._ad_hops.get(message_id, 0)
            self._ad_hops[message_id] = max(budget, hops)
            self._pending_fetch.add(message_id)
            # Fallback: if the fetch (or its response) is lost, let a later
            # advertisement re-trigger it.
            self.scheduler.call_after(
                2.0 * self.params.period,
                lambda message_id=message_id: self._pending_fetch.discard(
                    message_id
                ),
            )
        if wanted:
            self.metrics.counter("gossip.fetch").inc()
            self.runtime.send(
                holder,
                FETCH_ACTION,
                value={
                    "activity": self.activity_id,
                    "ids": wanted,
                    "requester": gossip_address_of(self.app_address),
                },
            )

    def serve_fetch(self, message_ids: List[str], requester: str) -> None:
        """Serve a Fetch: deliver the requested retained messages."""
        self.metrics.counter("gossip.fetch-served").inc()
        self.push_messages(requester, message_ids)

    # -- feedback ("coin") rumor mongering --------------------------------------

    def _forward_hot(self, message_id: str, source: Optional[str] = None) -> None:
        """Forward a hot rumor to ``fanout`` peers (feedback style)."""
        stored = self.store.get(message_id)
        if stored is None or not stored.data:
            self._hot.pop(message_id, None)
            return
        if self._shed("payload"):
            return
        # The store remembers the origin, so re-forwarding needs neither a
        # parse nor a re-encode: the retained wire bytes go out as-is.
        if self.batching:
            self._enqueue_fanout(stored.data, stored.origin, source)
            self.metrics.counter("gossip.feedback-forward").inc()
            return
        exclude = [self.app_address, stored.origin]
        if source is not None:
            exclude.append(source)
        for target in self._select_targets(exclude):
            self.runtime.send_bytes(target, stored.data)
            self.metrics.counter("gossip.feedback-forward").inc()

    def _feedback_round(self) -> None:
        """Re-forward every hot rumor; the rounds cap bounds lifetime."""
        for message_id in list(self._hot):
            self._forward_hot(message_id)
            remaining = self._hot.get(message_id, 0) - 1
            if remaining <= 0:
                self._hot.pop(message_id, None)
                self.metrics.counter("gossip.cooled.cap").inc()
                self._log_append({"type": "cooled", "id": message_id})
            else:
                self._hot[message_id] = remaining

    def _send_feedback(self, message_id: str, source: str) -> None:
        """Tell the sender we already had this rumor."""
        if self._shed("feedback"):
            return
        self.metrics.counter("gossip.feedback-sent").inc()
        if self.batching:
            self._outbox_control_for(gossip_address_of(source)).feedback.append(
                message_id
            )
            return
        self.runtime.send(
            gossip_address_of(source),
            FEEDBACK_ACTION,
            value={"activity": self.activity_id, "ids": [message_id]},
        )

    def on_feedback(self, message_ids: List[str]) -> None:
        """Cool each rumor with the configured stop probability."""
        for message_id in message_ids:
            if message_id in self._hot:
                if self.rng.random() < self.params.stop_probability:
                    self._hot.pop(message_id, None)
                    self.metrics.counter("gossip.cooled.feedback").inc()
                    self._log_append({"type": "cooled", "id": message_id})

    @property
    def hot_count(self) -> int:
        """Rumors this node is still actively spreading (feedback style)."""
        return len(self._hot)

    # -- periodic rounds (pull / push-pull / anti-entropy) ------------------------------

    def start_periodic_rounds(self) -> None:
        """Start the style's periodic activity.

        Called automatically on registration; decentralized deployments
        (no coordinator, ``view_provider`` set) call it directly.
        """
        self._start_periodic_rounds()

    def _start_periodic_rounds(self) -> None:
        if self._periodic_started or self._stopped:
            return
        if self.params.style in (
            GossipStyle.PULL,
            GossipStyle.PUSH_PULL,
            GossipStyle.ANTI_ENTROPY,
            # Lazy push pairs eager advertisements with a periodic pull
            # repair (Plumtree's recovery path) -- ads alone die out under
            # loss because only payload holders re-advertise.
            GossipStyle.LAZY_PUSH,
            # Feedback style re-forwards hot rumors every period.
            GossipStyle.FEEDBACK,
        ):
            # The flag is only raised for periodic styles, so an engine
            # whose params later escalate push -> push-pull (adaptive
            # control) can start the loop with a fresh call here.
            self._periodic_started = True
            self._schedule_next_round()

    def _schedule_next_round(self) -> None:
        delay = self.params.period + self.rng.uniform(0.0, self.params.jitter)
        self.scheduler.call_after(delay, self._periodic_round)

    def _periodic_round(self) -> None:
        if self._stopped:
            return
        if self.params.style is GossipStyle.PUSH:
            # The params de-escalated back to plain push while a periodic
            # loop was in flight (adaptive control): let the loop die out
            # so a later escalation can restart it cleanly.
            self._periodic_started = False
            return
        if self.params.style is GossipStyle.ANTI_ENTROPY:
            self._anti_entropy_round()
        elif self.params.style is GossipStyle.FEEDBACK:
            self._feedback_round()
        else:
            self._pull_round()
        self._schedule_next_round()

    def _pull_round(self) -> None:
        """Send our digest to ``fanout`` peers; they reply with what we lack."""
        if self._shed("digest"):
            return
        targets = self._select_targets(exclude=[self.app_address])
        digest = self.store.digest()
        if self.batching:
            # The digest piggybacks on whatever batch flushes next; the
            # answer arrives as batched rumors, not a correlated reply.
            for target in targets:
                self.metrics.counter("gossip.pull-request").inc()
                self._outbox_control_for(gossip_address_of(target)).digest = (
                    digest,
                    "req",
                )
            return
        for target in targets:
            self.metrics.counter("gossip.pull-request").inc()
            self.runtime.send(
                gossip_address_of(target),
                PULL_ACTION,
                value={"activity": self.activity_id, "digest": digest},
                on_reply=self._on_pull_reply,
            )

    def _anti_entropy_round(self) -> None:
        """Reconcile with one random peer, both directions."""
        if self._shed("digest"):
            return
        targets = self.selector.select(
            self.current_view(), 1, self.rng, exclude=[self.app_address]
        )
        if not targets:
            return
        self.metrics.counter("gossip.anti-entropy").inc()
        if self.batching:
            self._outbox_control_for(gossip_address_of(targets[0])).digest = (
                self.store.digest(),
                "req",
            )
            return
        self.runtime.send(
            gossip_address_of(targets[0]),
            PULL_ACTION,
            value={"activity": self.activity_id, "digest": self.store.digest()},
            on_reply=self._on_anti_entropy_reply,
        )

    def _on_pull_reply(self, reply_context, value) -> None:
        self._ingest_pull_reply(value, serve_wants=False)

    def _on_anti_entropy_reply(self, reply_context, value) -> None:
        self._ingest_pull_reply(value, serve_wants=True)

    def _ingest_pull_reply(self, value, serve_wants: bool) -> None:
        if not isinstance(value, dict):
            return
        messages = value.get("messages")
        if isinstance(messages, list):
            for data in messages:
                if isinstance(data, (bytes, bytearray)):
                    self.metrics.counter("gossip.pulled").inc()
                    self.runtime.receive(bytes(data), source=None)
        if serve_wants:
            wants = value.get("wants")
            peer = value.get("peer")
            if isinstance(wants, list) and isinstance(peer, str):
                self.push_messages(peer, [w for w in wants if isinstance(w, str)])

    def push_messages(self, gossip_address: str, message_ids: List[str]) -> None:
        """Send retained messages to a peer's gossip port (Deliver op)."""
        if self._shed("pull"):
            return
        payload = []
        for message_id in message_ids:
            stored = self.store.get(message_id)
            if stored is not None and stored.data:
                payload.append(stored.data)
        if not payload:
            return
        self.metrics.counter("gossip.deliver-sent").inc()
        if self.batching:
            # The frames ride the outbox instead of a base64 Deliver body:
            # no re-wrapping, and they coalesce with anything else pending.
            for data in payload:
                self._enqueue_direct(gossip_address, data)
            return
        self.runtime.send(
            gossip_address,
            DELIVER_ACTION,
            value={"activity": self.activity_id, "messages": payload},
        )

    # -- pull serving (called by the gossip service) ------------------------------------

    def serve_pull(self, remote_digest: List[str], requester_gossip: Optional[str]) -> dict:
        """Build the PullResponse payload for a remote digest."""
        if self._shed("pull"):
            # Shed the expensive part (the payload frames); the requester
            # re-pulls next period.  The empty reply still flows so the
            # correlation machinery is not left dangling.
            return {
                "messages": [],
                "wants": [],
                "peer": gossip_address_of(self.app_address),
            }
        missing_at_requester = self.store.not_in(remote_digest)
        messages = []
        for message_id in missing_at_requester:
            stored = self.store.get(message_id)
            if stored is not None and stored.data:
                messages.append(stored.data)
        wants = self.store.missing_from(remote_digest)
        response = {
            "messages": messages,
            "wants": wants,
            "peer": gossip_address_of(self.app_address),
        }
        return response

    # -- durability (WAL + snapshot) ----------------------------------------------------

    def _log_append(self, record: dict) -> None:
        """Append one WAL record; snapshot-compact at the policy cadence."""
        if self.log is None:
            return
        self.log.append(record)
        snapshot_every = (
            self.durability.snapshot_every if self.durability is not None else 256
        )
        if self.log.appends_since_snapshot >= snapshot_every:
            self.log.write_snapshot(self.snapshot_state())

    def _log_message(self, message_id: str, data: bytes, origin: str) -> None:
        if self.log is None:
            return
        self._log_append(
            {
                "type": "msg",
                "id": message_id,
                "data": data,
                "at": self.scheduler.now,
                "origin": origin,
            }
        )

    def _log_fifo(self, origin: str) -> None:
        if self.log is None:
            return
        self._log_append(
            {
                "type": "fifo",
                "origin": origin,
                "next": self._fifo.next_expected(origin),
            }
        )

    def snapshot_state(self) -> dict:
        """The gossip-critical state a snapshot must capture: retained
        messages, dedup identities, FIFO watermarks, publication counter,
        and the feedback hot-rumor set."""
        return {
            "messages": [
                {
                    "id": stored.message_id,
                    "data": stored.data,
                    "at": stored.received_at,
                    "origin": stored.origin,
                }
                for stored in self.store.messages()
            ],
            "seen": self.store.seen_identities(),
            "pub_seq": self._publish_sequence,
            "fifo": self._fifo.counters(),
            "hot": dict(self._hot),
        }

    # -- crash recovery -----------------------------------------------------------------

    @property
    def recovering(self) -> bool:
        """True between a restart and the end of catch-up (eager
        forwarding is suppressed while this holds)."""
        return self._recovering

    def prepare_restart(
        self,
        amnesia: bool = True,
        on_replayed: Optional[Callable[[str], None]] = None,
    ) -> int:
        """Reset the engine to post-crash state, replaying the WAL unless
        ``amnesia``.

        Called by the host node while the process restarts (before
        :meth:`rejoin`).  With ``amnesia`` the durable log is discarded
        too -- the node truly forgets, modelling a lost disk.  Otherwise
        the snapshot and WAL rebuild the store, dedup identities, FIFO
        watermarks, publication counter and hot set; ``on_replayed`` is
        invoked with each recovered message identity so the host can
        restore its own delivered-set.

        Returns the number of messages restored into the store.
        """
        self.store = MessageStore(self.params.buffer_capacity)
        self.view = []
        self.registered = False
        self.register_pending = False
        self._periodic_started = False
        self._stopped = False
        self._recovering = False
        self._catch_up_rounds_left = 0
        self._pending_forwards = []
        self._ad_hops = {}
        self._pending_fetch = set()
        self._hot = {}
        self._fifo = FifoBuffer()
        self._publish_sequence = 0
        self._outbox_fanout = {}
        self._outbox_direct = {}
        self._outbox_control = {}
        self._flush_scheduled = False
        self._overloaded = False
        self._recovery_stats.restarts += 1
        self.metrics.counter("gossip.restart").inc()
        if amnesia:
            self._recovery_stats.amnesia_restarts += 1
            if self.log is not None:
                self.log.clear()
            return 0
        if self.log is None:
            return 0
        return self._restore_from_log(on_replayed)

    def _restore_from_log(
        self, on_replayed: Optional[Callable[[str], None]]
    ) -> int:
        result = self.log.replay()
        replayed = 0
        snapshot = result.snapshot
        if isinstance(snapshot, dict):
            replayed += self._apply_replay_state(snapshot, on_replayed)
        for record in result.records:
            replayed += self._apply_replay_record(record, on_replayed)
        self._recovery_stats.replayed_messages += replayed
        self.metrics.counter("gossip.replayed").inc(replayed)
        if self.params.ordered:
            self._reoffer_replayed()
        return replayed

    def _apply_replay_state(
        self, state: dict, on_replayed: Optional[Callable[[str], None]]
    ) -> int:
        replayed = 0
        messages = state.get("messages")
        if isinstance(messages, list):
            for entry in messages:
                if isinstance(entry, dict):
                    replayed += self._restore_message(entry, on_replayed)
        seen = state.get("seen")
        if isinstance(seen, list):
            for message_id in seen:
                if isinstance(message_id, str) and self.store.is_new(message_id):
                    # Payload evicted pre-crash; the identity alone keeps
                    # re-receipt from counting as fresh.
                    self.store.mark_seen(message_id)
                    if on_replayed is not None:
                        on_replayed(message_id)
        pub_seq = state.get("pub_seq")
        if isinstance(pub_seq, int):
            self._publish_sequence = max(self._publish_sequence, pub_seq)
        fifo = state.get("fifo")
        if isinstance(fifo, dict):
            for origin, next_expected in fifo.items():
                if isinstance(origin, str) and isinstance(next_expected, int):
                    self._fifo.restore_counter(origin, next_expected)
        hot = state.get("hot")
        if isinstance(hot, dict):
            for message_id, rounds in hot.items():
                if isinstance(message_id, str) and isinstance(rounds, int):
                    self._hot[message_id] = rounds
        return replayed

    def _apply_replay_record(
        self, record: dict, on_replayed: Optional[Callable[[str], None]]
    ) -> int:
        kind = record.get("type")
        if kind == "msg":
            return self._restore_message(record, on_replayed)
        if kind == "pub_seq" and isinstance(record.get("value"), int):
            self._publish_sequence = max(self._publish_sequence, record["value"])
        elif kind == "fifo":
            origin, next_expected = record.get("origin"), record.get("next")
            if isinstance(origin, str) and isinstance(next_expected, int):
                self._fifo.restore_counter(origin, next_expected)
        elif kind == "hot":
            message_id, rounds = record.get("id"), record.get("rounds")
            if isinstance(message_id, str) and isinstance(rounds, int):
                self._hot[message_id] = rounds
        elif kind == "cooled":
            self._hot.pop(record.get("id"), None)
        return 0

    def _restore_message(
        self, entry: dict, on_replayed: Optional[Callable[[str], None]]
    ) -> int:
        message_id = entry.get("id")
        data = entry.get("data")
        origin = entry.get("origin")
        if not isinstance(message_id, str) or not isinstance(data, (bytes, bytearray)):
            return 0
        received_at = entry.get("at")
        if not isinstance(received_at, (int, float)):
            received_at = self.scheduler.now
        fresh = self.store.add(
            message_id,
            bytes(data),
            float(received_at),
            origin if isinstance(origin, str) else "",
        )
        if fresh and on_replayed is not None:
            on_replayed(message_id)
        return int(fresh)

    def _reoffer_replayed(self) -> None:
        """FIFO mode: re-arm the holdback buffer with replayed messages.

        Messages at or past an origin's watermark were received but not
        yet delivered when the node crashed -- they go back into holdback
        (and anything now in order is dispatched).  Messages below the
        watermark were already delivered pre-crash and stay suppressed.
        """
        for stored in list(self.store.messages()):
            if not stored.data:
                continue
            try:
                envelope = Envelope.from_bytes(stored.data)
            except Exception:
                continue
            header = GossipHeader.from_envelope(envelope)
            if header is None or header.sequence is None:
                continue
            if header.sequence >= self._fifo.next_expected(header.origin):
                self._offer_ordered(envelope, header)

    def rejoin(self, protocol: Optional[str] = None) -> None:
        """Resume participation after a restart.

        The node re-registers (or restarts its periodic rounds in
        decentralized mode), marks *itself* suspect in its own health view
        (its pre-crash picture of the group is stale), and runs a bounded
        anti-entropy catch-up with ``catch_up_peers`` healthy peers per
        round before resuming eager forwarding.  ``protocol`` defaults to
        whatever this engine registered as before the crash.
        """
        if self._stopped:
            return
        if protocol is None:
            protocol = self._last_protocol
        policy = self.durability if self.durability is not None else DurabilityPolicy()
        if self.health is not None:
            # Conservative rejoin: our own liveness record is the stalest
            # thing in the room right after a crash.
            self.health.mark_failed(self.app_address)
        if policy.catch_up:
            self._recovering = True
            self._catch_up_rounds_left = policy.catch_up_rounds
            self._catch_up_wait_budget = 24
        if self.view_provider is not None:
            self._start_periodic_rounds()
        else:
            self.register(protocol)
        if policy.catch_up:
            self.metrics.counter("gossip.rejoin").inc()
            self.scheduler.call_after(0.0, self._catch_up_round)

    def _catch_up_round(self) -> None:
        if self._stopped or not self._recovering:
            return
        view = self.current_view() if self.has_view else []
        if not view:
            # Registration has not answered yet; wait a period, bounded so
            # a dead coordinator cannot leave us muted forever.
            self._catch_up_wait_budget -= 1
            if self._catch_up_wait_budget <= 0:
                self._finish_catch_up()
                return
            self.scheduler.call_after(self.params.period, self._catch_up_round)
            return
        policy = self.durability if self.durability is not None else DurabilityPolicy()
        self._catch_up_rounds_left -= 1
        self._recovery_stats.catch_up_rounds += 1
        self.metrics.counter("gossip.catch-up-round").inc()
        targets = self.selector.select(
            view, policy.catch_up_peers, self.rng, exclude=[self.app_address]
        )
        digest = self.store.digest()
        for target in targets:
            self.runtime.send(
                gossip_address_of(target),
                PULL_ACTION,
                value={"activity": self.activity_id, "digest": digest},
                on_reply=self._on_pull_reply,
            )
        before = self.store.seen_count
        self.scheduler.call_after(
            self.params.period, lambda: self._catch_up_check(before)
        )

    def _catch_up_check(self, before: int) -> None:
        if self._stopped or not self._recovering:
            return
        if self._catch_up_rounds_left <= 0 or self.store.seen_count <= before:
            # Bounded: out of rounds, or a full round learned nothing new
            # (we have converged with the sampled peers).
            self._finish_catch_up()
        else:
            self._catch_up_round()

    def _finish_catch_up(self) -> None:
        if not self._recovering:
            return
        self._recovering = False
        self._recovery_stats.catch_ups_completed += 1
        self.metrics.counter("gossip.catch-up-complete").inc()

    # -- lifecycle ----------------------------------------------------------------------

    def stop(self) -> None:
        """Stop periodic activity (timers already dead on sim crash)."""
        self._stopped = True

    def __repr__(self) -> str:
        return (
            f"GossipEngine(activity={self.activity_id!r}, "
            f"style={self.params.style.value}, view={len(self.view)}, "
            f"seen={self.store.seen_count})"
        )
