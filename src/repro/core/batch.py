"""The multi-rumor batched gossip frame (lpbcast-style piggybacking).

The paper's scalability story leans on epidemic exchanges that amortize
per-message cost; Eugster et al.'s lightweight probabilistic broadcast gets
there by piggybacking many rumor ids/payloads per gossip exchange.  This
module is the wire codec for that: one ``GossipBatch`` envelope carries

* a sequence of complete legacy single-rumor frames (their wire bytes
  embedded verbatim, XML declarations stripped), plus
* optional piggybacked *control* sections -- lazy-push advertisements,
  feedback ids, and pull digests -- that would otherwise each cost their
  own envelope.

The frame is valid XML, but it is **assembled and split at the byte
level**: a ``Sizes`` element lists the byte length of every embedded rumor
frame, so a receiver slices the batch into the original single-rumor wire
bytes without parsing anything.  Each slice then rides the existing
receive path (pre-parse dedup gate, XML parse, gossip layer) unchanged --
which is also what makes old and new nodes interoperate: a batch is just
an alternative carrier for ordinary legacy frames.

Layout (see docs/WIRE.md, "Batched frames")::

    <?xml version='1.0' encoding='utf-8'?>
    <soap:Envelope ...>
      <soap:Header><wsa:To>sender-gossip-address</wsa:To>
                   <wsa:Action>urn:ws-gossip:2008:core/Batch</wsa:Action></soap:Header>
      <soap:Body>
        <g:GossipBatch activity="..." holder="sender-gossip-address" [ctl="1"]>
          <g:Sizes>len1 len2 ...</g:Sizes>
          <g:Rumors><!-- legacy frames, concatenated verbatim --></g:Rumors>
          [<g:Ads hops="H"><g:Id>...</g:Id>...</g:Ads>]
          [<g:Feedback><g:Id>...</g:Id>...</g:Feedback>]
          [<g:Digest kind="req|rsp"><g:Id>...</g:Id>...</g:Digest>]
        </g:GossipBatch>
      </soap:Body>
    </soap:Envelope>

The ``wsa:To`` is the *sender's* gossip address -- constant across a
fan-out, so every target shares one encoded buffer; receivers dispatch by
service path, exactly like forwarded legacy frames with their stale WS-A
headers.  It also routes the fallback: a batch that survives to a full XML
parse dispatches to the gossip service's ``Batch`` operation.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple
from xml.sax.saxutils import escape, quoteattr, unescape

from repro.soap import namespaces as ns
from repro.xmlutil import canonical_bytes, qname

BATCH_ACTION = f"{ns.WSGOSSIP}/Batch"

#: Cheap batch detection: hand-assembled frames always use this prefix
#: (ElementTree-serialized legacy frames use ``ns0:``-style prefixes, and
#: any occurrence inside payload *text* would be entity-escaped).
BATCH_MARKER = b"<g:GossipBatch"

BATCH_TAG = qname(ns.WSGOSSIP, "GossipBatch")
_SIZES_TAG = qname(ns.WSGOSSIP, "Sizes")
_RUMORS_TAG = qname(ns.WSGOSSIP, "Rumors")
_ADS_TAG = qname(ns.WSGOSSIP, "Ads")
_FEEDBACK_TAG = qname(ns.WSGOSSIP, "Feedback")
_DIGEST_TAG = qname(ns.WSGOSSIP, "Digest")
_ID_TAG = qname(ns.WSGOSSIP, "Id")

_PREFIX = (
    b"<?xml version='1.0' encoding='utf-8'?>\n"
    b'<soap:Envelope xmlns:soap="' + ns.SOAP11_ENV.encode("ascii") + b'"'
    b' xmlns:wsa="' + ns.WSA.encode("ascii") + b'"'
    b' xmlns:g="' + ns.WSGOSSIP.encode("ascii") + b'">'
    b"<soap:Header>"
)
_ACTION_HEADER = (
    b"<wsa:Action>" + BATCH_ACTION.encode("ascii") + b"</wsa:Action>"
)
_SUFFIX = b"</g:GossipBatch></soap:Body></soap:Envelope>"

_XML_DECL = b"<?xml"


class BatchError(ValueError):
    """Raised when bytes claiming to be a batch frame cannot be split."""


@dataclass
class BatchControl:
    """Piggybacked control traffic for one destination.

    Attributes:
        ads: lazy-push advertisements as ``(message_ids, hops)`` entries.
        feedback: message ids the sender reports as duplicates.
        digest: a pull digest as ``(message_ids, kind)``; ``kind`` is
            ``"req"`` (answer with missing frames *and* a counter-digest)
            or ``"rsp"`` (answer with missing frames only -- terminates
            the exchange).
    """

    ads: List[Tuple[List[str], int]] = field(default_factory=list)
    feedback: List[str] = field(default_factory=list)
    digest: Optional[Tuple[List[str], str]] = None

    def empty(self) -> bool:
        return not self.ads and not self.feedback and self.digest is None

    def section_count(self) -> int:
        return len(self.ads) + bool(self.feedback) + (self.digest is not None)


def strip_declaration(frame: bytes) -> bytes:
    """Drop a leading XML declaration (plus trailing whitespace) so the
    frame can be embedded as element content."""
    if not frame.startswith(_XML_DECL):
        return frame
    end = frame.find(b"?>")
    if end == -1:
        return frame
    return frame[end + 2 :].lstrip()


def _ids_xml(ids: Sequence[str]) -> str:
    return "".join(f"<g:Id>{escape(i)}</g:Id>" for i in ids)


def build_batch(
    activity: str,
    holder: str,
    frames: Sequence[bytes],
    control: Optional[BatchControl] = None,
) -> bytes:
    """Assemble a batch frame from legacy single-rumor wire bytes.

    ``holder`` is the sender's gossip address (the batch's ``wsa:To`` and
    the address control responses go back to).  The declaration-stripped
    frames are embedded verbatim; no inner XML is parsed or re-encoded.
    """
    stripped = [strip_declaration(frame) for frame in frames]
    has_control = control is not None and not control.empty()
    parts = [
        _PREFIX,
        b"<wsa:To>" + escape(holder).encode("utf-8") + b"</wsa:To>",
        _ACTION_HEADER,
        b"</soap:Header><soap:Body>",
        b"<g:GossipBatch activity=%s holder=%s%s>"
        % (
            quoteattr(activity).encode("utf-8"),
            quoteattr(holder).encode("utf-8"),
            b' ctl="1"' if has_control else b"",
        ),
        b"<g:Sizes>" + " ".join(str(len(f)) for f in stripped).encode("ascii") + b"</g:Sizes>",
        b"<g:Rumors>",
    ]
    parts.extend(stripped)
    parts.append(b"</g:Rumors>")
    if has_control:
        for ids, hops in control.ads:
            parts.append(
                b"<g:Ads hops=%s>%s</g:Ads>"
                % (quoteattr(str(hops)).encode("ascii"), _ids_xml(ids).encode("utf-8"))
            )
        if control.feedback:
            parts.append(
                b"<g:Feedback>%s</g:Feedback>" % _ids_xml(control.feedback).encode("utf-8")
            )
        if control.digest is not None:
            ids, kind = control.digest
            parts.append(
                b"<g:Digest kind=%s>%s</g:Digest>"
                % (quoteattr(kind).encode("ascii"), _ids_xml(ids).encode("utf-8"))
            )
    parts.append(_SUFFIX)
    return b"".join(parts)


def is_batch_frame(data: bytes) -> bool:
    """True when the wire bytes are a hand-assembled batch frame."""
    return data.find(BATCH_MARKER) != -1


def _batch_tag_bytes(data: bytes) -> bytes:
    """The ``<g:GossipBatch ...>`` open tag's attribute region."""
    start = data.find(BATCH_MARKER)
    if start == -1:
        raise BatchError("not a batch frame")
    end = data.find(b">", start)
    if end == -1:
        raise BatchError("unterminated batch tag")
    return data[start + len(BATCH_MARKER) : end]


def _scan_attr(tag: bytes, name: bytes) -> Optional[str]:
    marker = b" " + name + b'="'
    start = tag.find(marker)
    if start == -1:
        return None
    start += len(marker)
    end = tag.find(b'"', start)
    if end == -1:
        return None
    return unescape(tag[start:end].decode("utf-8"))


def scan_batch_activity(data: bytes) -> Optional[str]:
    """The batch's activity id, by byte scan (no parse)."""
    try:
        return _scan_attr(_batch_tag_bytes(data), b"activity")
    except BatchError:
        return None


def scan_batch_holder(data: bytes) -> Optional[str]:
    """The sender's gossip address, by byte scan (no parse)."""
    try:
        return _scan_attr(_batch_tag_bytes(data), b"holder")
    except BatchError:
        return None


def batch_has_control(data: bytes) -> bool:
    """True when the batch carries piggybacked control sections."""
    try:
        return _scan_attr(_batch_tag_bytes(data), b"ctl") == "1"
    except BatchError:
        return False


def split_batch(data: bytes) -> List[bytes]:
    """Slice a batch into its embedded legacy frames -- pure byte math.

    Raises:
        BatchError: when the ``Sizes`` bookkeeping and the ``Rumors``
            content disagree (the caller falls back to a full XML parse).
    """
    sizes_start = data.find(b"<g:Sizes>")
    if sizes_start == -1:
        raise BatchError("batch frame has no Sizes element")
    sizes_start += len(b"<g:Sizes>")
    sizes_end = data.find(b"</g:Sizes>", sizes_start)
    if sizes_end == -1:
        raise BatchError("unterminated Sizes element")
    try:
        sizes = [int(token) for token in data[sizes_start:sizes_end].split()]
    except ValueError as exc:
        raise BatchError(f"malformed Sizes content: {exc}") from exc
    rumors_start = data.find(b"<g:Rumors>", sizes_end)
    if rumors_start == -1:
        raise BatchError("batch frame has no Rumors element")
    position = rumors_start + len(b"<g:Rumors>")
    slices: List[bytes] = []
    for size in sizes:
        if size < 0 or position + size > len(data):
            raise BatchError("Sizes overrun the Rumors content")
        slices.append(data[position : position + size])
        position += size
    if not data.startswith(b"</g:Rumors>", position):
        raise BatchError("Sizes do not cover the Rumors content exactly")
    return slices


def _scan_ids_region(region: bytes) -> List[str]:
    ids: List[str] = []
    position = 0
    while True:
        start = region.find(b"<g:Id>", position)
        if start == -1:
            return ids
        start += len(b"<g:Id>")
        end = region.find(b"</g:Id>", start)
        if end == -1:
            return ids
        ids.append(unescape(region[start:end].decode("utf-8")))
        position = end + len(b"</g:Id>")


def scan_batch_control(data: bytes) -> Optional[BatchControl]:
    """Recover the piggybacked control sections by byte scan (no parse).

    Returns ``None`` when the control region does not have the expected
    hand-assembled shape -- the caller then falls back to a full XML parse.
    """
    tail_start = data.find(b"</g:Rumors>")
    if tail_start == -1:
        return None
    tail = data[tail_start + len(b"</g:Rumors>") :]
    end = tail.find(b"</g:GossipBatch>")
    if end == -1:
        return None
    tail = tail[:end]
    control = BatchControl()
    position = 0
    while position < len(tail):
        if tail.startswith(b"<g:Ads ", position):
            tag_end = tail.find(b">", position)
            close = tail.find(b"</g:Ads>", position)
            if tag_end == -1 or close == -1:
                return None
            hops_text = _scan_attr(tail[position + len(b"<g:Ads") : tag_end], b"hops")
            try:
                hops = int(hops_text) if hops_text is not None else 0
            except ValueError:
                hops = 0
            control.ads.append((_scan_ids_region(tail[tag_end + 1 : close]), hops))
            position = close + len(b"</g:Ads>")
        elif tail.startswith(b"<g:Feedback>", position):
            close = tail.find(b"</g:Feedback>", position)
            if close == -1:
                return None
            control.feedback.extend(
                _scan_ids_region(tail[position + len(b"<g:Feedback>") : close])
            )
            position = close + len(b"</g:Feedback>")
        elif tail.startswith(b"<g:Digest ", position):
            tag_end = tail.find(b">", position)
            close = tail.find(b"</g:Digest>", position)
            if tag_end == -1 or close == -1:
                return None
            kind = (
                _scan_attr(tail[position + len(b"<g:Digest") : tag_end], b"kind")
                or "req"
            )
            control.digest = (_scan_ids_region(tail[tag_end + 1 : close]), kind)
            position = close + len(b"</g:Digest>")
        else:
            return None
    return control


# -- the parsed-XML fallback (malformed splits, foreign serializers) ----------


def _ids_from_element(element: ET.Element) -> List[str]:
    return [child.text or "" for child in element if child.tag == _ID_TAG]


def control_from_element(batch_element: ET.Element) -> BatchControl:
    """Recover the control sections from a parsed ``GossipBatch`` element."""
    control = BatchControl()
    for child in batch_element:
        if child.tag == _ADS_TAG:
            try:
                hops = int(child.get("hops", "0"))
            except ValueError:
                hops = 0
            control.ads.append((_ids_from_element(child), hops))
        elif child.tag == _FEEDBACK_TAG:
            control.feedback.extend(_ids_from_element(child))
        elif child.tag == _DIGEST_TAG:
            kind = child.get("kind", "req")
            control.digest = (_ids_from_element(child), kind)
    return control


def frames_from_element(batch_element: ET.Element) -> List[bytes]:
    """Recover the embedded frames from a parsed ``GossipBatch`` element
    by re-serializing each child of ``Rumors`` (the slow, robust path)."""
    rumors = batch_element.find(_RUMORS_TAG)
    if rumors is None:
        return []
    return [canonical_bytes(child) for child in rumors]
