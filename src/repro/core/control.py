"""Adaptive gossip control: a feedback loop from observed delivery to knobs.

The epidemic analysis (:mod:`repro.core.analysis`) tells a deployment
which static ``(fanout, rounds)`` meet a reliability target *under the
conditions assumed when they were chosen*.  Real groups are perturbed:
nodes churn, links lose messages, publishers burst.  A static
configuration generous enough for the worst case over-sends all the time;
one tuned for calm conditions collapses under stress (the
Bimodal-Multicast observation, made adaptive here).

:class:`AdaptiveController` closes the loop over the PR 5 observability.
Once per *epoch* it reads the group's :class:`~repro.obs.hub.MetricsHub`:

* **delivery fraction** of recently published rumors (causal spans from
  the :class:`~repro.obs.tracing.RumorTracer`) against the configured SLO;
* **rounds-to-SLO** against the epidemic bound
  :func:`~repro.core.analysis.expected_rounds`;
* **duplicate ratio** (``gossip.duplicate`` / ``gossip.fresh`` deltas) --
  redundancy headroom that can be traded away in calm periods;
* **suspicion mass** from the peer-health layer (fraction of the
  population currently suspected);
* **send-failure rate** (health-stats failures per wire send);
* **publish rate** vs. its own EWMA (burst detection).

and then *decides*, matching the response to what the signal threatens:

* a **delivery breach** (observed delivery below the SLO) gets the full
  fast boost within one epoch -- fanout +2, rounds +2, push -> push-pull
  escalation;
* **guard stress** (suspicion, send failures, slow rounds) with delivery
  still holding only buys insurance: escalate the mode, keep current
  capacity, and block shrinking -- raising fanout the SLO does not need
  is exactly the over-provisioning this controller exists to avoid;
* a **publish burst** widens batching to the max (bursts threaten
  traffic, not delivery);
* **overload pressure** (the PR 8 backpressure subsystem reporting
  outbox/ingest saturation at or above ``pressure_high``) overrides
  everything, including a delivery breach: boosting into a network that
  is already shedding only feeds the shedder.  The controller narrows
  batching and fanout one step instead and lets the priority shed
  ladder protect payloads (see docs/RESILIENCE.md);
* **calm** (delivery at SLO + margin, every signal quiet, cooldown
  elapsed) gives capacity back one gentle step per epoch.

The boost-fast / shrink-slow asymmetry plus the cooldown is the
anti-oscillation design: a perturbation is answered within one epoch,
but the controller needs ``cooldown_epochs`` of provable calm before it
gives capacity back, so it cannot ping-pong across the SLO boundary.

Interplay with the PR 2 health layer: the degraded-mode fanout boost
(:meth:`~repro.core.health.PeerHealth.effective_fanout`) still runs per
round, but the controller owns the *hard ceiling*: it sets
``engine.fanout_ceiling`` so controller boost and health boost can never
compound past ``AdaptivePolicy.fanout_ceiling``, superseding the fixed
``HealthPolicy.boost_cap`` as the outermost traffic bound.

Every decision is appended to ``hub.decisions`` (a
:class:`ControlDecision` timeline rendered by ``repro obs report`` and
exported as JSONL) and counted in the hub's
:class:`~repro.simnet.metrics.ControlStats` group.

The controller is deterministic: it draws no randomness, so two runs of
the same seed with the same policy make identical decisions, and a
controller attached with a no-op policy does not perturb the simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence

from repro.core.analysis import expected_rounds
from repro.core.message import GossipStyle
from repro.core.params import GossipParams, ParamError, _convert

#: Styles the escalation ladder moves between (index = escalation level).
_ESCALATION_LADDER = (GossipStyle.PUSH, GossipStyle.PUSH_PULL)


@dataclass(frozen=True)
class AdaptivePolicy:
    """Validated knobs of the adaptive controller.

    Attributes:
        slo_delivery: delivery fraction the controller must hold; observed
            delivery below this is a breach and triggers an immediate boost.
        epoch: seconds between controller decisions.
        min_fanout / max_fanout: bounds the controller moves fanout within.
        min_rounds / max_rounds: bounds for the per-message hop budget.
        fanout_ceiling: hard cap on the *effective* per-round fanout after
            the health layer's degraded-mode boost -- the controller's
            boost and the health boost can never compound past it (this
            supersedes ``HealthPolicy.boost_cap`` as the outer bound).
        escalate: allow push -> push-pull escalation under stress (and the
            reverse once calm).  Groups that start on a periodic style
            keep it; escalation never goes below the configured style.
        min_batch_rumors / max_batch_rumors: bounds for the batching knob;
            bursts widen batching toward the max, calm shrinks it back.
        shrink_margin: extra delivery above the SLO required before the
            controller considers giving capacity back (hysteresis band).
        suspicion_high: suspected fraction of the population above which
            churn stress is declared.  A *guard* signal: it escalates the
            gossip mode and blocks shrinking, but -- as long as delivery
            holds the SLO -- it never raises fanout/rounds (delivery
            breaches do that).
        failure_high: send failures per wire send above which loss stress
            is declared (a guard signal, like ``suspicion_high``).
        duplicate_high: duplicates per fresh delivery above which the
            group is considered to have redundancy to spare (a shrink
            *precondition* -- never a boost trigger).
        burst_high: publish-rate multiple of its EWMA that declares a
            publish burst.  Bursts threaten traffic, not delivery: the
            response is to widen batching to the max (amortizing
            envelopes), never to raise fanout.
        burst_min_publishes: publishes that must land inside one epoch
            before a burst can be declared at all -- at low base rates the
            Poisson noise of two or three arrivals is not a burst.
        cooldown_epochs: calm epochs required after a boost before the
            first shrink (the anti-oscillation brake).
        pressure_high: overload pressure (from the engines' bounded
            outboxes and ingest queues, 0..1) at or above which the
            controller *narrows* batching and fanout instead of boosting
            -- even on a delivery breach.  Amplifying into a network
            that is already shedding would only raise the shed rate; the
            overload subsystem's priority ladder protects payloads while
            the controller reduces offered load.
    """

    slo_delivery: float = 0.99
    epoch: float = 2.0
    min_fanout: int = 2
    max_fanout: int = 10
    min_rounds: int = 3
    max_rounds: int = 12
    fanout_ceiling: int = 12
    escalate: bool = True
    min_batch_rumors: int = 1
    max_batch_rumors: int = 64
    shrink_margin: float = 0.005
    suspicion_high: float = 0.10
    failure_high: float = 0.02
    duplicate_high: float = 1.5
    burst_high: float = 3.0
    burst_min_publishes: int = 4
    cooldown_epochs: int = 3
    pressure_high: float = 0.8

    def __post_init__(self) -> None:
        if not 0.0 < self.slo_delivery <= 1.0:
            raise ParamError(
                "slo_delivery",
                f"slo_delivery must be in (0, 1]: {self.slo_delivery!r}",
            )
        if self.epoch <= 0:
            raise ParamError("epoch", f"epoch must be positive: {self.epoch!r}")
        if self.min_fanout < 1:
            raise ParamError(
                "min_fanout", f"min_fanout must be >= 1: {self.min_fanout!r}"
            )
        if self.max_fanout < self.min_fanout:
            raise ParamError(
                "max_fanout",
                f"max_fanout ({self.max_fanout}) must be >= "
                f"min_fanout ({self.min_fanout})",
            )
        if self.min_rounds < 1:
            raise ParamError(
                "min_rounds", f"min_rounds must be >= 1: {self.min_rounds!r}"
            )
        if self.max_rounds < self.min_rounds:
            raise ParamError(
                "max_rounds",
                f"max_rounds ({self.max_rounds}) must be >= "
                f"min_rounds ({self.min_rounds})",
            )
        if self.fanout_ceiling < self.max_fanout:
            raise ParamError(
                "fanout_ceiling",
                f"fanout_ceiling ({self.fanout_ceiling}) must be >= "
                f"max_fanout ({self.max_fanout})",
            )
        if self.min_batch_rumors < 1:
            raise ParamError(
                "min_batch_rumors",
                f"min_batch_rumors must be >= 1: {self.min_batch_rumors!r}",
            )
        if self.max_batch_rumors < self.min_batch_rumors:
            raise ParamError(
                "max_batch_rumors",
                f"max_batch_rumors ({self.max_batch_rumors}) must be >= "
                f"min_batch_rumors ({self.min_batch_rumors})",
            )
        if self.shrink_margin < 0:
            raise ParamError(
                "shrink_margin",
                f"shrink_margin must be non-negative: {self.shrink_margin!r}",
            )
        for name in ("suspicion_high", "failure_high"):
            value = getattr(self, name)
            if not 0.0 < value <= 1.0:
                raise ParamError(name, f"{name} must be in (0, 1]: {value!r}")
        if self.duplicate_high <= 0:
            raise ParamError(
                "duplicate_high",
                f"duplicate_high must be positive: {self.duplicate_high!r}",
            )
        if self.burst_high <= 1.0:
            raise ParamError(
                "burst_high", f"burst_high must be > 1: {self.burst_high!r}"
            )
        if self.burst_min_publishes < 1:
            raise ParamError(
                "burst_min_publishes",
                "burst_min_publishes must be >= 1: "
                f"{self.burst_min_publishes!r}",
            )
        if self.cooldown_epochs < 0:
            raise ParamError(
                "cooldown_epochs",
                f"cooldown_epochs must be non-negative: {self.cooldown_epochs!r}",
            )
        if not 0.0 < self.pressure_high <= 1.0:
            raise ParamError(
                "pressure_high",
                f"pressure_high must be in (0, 1]: {self.pressure_high!r}",
            )

    # -- wire/config form ----------------------------------------------------

    def to_value(self) -> Dict[str, Any]:
        """Serialize to a plain mapping."""
        return {
            "slo_delivery": self.slo_delivery,
            "epoch": self.epoch,
            "min_fanout": self.min_fanout,
            "max_fanout": self.max_fanout,
            "min_rounds": self.min_rounds,
            "max_rounds": self.max_rounds,
            "fanout_ceiling": self.fanout_ceiling,
            "escalate": self.escalate,
            "min_batch_rumors": self.min_batch_rumors,
            "max_batch_rumors": self.max_batch_rumors,
            "shrink_margin": self.shrink_margin,
            "suspicion_high": self.suspicion_high,
            "failure_high": self.failure_high,
            "duplicate_high": self.duplicate_high,
            "burst_high": self.burst_high,
            "burst_min_publishes": self.burst_min_publishes,
            "cooldown_epochs": self.cooldown_epochs,
            "pressure_high": self.pressure_high,
        }

    @classmethod
    def from_value(cls, value: Dict[str, Any]) -> "AdaptivePolicy":
        """Parse from a (partial) mapping over the defaults.

        Raises:
            ParamError: naming the malformed or unknown key.
        """
        if not isinstance(value, dict):
            raise ParamError(
                "adaptive", f"adaptive policy map expected, got {value!r}"
            )
        known = set(cls().to_value())
        unknown = sorted(set(value) - known)
        if unknown:
            raise ParamError(
                unknown[0], f"unknown adaptive policy key(s): {', '.join(unknown)}"
            )
        base = cls()
        casters = {"escalate": bool}
        ints = {
            "min_fanout", "max_fanout", "min_rounds", "max_rounds",
            "fanout_ceiling", "min_batch_rumors", "max_batch_rumors",
            "burst_min_publishes", "cooldown_epochs",
        }
        kwargs: Dict[str, Any] = {}
        for name, default in base.to_value().items():
            caster = casters.get(name, int if name in ints else float)
            kwargs[name] = _convert(value, name, caster, default=default)
        return cls(**kwargs)

    def with_overrides(self, **overrides: Any) -> "AdaptivePolicy":
        """A copy with the given fields replaced."""
        return replace(self, **overrides)


@dataclass
class EpochSignals:
    """What the controller observed over one epoch.

    ``delivery`` and ``rounds_to_slo`` are ``None`` when no rumor was
    published recently enough (and long enough ago) to judge.
    """

    time: float = 0.0
    delivery: Optional[float] = None
    rounds_to_slo: Optional[int] = None
    rounds_bound: int = 0
    duplicate_ratio: float = 0.0
    suspicion: float = 0.0
    failure_rate: float = 0.0
    publish_rate: float = 0.0
    burst: float = 1.0
    spans_assessed: int = 0
    pressure: float = 0.0

    def to_value(self) -> Dict[str, Any]:
        """Serialize for the JSONL export."""
        return {
            "time": self.time,
            "delivery": self.delivery,
            "rounds_to_slo": self.rounds_to_slo,
            "rounds_bound": self.rounds_bound,
            "duplicate_ratio": self.duplicate_ratio,
            "suspicion": self.suspicion,
            "failure_rate": self.failure_rate,
            "publish_rate": self.publish_rate,
            "burst": self.burst,
            "spans_assessed": self.spans_assessed,
            "pressure": self.pressure,
        }


@dataclass
class ControlDecision:
    """One epoch's verdict: what was observed, what was done, and why."""

    time: float
    epoch: int
    action: str  # "boost" | "shrink" | "hold"
    reasons: List[str] = field(default_factory=list)
    signals: EpochSignals = field(default_factory=EpochSignals)
    fanout: int = 0
    rounds: int = 0
    style: str = GossipStyle.PUSH.value
    max_batch_rumors: int = 1

    def to_value(self) -> Dict[str, Any]:
        """Serialize for the JSONL export."""
        return {
            "time": self.time,
            "epoch": self.epoch,
            "action": self.action,
            "reasons": list(self.reasons),
            "signals": self.signals.to_value(),
            "fanout": self.fanout,
            "rounds": self.rounds,
            "style": self.style,
            "max_batch_rumors": self.max_batch_rumors,
        }

    def __repr__(self) -> str:
        return (
            f"ControlDecision(t={self.time:.2f}, {self.action}, "
            f"f={self.fanout}, r={self.rounds}, style={self.style}, "
            f"reasons={self.reasons})"
        )


class AdaptiveController:
    """The per-group control loop: observe -> decide -> apply, every epoch.

    Deployment-agnostic by construction: it is handed callables for the
    population, the live engines and the health trackers, so the same
    class drives a simulated :class:`~repro.core.api.GossipGroup` or any
    other deployment that can enumerate its engines.

    Args:
        hub: the group's metrics hub (signals in, decisions out).
        policy: the validated knobs (defaults used when omitted).
        population: endpoint count, as a value or zero-arg callable.
        engines: zero-arg callable yielding the live
            :class:`~repro.core.engine.GossipEngine` instances to steer.
        healths: optional zero-arg callable yielding the
            :class:`~repro.core.health.PeerHealth` trackers to read
            suspicion mass from (defaults to the engines' own).

    The controller re-applies its chosen parameters to *every* engine each
    epoch, which also heals the case where a node re-registered mid-epoch
    and was handed the coordinator's static parameters again.
    """

    def __init__(
        self,
        hub,
        policy: Optional[AdaptivePolicy] = None,
        *,
        population,
        engines: Callable[[], Iterable[Any]],
        healths: Optional[Callable[[], Iterable[Any]]] = None,
    ) -> None:
        self.hub = hub
        self.policy = policy if policy is not None else AdaptivePolicy()
        self._population = (
            population if callable(population) else (lambda: population)
        )
        self._engines = engines
        self._healths = healths
        self.stats = hub.control
        # Targets (set from the first engine seen, then steered).
        self._base_params: Optional[GossipParams] = None
        self._base_level = 0  # escalation level of the configured style
        self._fanout = 0
        self._rounds = 0
        self._level = 0
        self._batch = 1
        self._epoch_index = 0
        self._cooldown = 0
        # Counter snapshots for per-epoch deltas.
        self._last_counts: Dict[str, int] = {}
        self._publish_ewma: Optional[float] = None
        self._saw_traffic = False
        self._scheduler = None
        self._stopped = False

    # -- lifecycle -----------------------------------------------------------

    def start(self, scheduler) -> None:
        """Begin epoch ticks on ``scheduler`` (``call_after``/``now``).

        Schedule on the *simulator* (not a node's scheduler) so the
        control plane survives node crashes.
        """
        self._scheduler = scheduler
        scheduler.call_after(self.policy.epoch, self._tick)

    def stop(self) -> None:
        """Stop ticking after the current epoch."""
        self._stopped = True

    def _tick(self) -> None:
        if self._stopped:
            return
        self.epoch_tick()
        self._scheduler.call_after(self.policy.epoch, self._tick)

    # -- the loop ------------------------------------------------------------

    def epoch_tick(self) -> Optional[ControlDecision]:
        """Run one observe -> decide -> apply cycle (normally scheduled).

        Returns the recorded decision, or ``None`` when no engine exists
        yet (nothing to steer, nothing recorded).
        """
        engines = list(self._engines())
        if not engines:
            return None
        if self._base_params is None:
            self._seed_targets(engines[0].params)
        self._epoch_index += 1
        self.stats.epochs += 1
        signals = self._observe()
        decision = self._decide(signals)
        self._apply(engines, decision)
        self.hub.decisions.append(decision)
        now = signals.time
        self.hub.series("control.fanout").record(now, self._fanout)
        self.hub.series("control.rounds").record(now, self._rounds)
        self.hub.series("control.level").record(now, self._level)
        return decision

    def _seed_targets(self, params: GossipParams) -> None:
        policy = self.policy
        self._base_params = params
        try:
            self._base_level = _ESCALATION_LADDER.index(params.style)
        except ValueError:
            # Styles off the push ladder (pull, anti-entropy, feedback,
            # lazy-push) are already periodic-repair styles; the
            # controller steers fanout/rounds/batch but not the mode.
            self._base_level = -1
        self._level = max(self._base_level, 0) if self._base_level >= 0 else -1
        self._fanout = min(max(params.fanout, policy.min_fanout), policy.max_fanout)
        self._rounds = min(max(params.rounds, policy.min_rounds), policy.max_rounds)
        self._batch = min(
            max(params.max_batch_rumors, policy.min_batch_rumors),
            policy.max_batch_rumors,
        )

    # -- observe -------------------------------------------------------------

    def _counter_delta(self, name: str, value: int) -> int:
        previous = self._last_counts.get(name, 0)
        self._last_counts[name] = value
        return max(0, value - previous)

    def _observe(self) -> EpochSignals:
        policy = self.policy
        now = self._scheduler.now if self._scheduler is not None else 0.0
        population = max(2, int(self._population()))

        # Delivery: judge rumors published long enough ago to have had a
        # chance to spread, but recently enough to reflect current
        # conditions (a sliding 2.5-epoch lookback).  The grace period is
        # the *expected dissemination time* of the current knobs (rounds x
        # gossip period, plus half an epoch of slack): judging a rumor
        # that is still mid-spread reads as a delivery breach and triggers
        # a boost nothing was wrong to need.
        period = self._base_params.period if self._base_params else 1.0
        grace = 0.5 * policy.epoch + self._rounds * period
        newest = now - grace
        oldest = newest - 2.5 * policy.epoch
        fractions: List[float] = []
        rounds_needed: List[int] = []
        others = population - 1
        for span in self.hub.tracer.spans():
            published = span.publish_time
            if published is None or not oldest <= published <= newest:
                continue
            fractions.append(min(1.0, span.delivered_count / others))
            reached = span.rounds_to_fraction(policy.slo_delivery, population)
            if reached is not None:
                rounds_needed.append(reached)
        delivery = sum(fractions) / len(fractions) if fractions else None
        rounds_to_slo = max(rounds_needed) if rounds_needed else None

        duplicates = self._counter_delta(
            "gossip.duplicate", self.hub.counter("gossip.duplicate").value
        )
        fresh = self._counter_delta(
            "gossip.fresh", self.hub.counter("gossip.fresh").value
        )
        duplicate_ratio = duplicates / fresh if fresh else 0.0

        failures = self._counter_delta(
            "health.send_failures", self.hub.health.send_failures
        )
        sent = self._counter_delta("net.sent", self.hub.counter("net.sent").value)
        failure_rate = failures / sent if sent else 0.0

        suspicion = 0.0
        if self._healths is not None:
            suspected: set = set()
            for health in self._healths():
                suspected.update(health.suspected_peers())
            suspicion = len(suspected) / others
        else:
            healths = [
                engine.health
                for engine in self._engines()
                if getattr(engine, "health", None) is not None
            ]
            suspected = set()
            for health in healths:
                suspected.update(health.suspected_peers())
            suspicion = len(suspected) / others if healths else 0.0

        published = self._counter_delta(
            "gossip.publish", self.hub.counter("gossip.publish").value
        )
        publish_rate = published / policy.epoch
        if self._publish_ewma is None:
            self._publish_ewma = publish_rate
            burst = 1.0
        else:
            baseline = self._publish_ewma
            # A publish after true silence is not a burst (there is no
            # baseline to be a multiple of); delivery and rounds signals
            # cover that case.
            burst = publish_rate / baseline if baseline > 1e-9 else 1.0
            self._publish_ewma = 0.7 * baseline + 0.3 * publish_rate

        # Overload pressure: the worst engine's view of its bounded
        # outbox/ingest saturation (0.0 everywhere when overload
        # protection is off, so the signal is inert by construction).
        pressure = 0.0
        for engine in self._engines():
            pressure = max(
                pressure, getattr(engine, "overload_pressure", 0.0)
            )

        return EpochSignals(
            time=now,
            delivery=delivery,
            rounds_to_slo=rounds_to_slo,
            rounds_bound=expected_rounds(population, max(1, self._fanout)),
            duplicate_ratio=duplicate_ratio,
            suspicion=min(1.0, suspicion),
            failure_rate=min(1.0, failure_rate),
            publish_rate=publish_rate,
            burst=burst,
            spans_assessed=len(fractions),
            pressure=min(1.0, pressure),
        )

    # -- decide --------------------------------------------------------------

    def _breach_reasons(self, signals: EpochSignals) -> List[str]:
        """Signals that say the SLO is (about to be) missed -- these earn
        the full fast boost."""
        policy = self.policy
        reasons: List[str] = []
        if signals.delivery is not None and signals.delivery < policy.slo_delivery:
            reasons.append(
                f"delivery {signals.delivery:.3f} < SLO {policy.slo_delivery:.3f}"
            )
        return reasons

    def _guard_reasons(self, signals: EpochSignals) -> List[str]:
        """Stress that has *not* dented delivery (yet): churn suspicion,
        send failures, slow rounds.  These escalate the gossip mode (cheap
        insurance) and block shrinking, but never raise fanout/rounds --
        raising capacity the SLO does not need is exactly the
        over-provisioning this controller exists to avoid."""
        policy = self.policy
        reasons: List[str] = []
        if signals.suspicion > policy.suspicion_high:
            reasons.append(
                f"suspicion {signals.suspicion:.3f} > {policy.suspicion_high:.3f}"
            )
        if signals.failure_rate > policy.failure_high:
            reasons.append(
                f"send failures {signals.failure_rate:.3f} > "
                f"{policy.failure_high:.3f}"
            )
        # One round of slack: spans in the judged window spread under the
        # *previous* knobs, while the bound reflects the current fanout --
        # without hysteresis a just-boosted controller would read its own
        # past as fresh stress and pin the cooldown forever.
        if (
            signals.rounds_to_slo is not None
            and signals.rounds_to_slo > signals.rounds_bound + 1
        ):
            reasons.append(
                f"rounds-to-SLO {signals.rounds_to_slo} > "
                f"bound {signals.rounds_bound} + 1"
            )
        return reasons

    def _burst_reasons(self, signals: EpochSignals) -> List[str]:
        """A publish burst (enough arrivals to be real, well above the
        EWMA baseline) -- answered by widening batching only."""
        policy = self.policy
        if (
            signals.burst >= policy.burst_high
            and signals.publish_rate * policy.epoch >= policy.burst_min_publishes
        ):
            return [
                f"publish burst x{signals.burst:.1f} >= x{policy.burst_high:.1f}"
            ]
        return []

    def _decide(self, signals: EpochSignals) -> ControlDecision:
        policy = self.policy
        if signals.publish_rate > 0:
            self._saw_traffic = True
        breach = self._breach_reasons(signals)
        guard = self._guard_reasons(signals)
        burst = self._burst_reasons(signals)
        if breach:
            self.stats.slo_breaches += 1

        if signals.pressure >= policy.pressure_high:
            # The overload subsystem is shedding: every other response is
            # suppressed -- boosting fanout or widening batches into a
            # saturated network only raises the shed rate.  Narrow one
            # step and let the priority ladder protect payloads; delivery
            # recovers once pressure drains.
            action = "shrink"
            reasons = [
                f"overload pressure {signals.pressure:.2f} >= "
                f"{policy.pressure_high:.2f}: narrowing, not boosting"
            ] + breach
            self._pressure_relief()
            self.stats.pressure_reliefs += 1
            self._cooldown = policy.cooldown_epochs
        elif breach:
            action = "boost"
            reasons = breach + guard + burst
            self._boost(signals, burst=bool(burst))
            self._cooldown = policy.cooldown_epochs
        elif guard or burst:
            # Delivery is holding: keep current capacity, add the cheap
            # insurance (mode escalation / wider batching), and push the
            # shrink horizon out so nothing is given back mid-stress.
            changed = self._guard(signals, escalate=bool(guard), widen=bool(burst))
            action = "boost" if changed else "hold"
            reasons = guard + burst
            if not changed:
                reasons = reasons + ["holding capacity"]
                self.stats.holds += 1
            self._cooldown = policy.cooldown_epochs
        else:
            # A group that *was* publishing and went quiet is calm too:
            # with nothing in flight there is no delivery to endanger, and
            # holding boosted capacity would burn periodic-digest traffic
            # forever (the whole point of shrinking).  Before the first
            # publish, though, "no verdict" is just not-started -- hold.
            idle = (
                signals.delivery is None
                and signals.publish_rate == 0.0
                and self._saw_traffic
            )
            calm = idle or (
                signals.delivery is not None
                and signals.delivery >= policy.slo_delivery + policy.shrink_margin
            )
            at_floor = (
                self._fanout <= policy.min_fanout
                and self._rounds <= policy.min_rounds
                and (self._level <= max(self._base_level, 0) or self._level < 0)
                and self._batch <= policy.min_batch_rumors
            )
            if calm and not at_floor:
                if self._cooldown > 0:
                    self._cooldown -= 1
                    self.stats.cooldown_holds += 1
                    action = "hold"
                    reasons = [f"cooldown ({self._cooldown + 1} epochs left)"]
                else:
                    action = "shrink"
                    reasons = [
                        "idle: nothing published, nothing at risk"
                        if idle else
                        f"calm: delivery "
                        f"{(signals.delivery or 0.0):.3f} >= SLO + margin"
                    ]
                    if signals.duplicate_ratio > policy.duplicate_high:
                        reasons.append(
                            f"redundancy to spare (dup ratio "
                            f"{signals.duplicate_ratio:.2f})"
                        )
                    self._shrink(signals)
            else:
                if self._cooldown > 0:
                    self._cooldown -= 1
                action = "hold"
                reasons = ["at floor" if at_floor else "no verdict yet"
                           if signals.delivery is None else "holding SLO"]
                self.stats.holds += 1

        if action == "boost":
            self.stats.boosts += 1
        elif action == "shrink":
            self.stats.shrinks += 1
        level = self._level
        style = (
            _ESCALATION_LADDER[level].value
            if 0 <= level < len(_ESCALATION_LADDER)
            else (self._base_params.style.value if self._base_params else "push")
        )
        return ControlDecision(
            time=signals.time,
            epoch=self._epoch_index,
            action=action,
            reasons=reasons,
            signals=signals,
            fanout=self._fanout,
            rounds=self._rounds,
            style=style,
            max_batch_rumors=self._batch,
        )

    def _pressure_relief(self) -> None:
        """Back off under overload: one step narrower, never wider.

        The inverse of :meth:`_boost` in spirit but deliberately gentler
        -- the overload shed ladder is already protecting payloads, the
        controller only has to stop feeding the queues.  Batching halves
        (smaller wire frames drain faster through a throttled consumer)
        and fanout steps down; the mode is left alone so the periodic
        digests keep repairing whatever was shed.
        """
        policy = self.policy
        self._batch = max(policy.min_batch_rumors, self._batch // 2)
        if self._fanout > policy.min_fanout:
            self._fanout -= 1

    def _boost(self, signals: EpochSignals, burst: bool = False) -> None:
        """Respond to an SLO breach within one epoch: fast, decisive."""
        policy = self.policy
        self._fanout = min(policy.max_fanout, self._fanout + 2)
        self._rounds = min(policy.max_rounds, self._rounds + 2)
        # Churn and loss defeat pure push (a rumor a down node missed is
        # gone): escalate to push-pull so the periodic digest repairs it.
        self._escalate_mode()
        # Batching is free capacity (envelopes only coalesce what is
        # queued): any breach widens it, burst or not.
        self._batch = policy.max_batch_rumors

    def _guard(
        self, signals: EpochSignals, escalate: bool, widen: bool
    ) -> bool:
        """The stress-without-breach response: mode insurance and batch
        widening only.  Returns True when a knob actually moved."""
        changed = False
        if escalate:
            changed = self._escalate_mode() or changed
        if widen and self._batch < self.policy.max_batch_rumors:
            self._batch = self.policy.max_batch_rumors
            changed = True
        return changed

    def _escalate_mode(self) -> bool:
        """One step up the style ladder, if allowed and not already there."""
        if (
            self.policy.escalate
            and 0 <= self._level < len(_ESCALATION_LADDER) - 1
        ):
            self._level += 1
            self.stats.escalations += 1
            return True
        return False

    def _shrink(self, signals: EpochSignals) -> None:
        """Give capacity back one gentle step at a time (calm only).

        De-escalation comes first: the periodic digests of an escalated
        style cost fanout-proportional traffic every period whether or not
        anything is published, so they are the most valuable thing to turn
        off.  Batching goes last -- wide batches are nearly free (they
        only coalesce what is queued), narrowing them merely restores the
        per-rumor latency profile of calm operation.
        """
        policy = self.policy
        if self._level > max(self._base_level, 0) and self._level > 0:
            self._level -= 1
            self.stats.deescalations += 1
            return
        if self._fanout > policy.min_fanout:
            self._fanout -= 1
            return
        if self._rounds > policy.min_rounds:
            self._rounds -= 1
            return
        if self._batch > policy.min_batch_rumors:
            self._batch = max(policy.min_batch_rumors, self._batch // 2)

    # -- apply ---------------------------------------------------------------

    def _apply(self, engines: Sequence[Any], decision: ControlDecision) -> None:
        for engine in engines:
            engine.fanout_ceiling = self.policy.fanout_ceiling
            current = engine.params
            target = self._target_params(current)
            if target != current:
                was_periodic = current.style is not GossipStyle.PUSH
                engine.params = target
                self.stats.param_updates += 1
                if target.style is not GossipStyle.PUSH and not was_periodic:
                    # Escalated into a periodic style: the loop only
                    # starts on an explicit kick.
                    engine.start_periodic_rounds()

    def _target_params(self, current: GossipParams) -> GossipParams:
        style = current.style
        if 0 <= self._level < len(_ESCALATION_LADDER) and self._base_level >= 0:
            style = _ESCALATION_LADDER[self._level]
        return replace(
            current,
            fanout=self._fanout,
            rounds=self._rounds,
            style=style,
            max_batch_rumors=self._batch,
            peer_sample_size=max(current.peer_sample_size, self._fanout),
        )

    # -- diagnostics ---------------------------------------------------------

    def alert_timeline(self) -> List[Any]:
        """The SLO alert edges on the hub, in time order.

        The :class:`~repro.obs.windows.SloBurnMonitor` (wired by
        ``GossipConfig(telemetry=...)``) appends
        :class:`~repro.obs.windows.Alert` fire/clear edges to
        ``hub.alerts``; the controller and ``repro obs report`` read the
        same timeline.  Empty when telemetry is off.
        """
        return list(self.hub.alerts)

    def slo_alert_firing(self) -> bool:
        """Whether the burn-rate monitor's latest edge is still firing."""
        alerts = self.hub.alerts
        return bool(alerts) and alerts[-1].state == "firing"

    @property
    def targets(self) -> Dict[str, Any]:
        """The knob values the controller is currently steering toward."""
        return {
            "fanout": self._fanout,
            "rounds": self._rounds,
            "level": self._level,
            "max_batch_rumors": self._batch,
            "cooldown": self._cooldown,
        }

    def __repr__(self) -> str:
        return (
            f"AdaptiveController(epoch={self._epoch_index}, f={self._fanout}, "
            f"r={self._rounds}, level={self._level}, batch={self._batch})"
        )
