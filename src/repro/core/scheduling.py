"""Scheduler abstraction: one gossip engine, two notions of time.

The engine needs timers (pull rounds, anti-entropy, peer refresh) and a
clock.  Inside the simulator those map to the node's
:meth:`~repro.simnet.process.Process.set_timer`; on a real deployment they
map to ``threading.Timer``.  The engine only sees this interface.
"""

from __future__ import annotations

import random
import threading
import time
from typing import Callable, Optional, Protocol

from repro.simnet.process import Process


class CancellableTimer(Protocol):
    def cancel(self) -> None:  # pragma: no cover - protocol
        """Cancel the pending timer."""
        ...


class Scheduler(Protocol):
    """What the gossip engine needs from its host."""

    @property
    def now(self) -> float:  # pragma: no cover - protocol
        ...

    def call_after(
        self, delay: float, callback: Callable[[], None]
    ) -> CancellableTimer:  # pragma: no cover - protocol
        """Schedule ``callback`` after ``delay`` seconds."""
        ...


class ProcessScheduler:
    """Adapter over a simulated process.

    Timers automatically die with the process (crash semantics), which is
    exactly the fault model the experiments need.
    """

    def __init__(self, process: Process) -> None:
        self._process = process

    @property
    def now(self) -> float:
        return self._process.now

    def call_after(self, delay: float, callback: Callable[[], None]):
        """Schedule on the simulated process (dies with it on crash)."""
        return self._process.set_timer(delay, callback)


class ThreadScheduler:
    """Real-time scheduler over ``threading.Timer`` (HTTP deployments)."""

    def __init__(self) -> None:
        self._timers: list = []
        self._lock = threading.Lock()
        self._closed = False

    @property
    def now(self) -> float:
        return time.monotonic()

    def call_after(self, delay: float, callback: Callable[[], None]):
        """Schedule on a daemon ``threading.Timer``."""
        with self._lock:
            if self._closed:
                return _NullTimer()
            timer = threading.Timer(delay, callback)
            timer.daemon = True
            self._timers.append(timer)
            timer.start()
            return timer

    def close(self) -> None:
        """Cancel all outstanding timers (orderly node shutdown)."""
        with self._lock:
            self._closed = True
            for timer in self._timers:
                timer.cancel()
            self._timers.clear()


class _NullTimer:
    def cancel(self) -> None:
        pass
