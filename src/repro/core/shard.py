"""Parent-side facade for a sharded gossip deployment.

:class:`ShardedGossipGroup` presents (a subset of) the
:class:`~repro.core.api.GossipGroup` surface -- ``setup`` / ``publish`` /
``run_for`` / the delivery measurements -- while the simulation itself runs
in K worker processes driven by a
:class:`~repro.simnet.shard.ShardCluster`.  The parent holds no simulator:
it orchestrates the Figure-1 handshake by command (activation on the
initiator's shard, subscription everywhere, eager join, view refresh) and
advances simulated time through the conservative barrier loop.

Use ``GossipConfig(shards=K).build()`` rather than instantiating this
directly; ``shards=1`` builds the plain single-process group, whose wire
behaviour is byte-for-byte unchanged.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.core.message import GossipStyle
from repro.core.params import ParamError
from repro.core.shardworker import gossip_shard_worker, topology_names
from repro.obs.hub import MetricsHub, default_hub
from repro.simnet.latency import FixedLatency
from repro.simnet.shard import ShardCluster, ShardPlan, compute_lookahead


class ShardedGossipGroup:
    """One WS-Gossip deployment simulated across K worker processes."""

    def __init__(self, config: Any) -> None:
        if config.adaptive is not None:
            raise ParamError(
                "shards",
                "adaptive control is not supported with shards > 1 (the "
                "controller reads one process-local hub); run adaptive "
                "scenarios with shards=1",
            )
        self.config = config
        try:
            self.plan = ShardPlan(
                topology_names(config.n_disseminators, config.n_consumers),
                config.shards,
                config.shard_map,
            )
        except ValueError as exc:
            key = "shard_map" if config.shard_map is not None else "shards"
            raise ParamError(key, str(exc)) from exc
        latency = config.latency if config.latency is not None else FixedLatency(0.001)
        try:
            self.lookahead = compute_lookahead(latency)
        except ValueError as exc:
            raise ParamError("latency", str(exc)) from exc
        self.cluster = ShardCluster(
            self.plan,
            self.lookahead,
            gossip_shard_worker,
            (config.to_dict(),),
        )
        self._coord_shard = self.plan.shard_of("coordinator")
        self._init_shard = self.plan.shard_of("initiator")
        self.activity_id: Optional[str] = None
        self._setup_done = False

    # -- topology ------------------------------------------------------------

    @property
    def population(self) -> int:
        """Number of application endpoints (initiator + d* + c*)."""
        return 1 + self.config.n_disseminators + self.config.n_consumers

    @property
    def barriers(self) -> int:
        """Barrier windows executed so far (sync-overhead diagnostics)."""
        return self.cluster.barriers

    @property
    def now(self) -> float:
        return self.cluster.now

    def worker_busy(self) -> List[float]:
        """Cumulative per-shard window-execution CPU seconds.

        ``max(worker_busy())`` is the critical path: the wall-clock a
        strong-scaling run approaches when every shard has its own core.
        """
        return list(self.cluster.busy)

    # -- orchestration -------------------------------------------------------

    def _state(self, shard_index: int) -> Dict[str, Any]:
        return self.cluster.command(shard_index, {"op": "state"})

    def setup(self, settle: float = 2.0, eager_join: Optional[bool] = None) -> str:
        """Activate, subscribe and refresh -- GossipGroup.setup by command."""
        if self._setup_done:
            if self.activity_id is None:
                raise RuntimeError("previous setup did not complete")
            return self.activity_id
        self._setup_done = True

        addresses = self.cluster.command(self._coord_shard, {"op": "addresses"})

        for _ in range(5):  # activation is control traffic: retry on loss
            self.cluster.command(
                self._init_shard,
                {"op": "activate", "activation_address": addresses["activation"]},
            )
            self.run_for(settle)
            state = self._state(self._init_shard)
            if state["activity_id"] is not None:
                break
        if state["activity_id"] is None:
            raise RuntimeError("activation did not complete; is the coordinator up?")
        self.activity_id = state["activity_id"]

        for _ in range(5):  # subscriptions retried until acknowledged
            self.cluster.broadcast(
                {
                    "op": "subscribe",
                    "subscription_address": addresses["subscription"],
                    "activity_id": self.activity_id,
                }
            )
            self.run_for(settle)
            states = self.cluster.broadcast({"op": "state"})
            if not any(s["subscribe_pending"] for s in states):
                break

        style_name = self.config.params.get("style")
        style = GossipStyle(style_name) if style_name else GossipStyle.PUSH
        if eager_join is None:
            eager_join = style is not GossipStyle.PUSH
        if eager_join:
            context_xml = self._state(self._init_shard)["context"]
            self.cluster.broadcast({"op": "join", "context": context_xml})
            self.run_for(settle)

        for _ in range(5):  # the refresh reply rides the same lossy fabric
            self.cluster.command(self._init_shard, {"op": "refresh_view"})
            self.run_for(settle)
            if self._state(self._init_shard)["view_ready"]:
                break
        return self.activity_id

    def publish(self, value: Any) -> str:
        """Disseminate one data item from the initiator."""
        if self.activity_id is None:
            raise RuntimeError("call setup() before publish()")
        reply = self.cluster.command(
            self._init_shard, {"op": "publish", "value": value}
        )
        return reply["message_id"]

    def run_for(self, duration: float) -> None:
        """Advance simulated time by ``duration`` seconds (barrier loop)."""
        self.cluster.run_until(self.cluster.now + duration)

    # -- measurements --------------------------------------------------------

    def _measure(self, gossip_id: str) -> Dict[str, Any]:
        receivers: List[str] = []
        times: List[float] = []
        for reply in self.cluster.broadcast(
            {"op": "measure", "message_ids": [gossip_id]}
        ):
            receivers.extend(reply["receivers"][gossip_id])
            times.extend(reply["times"][gossip_id])
        return {"receivers": receivers, "times": times}

    def receivers(self, gossip_id: str) -> List[str]:
        """Names of nodes (initiator excluded) whose app saw the item."""
        return self._measure(gossip_id)["receivers"]

    def delivered_fraction(self, gossip_id: str) -> float:
        """Fraction of non-initiator app endpoints that received the item."""
        others = self.population - 1
        if others <= 0:
            return 1.0
        return len(self.receivers(gossip_id)) / others

    def is_atomic(self, gossip_id: str) -> bool:
        return self.delivered_fraction(gossip_id) >= 1.0

    def delivery_times(self, gossip_id: str) -> List[float]:
        """First-delivery times across receiving nodes (all shards)."""
        return self._measure(gossip_id)["times"]

    def merged_hub(self) -> MetricsHub:
        """A fresh hub holding the K shard hubs merged (see
        :meth:`~repro.obs.hub.MetricsHub.merge_snapshot` for the rules)."""
        hub = MetricsHub(parent=default_hub(), name="sharded-gossip-group")
        for reply in self.cluster.broadcast({"op": "hub"}):
            hub.merge_snapshot(reply["state"])
        return hub

    @property
    def hub(self) -> MetricsHub:
        """Merged-at-call-time observability hub."""
        return self.merged_hub()

    def message_counts(self) -> Dict[str, int]:
        """Network-level counters summed across every shard."""
        return self.merged_hub().counters()

    def trace_digests(self) -> List[Dict[str, Any]]:
        """Per-shard run digests (determinism checks; needs ``trace=True``)."""
        return [
            {
                "digest": reply["digest"],
                "trace_events": reply["trace_events"],
                "events_executed": reply["events_executed"],
            }
            for reply in self.cluster.broadcast({"op": "trace_digest"})
        ]

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        self.cluster.close()

    def __enter__(self) -> "ShardedGossipGroup":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"ShardedGossipGroup(n={self.population}, "
            f"shards={self.plan.shards}, now={self.cluster.now:.3f}, "
            f"barriers={self.cluster.barriers})"
        )
