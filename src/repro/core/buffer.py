"""Per-activity message store: dedup, retention and digests.

The store keeps the full wire bytes of each distinct data item so pull and
anti-entropy styles can re-transmit the *original* envelope (headers and
all) to lagging peers.  Capacity-bounded with FIFO eviction -- evicted
identities are remembered in the seen-set so re-receipt of an old message
does not count as fresh.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set


@dataclass
class StoredMessage:
    """One retained data item."""

    message_id: str
    data: bytes
    received_at: float
    origin: str


class MessageStore:
    """Seen-set plus bounded payload retention for one activity.

    ``capacity`` bounds only the retained payloads; the seen-set of
    identities is unbounded by design (identities are small and forgetting
    one would re-trigger dissemination of an old message).
    """

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1: {capacity!r}")
        self.capacity = capacity
        self._messages: "OrderedDict[str, StoredMessage]" = OrderedDict()
        self._seen: Set[str] = set()

    def is_new(self, message_id: str) -> bool:
        """True when this identity has never been seen."""
        return message_id not in self._seen

    def add(self, message_id: str, data: bytes, received_at: float, origin: str) -> bool:
        """Record a message; returns True when it was new.

        Duplicate adds are no-ops (the first-received bytes are kept).
        """
        if message_id in self._seen:
            return False
        self._seen.add(message_id)
        self._messages[message_id] = StoredMessage(
            message_id=message_id,
            data=data,
            received_at=received_at,
            origin=origin,
        )
        while len(self._messages) > self.capacity:
            self._messages.popitem(last=False)
        return True

    def get(self, message_id: str) -> Optional[StoredMessage]:
        """The retained message, or ``None`` if never seen or evicted."""
        return self._messages.get(message_id)

    def digest(self) -> List[str]:
        """Identities currently retained, oldest first.

        This is what digest/anti-entropy exchanges advertise; evicted
        identities are deliberately excluded (they can no longer be served).
        """
        return list(self._messages)

    def missing_from(self, remote_digest: Iterable[str]) -> List[str]:
        """Identities in ``remote_digest`` that this store has never seen."""
        return [message_id for message_id in remote_digest if message_id not in self._seen]

    def not_in(self, remote_digest: Iterable[str]) -> List[str]:
        """Retained identities absent from ``remote_digest``."""
        remote = set(remote_digest)
        return [message_id for message_id in self._messages if message_id not in remote]

    @property
    def seen_count(self) -> int:
        return len(self._seen)

    def __len__(self) -> int:
        return len(self._messages)

    def __contains__(self, message_id: str) -> bool:
        return message_id in self._seen
