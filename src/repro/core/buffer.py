"""Per-activity message store: dedup, retention and digests.

The store keeps the full wire bytes of each distinct data item so pull and
anti-entropy styles can re-transmit the *original* envelope (headers and
all) to lagging peers.  Capacity-bounded with FIFO eviction -- evicted
identities are remembered in the seen-set so re-receipt of an old message
does not count as fresh.

The seen-set itself is bounded by generation rotation: identities live in
a *current* set until it fills to ``seen_capacity``, then the whole set is
demoted to *previous* and a fresh current set starts; the demoted set is
dropped on the next rotation.  Membership checks consult both sets, so an
identity is remembered for at least ``seen_capacity`` further distinct
identities after it was recorded -- the retention window.  Anything still
retained as a payload is re-pinned into the new current set on rotation,
so a retained message can never be mistaken for new.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Set


@dataclass
class StoredMessage:
    """One retained data item."""

    message_id: str
    data: bytes
    received_at: float
    origin: str


class MessageStore:
    """Seen-set plus bounded payload retention for one activity.

    ``capacity`` bounds the retained payloads; ``seen_capacity`` bounds the
    dedup memory via two-set generation rotation (default
    ``max(1024, 4 * capacity)``, so small stores still remember identities
    long past eviction).  An identity is guaranteed to be remembered while
    fewer than ``seen_capacity`` *newer* distinct identities have been
    recorded -- outside that window, epidemic dedup upstream (peers that
    still remember) is the backstop, matching Demers-style death
    certificates aging out.
    """

    def __init__(self, capacity: int = 1024, seen_capacity: Optional[int] = None) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1: {capacity!r}")
        if seen_capacity is None:
            seen_capacity = max(1024, 4 * capacity)
        if seen_capacity < capacity:
            raise ValueError(
                f"seen_capacity must be >= capacity ({capacity}): {seen_capacity!r}"
            )
        self.capacity = capacity
        self.seen_capacity = seen_capacity
        self._messages: "OrderedDict[str, StoredMessage]" = OrderedDict()
        self._seen_current: Set[str] = set()
        self._seen_previous: Set[str] = set()
        self.rotations = 0

    # -- dedup --------------------------------------------------------------

    def is_new(self, message_id: str) -> bool:
        """True when this identity is not remembered (either generation)."""
        return (
            message_id not in self._seen_current
            and message_id not in self._seen_previous
        )

    def mark_seen(self, message_id: str) -> None:
        """Remember an identity without retaining a payload.

        Used by replay to restore dedup knowledge for messages whose
        payloads had already been evicted before the crash.
        """
        if not self.is_new(message_id):
            return
        self._rotate_if_full()
        self._seen_current.add(message_id)

    def _rotate_if_full(self) -> None:
        if len(self._seen_current) < self.seen_capacity:
            return
        self._seen_previous = self._seen_current
        self._seen_current = set()
        # Retained payloads must never be mistaken for new: re-pin them
        # into the fresh generation immediately.
        self._seen_current.update(self._messages)
        self.rotations += 1

    # -- retention ----------------------------------------------------------

    def add(self, message_id: str, data: bytes, received_at: float, origin: str) -> bool:
        """Record a message; returns True when it was new.

        Duplicate adds are no-ops (the first-received bytes are kept).
        """
        if not self.is_new(message_id):
            return False
        self._rotate_if_full()
        self._seen_current.add(message_id)
        self._messages[message_id] = StoredMessage(
            message_id=message_id,
            data=data,
            received_at=received_at,
            origin=origin,
        )
        while len(self._messages) > self.capacity:
            self._messages.popitem(last=False)
        return True

    def get(self, message_id: str) -> Optional[StoredMessage]:
        """The retained message, or ``None`` if never seen or evicted."""
        return self._messages.get(message_id)

    def messages(self) -> Iterator[StoredMessage]:
        """Retained messages, oldest first (snapshot source for the WAL)."""
        return iter(self._messages.values())

    def digest(self) -> List[str]:
        """Identities currently retained, oldest first.

        This is what digest/anti-entropy exchanges advertise; evicted
        identities are deliberately excluded (they can no longer be served).
        """
        return list(self._messages)

    def missing_from(self, remote_digest: Iterable[str]) -> List[str]:
        """Identities in ``remote_digest`` that this store does not remember."""
        current = self._seen_current
        previous = self._seen_previous
        return [
            message_id
            for message_id in remote_digest
            if message_id not in current and message_id not in previous
        ]

    def not_in(self, remote_digest: Iterable[str]) -> List[str]:
        """Retained identities absent from ``remote_digest``."""
        remote = set(remote_digest)
        return [message_id for message_id in self._messages if message_id not in remote]

    def seen_identities(self) -> List[str]:
        """Every identity currently remembered (both generations)."""
        return sorted(self._seen_current | self._seen_previous)

    @property
    def seen_count(self) -> int:
        # The generations are kept disjoint (an identity is only added to
        # current when absent from both), except for retained payloads
        # re-pinned across a rotation.
        return len(self._seen_current | self._seen_previous)

    def __len__(self) -> int:
        return len(self._messages)

    def __contains__(self, message_id: str) -> bool:
        return not self.is_new(message_id)
