"""Overload protection: policy knobs, token buckets, and the shed ladder.

The paper positions WS-Gossip as middleware that must stay scalable "even
in large-scale settings"; device-scale deployments die not from steady
load but from bursts that exceed node capacity.  This module holds the
validated :class:`OverloadPolicy` (opt-in via
``GossipConfig(overload=...)``), the deterministic :class:`TokenBucket`
used by both the edge admission gate and the engine's ingest gate, and
:class:`OverloadError`, the backpressure signal raised at the hard limit.

The shed-priority ladder (cheapest first -- see docs/RESILIENCE.md,
"Overload and backpressure"):

1. **Digests / duplicate advertisements** (``shed_digest``) -- periodic
   pull digests and lazy-push ads are re-sent every period; dropping one
   costs a round of latency, never data.
2. **Feedback** (``shed_feedback``) -- feedback-style stop signals only
   modulate redundancy.
3. **Pull responses** (``shed_pull``) -- the requester re-pulls next
   period.
4. **Eager rumor payloads** -- only at the hard limit (pressure 1.0);
   shedding these costs actual dissemination work, so everything else
   goes first.

Each rung names the *pressure* (queue fill fraction, in ``[0, 1]``) at or
above which that class is shed; the ladder must be ordered
``shed_digest <= shed_feedback <= shed_pull <= 1.0``.  Hysteresis: once
pressure crosses ``high_watermark`` the node counts itself overloaded
until pressure falls back below ``low_watermark``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict

from repro.core.params import ParamError, _convert


class OverloadError(RuntimeError):
    """Backpressure: the local node refused work because it is overloaded.

    Raised by ``GossipEngine.publish`` when the outbox hard limit is hit
    with an :class:`OverloadPolicy` active, and used by the edges to map
    admission refusals onto 429 responses.  Carries ``retry_after`` so
    callers can back off for the advertised interval instead of retrying
    into the storm.
    """

    def __init__(self, reason: str, *, pressure: float = 1.0,
                 retry_after: float = 1.0) -> None:
        super().__init__(reason)
        self.reason = reason
        self.pressure = pressure
        self.retry_after = retry_after


@dataclass(frozen=True)
class OverloadPolicy:
    """Validated knobs of the overload-protection subsystem.

    Attributes:
        outbox_bound: max frames queued across a node's per-destination
            outboxes before the send path starts shedding; the *hard*
            limit at which even eager rumor payloads are refused.
        ingest_capacity: max undrained frames in the bounded ingest
            queue; arrivals past it are shed by the same ladder.
        high_watermark: queue fill fraction at which the node declares
            itself overloaded (pressure signal asserted, shedding per the
            ladder below).
        low_watermark: fill fraction pressure must fall below before the
            overloaded flag clears (hysteresis -- must be < high).
        shed_digest: pressure at which duplicate advertisements and
            periodic digests are shed (cheapest rung, shed first).
        shed_feedback: pressure at which feedback frames are shed.
        shed_pull: pressure at which pull responses are shed.  The
            ladder must be ordered ``shed_digest <= shed_feedback <=
            shed_pull <= 1.0``; eager rumor payloads only shed at 1.0.
        admission_rate: edge token-bucket refill, accepted
            ``POST /v1/gossip`` requests per second (per edge node).
        admission_burst: token-bucket depth -- how many back-to-back
            requests the edge absorbs before 429ing.
        retry_after: seconds advertised in the 429 ``Retry-After``
            header (and in :class:`OverloadError`).
    """

    outbox_bound: int = 256
    ingest_capacity: int = 256
    high_watermark: float = 0.8
    low_watermark: float = 0.5
    shed_digest: float = 0.6
    shed_feedback: float = 0.75
    shed_pull: float = 0.9
    admission_rate: float = 500.0
    admission_burst: int = 64
    retry_after: float = 1.0

    def __post_init__(self) -> None:
        if self.outbox_bound < 1:
            raise ParamError(
                "outbox_bound",
                f"outbox_bound must be >= 1: {self.outbox_bound!r}",
            )
        if self.ingest_capacity < 1:
            raise ParamError(
                "ingest_capacity",
                f"ingest_capacity must be >= 1: {self.ingest_capacity!r}",
            )
        if not 0.0 < self.high_watermark <= 1.0:
            raise ParamError(
                "high_watermark",
                f"high_watermark must be in (0, 1]: {self.high_watermark!r}",
            )
        if not 0.0 < self.low_watermark < self.high_watermark:
            raise ParamError(
                "low_watermark",
                f"low_watermark must be in (0, high_watermark): "
                f"{self.low_watermark!r} (high={self.high_watermark!r})",
            )
        ladder = (
            ("shed_digest", self.shed_digest),
            ("shed_feedback", self.shed_feedback),
            ("shed_pull", self.shed_pull),
        )
        previous = 0.0
        for name, value in ladder:
            if not 0.0 < value <= 1.0:
                raise ParamError(name, f"{name} must be in (0, 1]: {value!r}")
            if value < previous:
                raise ParamError(
                    name,
                    "shed ladder must be ordered shed_digest <= "
                    f"shed_feedback <= shed_pull: {name} ({value!r}) < "
                    f"{previous!r}",
                )
            previous = value
        if self.admission_rate <= 0:
            raise ParamError(
                "admission_rate",
                f"admission_rate must be positive: {self.admission_rate!r}",
            )
        if self.admission_burst < 1:
            raise ParamError(
                "admission_burst",
                f"admission_burst must be >= 1: {self.admission_burst!r}",
            )
        if self.retry_after <= 0:
            raise ParamError(
                "retry_after",
                f"retry_after must be positive: {self.retry_after!r}",
            )

    # -- wire/config form ----------------------------------------------------

    def to_value(self) -> Dict[str, Any]:
        """Serialize to a plain mapping."""
        return {
            "outbox_bound": self.outbox_bound,
            "ingest_capacity": self.ingest_capacity,
            "high_watermark": self.high_watermark,
            "low_watermark": self.low_watermark,
            "shed_digest": self.shed_digest,
            "shed_feedback": self.shed_feedback,
            "shed_pull": self.shed_pull,
            "admission_rate": self.admission_rate,
            "admission_burst": self.admission_burst,
            "retry_after": self.retry_after,
        }

    @classmethod
    def from_value(cls, value: Dict[str, Any]) -> "OverloadPolicy":
        """Parse from a (partial) mapping over the defaults.

        Raises:
            ParamError: naming the malformed or unknown key.
        """
        if not isinstance(value, dict):
            raise ParamError(
                "overload", f"overload policy map expected, got {value!r}"
            )
        known = set(cls().to_value())
        unknown = sorted(set(value) - known)
        if unknown:
            raise ParamError(
                unknown[0], f"unknown overload policy key(s): {', '.join(unknown)}"
            )
        base = cls()
        ints = {"outbox_bound", "ingest_capacity", "admission_burst"}
        kwargs: Dict[str, Any] = {}
        for name, default in base.to_value().items():
            caster = int if name in ints else float
            kwargs[name] = _convert(value, name, caster, default=default)
        return cls(**kwargs)

    def with_overrides(self, **overrides: Any) -> "OverloadPolicy":
        """A copy with the given fields replaced."""
        return replace(self, **overrides)


#: The shed-ladder classes, cheapest first (docs/RESILIENCE.md).
SHED_CLASSES = ("digest", "feedback", "pull", "payload")


def threshold_for(policy: OverloadPolicy, shed_class: str) -> float:
    """The pressure at which ``shed_class`` traffic is shed under
    ``policy`` (payloads -- and any unknown class -- only at 1.0)."""
    if shed_class == "digest":
        return policy.shed_digest
    if shed_class == "feedback":
        return policy.shed_feedback
    if shed_class == "pull":
        return policy.shed_pull
    return 1.0


class TokenBucket:
    """A deterministic token bucket; the caller supplies the clock.

    Passing ``now`` explicitly keeps the bucket usable from both the
    discrete-event simulator (scheduler time) and the real-network edges
    (``time.monotonic``), and keeps seeded runs reproducible.
    """

    __slots__ = ("rate", "burst", "_tokens", "_last")

    def __init__(self, rate: float, burst: float) -> None:
        if rate <= 0:
            raise ParamError("admission_rate", f"rate must be positive: {rate!r}")
        if burst < 1:
            raise ParamError("admission_burst", f"burst must be >= 1: {burst!r}")
        self.rate = float(rate)
        self.burst = float(burst)
        self._tokens = float(burst)
        self._last = None

    def _refill(self, now: float) -> None:
        if self._last is None:
            self._last = now
            return
        elapsed = now - self._last
        if elapsed > 0:
            self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
            self._last = now

    #: Slack absorbing float rounding in refill arithmetic.  Without it a
    #: caller that sleeps exactly ``retry_after`` can wake to a balance of
    #: ``amount - 1e-16`` tokens, be refused again, and compute a next
    #: retry so small that ``now + retry == now`` -- a live-lock under a
    #: discrete-event clock.
    EPSILON = 1e-9

    def admit(self, now: float, amount: float = 1.0) -> bool:
        """Take ``amount`` tokens if available; ``False`` means shed."""
        self._refill(now)
        if self._tokens >= amount - self.EPSILON:
            self._tokens = max(0.0, self._tokens - amount)
            return True
        return False

    def retry_after(self, now: float, amount: float = 1.0) -> float:
        """Seconds until ``amount`` tokens will be available."""
        self._refill(now)
        deficit = amount - self._tokens
        if deficit <= self.EPSILON:
            return 0.0
        return deficit / self.rate

    def __repr__(self) -> str:
        return (
            f"TokenBucket(rate={self.rate}, burst={self.burst}, "
            f"tokens={self._tokens:.2f})"
        )
