"""Durable gossip state: write-ahead log plus periodic snapshots.

The simulator's optimistic fault model (a "recovered" node keeps its full
in-memory state) hides the hardest failure mode gossip must win:
recovery *after state loss*.  This module supplies the durability layer a
node can opt into so a restart replays what the process knew instead of
rejoining with amnesia:

* :class:`GossipLog` -- the abstraction: an append-only WAL of
  gossip-critical records (retained messages, dedup identities, FIFO
  counters, the feedback hot-rumor set) plus a periodic snapshot that
  compacts the log.
* :class:`MemoryGossipLog` -- in-memory implementation; inside the
  simulator it models a disk that survives the process crash.
* :class:`FileGossipLog` -- file-backed implementation with a CRC per
  record and corruption-tolerant replay: a truncated tail stops replay at
  the last complete record, a bad record is skipped, and neither ever
  raises out of :meth:`~GossipLog.replay`.
* :class:`DurabilityPolicy` -- the validated knob set (`fsync` policy,
  snapshot cadence, catch-up bounds), following the same
  ``ParamError``-naming convention as :class:`~repro.core.params.GossipParams`
  and :class:`~repro.core.health.HealthPolicy`.

Record framing (file mode): ``<length:uint32-le> <crc32:uint32-le>
<payload>`` where the payload is UTF-8 JSON with ``bytes`` values encoded
as ``{"__bytes__": "<base64>"}``.  The snapshot lives next to the WAL
(``<path>.snap``), written to a temporary file and atomically renamed, so
a crash mid-snapshot leaves the previous snapshot intact.
"""

from __future__ import annotations

import base64
import json
import os
import struct
import zlib
from dataclasses import dataclass, field, fields, replace
from typing import Any, Dict, List, Optional

from repro.core.params import ParamError, _convert
from repro.simnet.metrics import RecoveryStats

_HEADER = struct.Struct("<II")
#: Upper bound on a single record; a corrupted length field larger than
#: this is treated as a truncated tail rather than chased off the end.
_MAX_RECORD = 1 << 28

FSYNC_POLICIES = ("always", "batch", "never")
DURABILITY_MODES = ("memory", "file")


def _jsonable(value: Any) -> Any:
    """Encode a record value for JSON (bytes become tagged base64)."""
    if isinstance(value, (bytes, bytearray)):
        return {"__bytes__": base64.b64encode(bytes(value)).decode("ascii")}
    if isinstance(value, dict):
        return {key: _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    return value


def _unjsonable(value: Any) -> Any:
    """Invert :func:`_jsonable`."""
    if isinstance(value, dict):
        if set(value) == {"__bytes__"}:
            return base64.b64decode(value["__bytes__"])
        return {key: _unjsonable(item) for key, item in value.items()}
    if isinstance(value, list):
        return [_unjsonable(item) for item in value]
    return value


@dataclass
class ReplayResult:
    """What a :meth:`GossipLog.replay` recovered, and what it had to skip."""

    snapshot: Optional[Dict[str, Any]] = None
    records: List[Dict[str, Any]] = field(default_factory=list)
    corrupt_records: int = 0
    truncated_tail: bool = False
    snapshot_corrupt: bool = False

    @property
    def clean(self) -> bool:
        """True when nothing had to be skipped."""
        return (
            not self.corrupt_records
            and not self.truncated_tail
            and not self.snapshot_corrupt
        )


class GossipLog:
    """Append-only WAL + snapshot of one engine's gossip-critical state.

    Subclasses supply storage; the interface is what
    :class:`~repro.core.engine.GossipEngine` needs:

    * :meth:`append` -- one WAL record (a plain dict; ``bytes`` values ok).
    * :meth:`write_snapshot` -- replace history with one full state dict;
      the WAL restarts empty (compaction).
    * :meth:`replay` -- the snapshot (if any) plus every WAL record since,
      tolerant of torn writes and corruption.
    * :meth:`clear` -- discard everything (models losing the disk too).
    """

    def __init__(self, stats: Optional[RecoveryStats] = None) -> None:
        self.appends_since_snapshot = 0
        # The recovery stat group this log reports into; logs created by a
        # GossipLayer get their node's hub group, direct constructions
        # fall back to the process-wide default hub.
        if stats is None:
            from repro.obs.hub import default_hub

            stats = default_hub().recovery
        self.stats = stats

    def append(self, record: Dict[str, Any]) -> None:
        self.appends_since_snapshot += 1
        self.stats.log_appends += 1
        self._append(record)

    def write_snapshot(self, state: Dict[str, Any]) -> None:
        self.appends_since_snapshot = 0
        self.stats.snapshots += 1
        self._write_snapshot(state)

    def _count_damage(self, result: "ReplayResult") -> "ReplayResult":
        self.stats.corrupt_records += result.corrupt_records
        self.stats.truncated_tails += int(result.truncated_tail)
        self.stats.corrupt_snapshots += int(result.snapshot_corrupt)
        return result

    def replay(self) -> ReplayResult:
        raise NotImplementedError

    def clear(self) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Release any underlying resources (default: nothing)."""

    # -- storage hooks ------------------------------------------------------

    def _append(self, record: Dict[str, Any]) -> None:
        raise NotImplementedError

    def _write_snapshot(self, state: Dict[str, Any]) -> None:
        raise NotImplementedError


class MemoryGossipLog(GossipLog):
    """Durability without a filesystem.

    Inside the simulator this models a disk that survives the crash: the
    log object outlives the process state the fault plan wipes, so a
    ``restart_at(..., amnesia=False)`` can replay it.
    """

    def __init__(self, stats: Optional[RecoveryStats] = None) -> None:
        super().__init__(stats=stats)
        self._snapshot: Optional[Dict[str, Any]] = None
        self._records: List[Dict[str, Any]] = []

    def _append(self, record: Dict[str, Any]) -> None:
        self._records.append(dict(record))

    def _write_snapshot(self, state: Dict[str, Any]) -> None:
        self._snapshot = dict(state)
        self._records.clear()

    def replay(self) -> ReplayResult:
        return ReplayResult(
            snapshot=dict(self._snapshot) if self._snapshot is not None else None,
            records=[dict(record) for record in self._records],
        )

    def clear(self) -> None:
        self._snapshot = None
        self._records.clear()
        self.appends_since_snapshot = 0

    def __repr__(self) -> str:
        return (
            f"MemoryGossipLog(records={len(self._records)}, "
            f"snapshot={'yes' if self._snapshot is not None else 'no'})"
        )


class FileGossipLog(GossipLog):
    """File-backed WAL (``path``) plus snapshot (``path + '.snap'``).

    Args:
        path: the WAL file; parent directories are created.
        fsync: ``"always"`` (fsync every append), ``"batch"`` (fsync every
            ``fsync_every`` appends and on snapshot), or ``"never"``.
        fsync_every: batch size for the ``"batch"`` policy.
    """

    def __init__(
        self,
        path: str,
        fsync: str = "batch",
        fsync_every: int = 64,
        stats: Optional[RecoveryStats] = None,
    ) -> None:
        super().__init__(stats=stats)
        if fsync not in FSYNC_POLICIES:
            raise ParamError(
                "fsync",
                f"fsync must be one of {FSYNC_POLICIES}: {fsync!r}",
            )
        if fsync_every < 1:
            raise ParamError(
                "fsync_every", f"fsync_every must be >= 1: {fsync_every!r}"
            )
        self.path = path
        self.snapshot_path = path + ".snap"
        self.fsync = fsync
        self.fsync_every = fsync_every
        self._unsynced = 0
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        self._wal = open(path, "ab")

    # -- framing ------------------------------------------------------------

    @staticmethod
    def _frame(record: Dict[str, Any]) -> bytes:
        payload = json.dumps(
            _jsonable(record), separators=(",", ":"), sort_keys=True
        ).encode("utf-8")
        return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload

    @staticmethod
    def _scan(data: bytes, result: ReplayResult) -> List[Dict[str, Any]]:
        """Decode framed records, skipping bad ones, stopping at a torn
        tail.  Never raises."""
        records: List[Dict[str, Any]] = []
        position = 0
        while position < len(data):
            if len(data) - position < _HEADER.size:
                result.truncated_tail = True
                break
            length, crc = _HEADER.unpack_from(data, position)
            if length > _MAX_RECORD or length > len(data) - position - _HEADER.size:
                # A torn final write and a corrupted length field are
                # indistinguishable here; either way the tail is unusable.
                result.truncated_tail = True
                break
            payload = data[position + _HEADER.size : position + _HEADER.size + length]
            position += _HEADER.size + length
            if zlib.crc32(payload) != crc:
                result.corrupt_records += 1
                continue
            try:
                record = _unjsonable(json.loads(payload.decode("utf-8")))
            except (ValueError, UnicodeDecodeError):
                result.corrupt_records += 1
                continue
            if isinstance(record, dict):
                records.append(record)
            else:
                result.corrupt_records += 1
        return records

    def _maybe_fsync(self, force: bool = False) -> None:
        self._wal.flush()
        if self.fsync == "never":
            return
        self._unsynced += 1
        if force or self.fsync == "always" or self._unsynced >= self.fsync_every:
            os.fsync(self._wal.fileno())
            self._unsynced = 0

    # -- GossipLog ----------------------------------------------------------

    def _append(self, record: Dict[str, Any]) -> None:
        self._wal.write(self._frame(record))
        self._maybe_fsync()

    def _write_snapshot(self, state: Dict[str, Any]) -> None:
        temporary = self.snapshot_path + ".tmp"
        with open(temporary, "wb") as handle:
            handle.write(self._frame(state))
            handle.flush()
            if self.fsync != "never":
                os.fsync(handle.fileno())
        os.replace(temporary, self.snapshot_path)
        # The snapshot subsumes the WAL: restart it empty.
        self._wal.close()
        self._wal = open(self.path, "wb")
        self._maybe_fsync(force=True)

    def replay(self) -> ReplayResult:
        result = ReplayResult()
        if os.path.exists(self.snapshot_path):
            # Scanned separately: damage to the snapshot file is reported
            # as snapshot_corrupt, never as WAL corruption.
            snapshot_scan = ReplayResult()
            with open(self.snapshot_path, "rb") as handle:
                snapshots = self._scan(handle.read(), snapshot_scan)
            if snapshots:
                result.snapshot = snapshots[0]
            else:
                result.snapshot_corrupt = True
        self._wal.flush()
        with open(self.path, "rb") as handle:
            result.records = self._scan(handle.read(), result)
        return self._count_damage(result)

    def clear(self) -> None:
        self._wal.close()
        self._wal = open(self.path, "wb")
        try:
            os.remove(self.snapshot_path)
        except FileNotFoundError:
            pass
        self._unsynced = 0
        self.appends_since_snapshot = 0

    def close(self) -> None:
        if not self._wal.closed:
            self._maybe_fsync(force=True)
            self._wal.close()

    def __repr__(self) -> str:
        return f"FileGossipLog({self.path!r}, fsync={self.fsync!r})"


@dataclass(frozen=True)
class DurabilityPolicy:
    """Validated knobs for the crash-recovery subsystem.

    Attributes:
        mode: ``"memory"`` (simulated durable storage) or ``"file"``.
        directory: where file-mode WALs live (required for ``"file"``).
        fsync: WAL durability policy -- ``"always"``, ``"batch"``, or
            ``"never"`` (see :class:`FileGossipLog`).
        fsync_every: appends between fsyncs under the ``"batch"`` policy.
        snapshot_every: WAL appends between snapshot compactions.
        catch_up: run the rejoin catch-up exchange after a restart.
        catch_up_peers: healthy peers contacted per catch-up round (``k``).
        catch_up_rounds: bound on catch-up rounds before eager forwarding
            resumes regardless.
    """

    mode: str = "memory"
    directory: Optional[str] = None
    fsync: str = "batch"
    fsync_every: int = 64
    snapshot_every: int = 256
    catch_up: bool = True
    catch_up_peers: int = 3
    catch_up_rounds: int = 3

    def __post_init__(self) -> None:
        if self.mode not in DURABILITY_MODES:
            raise ParamError(
                "mode", f"mode must be one of {DURABILITY_MODES}: {self.mode!r}"
            )
        if self.mode == "file" and not self.directory:
            raise ParamError(
                "directory", "file-mode durability requires a directory"
            )
        if self.fsync not in FSYNC_POLICIES:
            raise ParamError(
                "fsync", f"fsync must be one of {FSYNC_POLICIES}: {self.fsync!r}"
            )
        if self.fsync_every < 1:
            raise ParamError(
                "fsync_every", f"fsync_every must be >= 1: {self.fsync_every!r}"
            )
        if self.snapshot_every < 1:
            raise ParamError(
                "snapshot_every",
                f"snapshot_every must be >= 1: {self.snapshot_every!r}",
            )
        if self.catch_up_peers < 1:
            raise ParamError(
                "catch_up_peers",
                f"catch_up_peers must be >= 1: {self.catch_up_peers!r}",
            )
        if self.catch_up_rounds < 1:
            raise ParamError(
                "catch_up_rounds",
                f"catch_up_rounds must be >= 1: {self.catch_up_rounds!r}",
            )

    @classmethod
    def field_names(cls) -> List[str]:
        return [f.name for f in fields(cls)]

    @classmethod
    def from_value(cls, value: Dict[str, Any]) -> "DurabilityPolicy":
        """Build from a plain mapping; :class:`ParamError` names any
        unknown or malformed key."""
        if not isinstance(value, dict):
            raise ParamError(
                "durability", f"durability map expected, got {value!r}"
            )
        known = set(cls.field_names())
        unknown = sorted(set(value) - known)
        if unknown:
            raise ParamError(
                unknown[0],
                f"unknown DurabilityPolicy key(s): {', '.join(unknown)}",
            )
        base = cls()
        return cls(
            mode=_convert(value, "mode", str, default=base.mode),
            directory=(
                None
                if value.get("directory", base.directory) is None
                else _convert(value, "directory", str, default=base.directory)
            ),
            fsync=_convert(value, "fsync", str, default=base.fsync),
            fsync_every=_convert(value, "fsync_every", int, default=base.fsync_every),
            snapshot_every=_convert(
                value, "snapshot_every", int, default=base.snapshot_every
            ),
            catch_up=_convert(value, "catch_up", bool, default=base.catch_up),
            catch_up_peers=_convert(
                value, "catch_up_peers", int, default=base.catch_up_peers
            ),
            catch_up_rounds=_convert(
                value, "catch_up_rounds", int, default=base.catch_up_rounds
            ),
        )

    def to_value(self) -> Dict[str, Any]:
        return {name: getattr(self, name) for name in self.field_names()}

    def with_overrides(self, **overrides: Any) -> "DurabilityPolicy":
        known = set(self.field_names())
        unknown = sorted(set(overrides) - known)
        if unknown:
            raise ParamError(
                unknown[0],
                f"unknown DurabilityPolicy key(s): {', '.join(unknown)}",
            )
        return replace(self, **overrides)

    def make_log(
        self, name: str, stats: Optional[RecoveryStats] = None
    ) -> GossipLog:
        """A fresh log for one (node, activity), named ``name``.

        File mode places the WAL at ``<directory>/<slug>.wal``.  ``stats``
        is the recovery stat group the log should report into (the node's
        hub group; defaults to the process-wide default hub's).
        """
        if self.mode == "memory":
            return MemoryGossipLog(stats=stats)
        slug = "".join(
            ch if ch.isalnum() or ch in "-_." else "_" for ch in name
        )
        return FileGossipLog(
            os.path.join(self.directory, f"{slug}.wal"),
            fsync=self.fsync,
            fsync_every=self.fsync_every,
            stats=stats,
        )


def __getattr__(name: str):
    # RECOVERY_STATS used to be re-exported here; delegate to the metrics
    # module so the deprecation story is identical everywhere.
    if name == "RECOVERY_STATS":
        from repro.simnet import metrics

        return metrics.RECOVERY_STATS
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "DurabilityPolicy",
    "FileGossipLog",
    "GossipLog",
    "MemoryGossipLog",
    "ReplayResult",
    "RECOVERY_STATS",
]
