"""Peer-selection strategies.

Epidemic reliability analysis assumes targets are chosen *uniformly at
random*; that strategy is the default.  The selector abstraction exists so
experiments can ablate alternatives (e.g. origin-avoiding selection) and so
the peer-sampling service can plug in partial views.
"""

from __future__ import annotations

import random
from typing import Iterable, List, Optional, Sequence


class PeerSelector:
    """Strategy interface: pick gossip targets from a view."""

    def select(
        self,
        view: Sequence[str],
        fanout: int,
        rng: random.Random,
        exclude: Iterable[str] = (),
    ) -> List[str]:
        """Pick up to ``fanout`` distinct targets from ``view``."""
        raise NotImplementedError


class UniformSelector(PeerSelector):
    """Uniform sampling without replacement (the analysis-matching default)."""

    def select(
        self,
        view: Sequence[str],
        fanout: int,
        rng: random.Random,
        exclude: Iterable[str] = (),
    ) -> List[str]:
        """Sample ``fanout`` peers uniformly without replacement.

        Large views take a rejection-sampling path: copying and filtering
        a 10k-entry view to pick 6 peers would make every gossip round
        O(N).  Both paths draw uniformly without replacement; they differ
        only in rng consumption.
        """
        excluded = set(exclude)
        size = len(view)
        if size >= 4 * (fanout + len(excluded)) and fanout > 0:
            chosen: List[str] = []
            seen = set(excluded)
            # Each draw hits an unseen peer with probability > 3/4, so
            # the attempt budget fails only with negligible probability;
            # the filtering path below remains the correctness backstop.
            attempts = 8 * fanout + 16
            while len(chosen) < fanout and attempts > 0:
                attempts -= 1
                peer = view[rng.randrange(size)]
                if peer in seen:
                    continue
                seen.add(peer)
                chosen.append(peer)
            if len(chosen) == fanout:
                return chosen
        candidates = [peer for peer in view if peer not in excluded]
        if fanout >= len(candidates):
            return list(candidates)
        return rng.sample(candidates, fanout)


class LocalityAwareSelector(PeerSelector):
    """Prefer same-site peers, with a tunable trickle of remote choices.

    WAN deployments pay for every cross-site message; directing most
    fanout locally and only ``remote_probability`` of choices across
    sites cuts cross-DC traffic dramatically while the trickle keeps the
    epidemic bridged (experiment E13 quantifies the trade-off).

    Args:
        site_of: maps a peer address to its site name.
        self_site: the selecting node's own site.
        remote_probability: chance that each selected slot is filled from
            a remote site instead of the local one.
    """

    def __init__(self, site_of, self_site: str, remote_probability: float = 0.2) -> None:
        if not 0.0 <= remote_probability <= 1.0:
            raise ValueError(
                f"remote_probability must be in [0, 1]: {remote_probability!r}"
            )
        self._site_of = site_of
        self._self_site = self_site
        self._remote_probability = remote_probability
        self._uniform = UniformSelector()

    def select(
        self,
        view: Sequence[str],
        fanout: int,
        rng: random.Random,
        exclude: Iterable[str] = (),
    ) -> List[str]:
        """Fill slots locally, crossing sites with ``remote_probability``."""
        excluded = set(exclude)
        local = [
            peer for peer in view
            if peer not in excluded and self._site_of(peer) == self._self_site
        ]
        remote = [
            peer for peer in view
            if peer not in excluded and self._site_of(peer) != self._self_site
        ]
        chosen: List[str] = []
        for _ in range(fanout):
            want_remote = remote and (
                not local or rng.random() < self._remote_probability
            )
            pool = remote if want_remote else local
            if not pool:
                break
            peer = rng.choice(pool)
            pool.remove(peer)
            chosen.append(peer)
        return chosen


class HealthAwareSelector(PeerSelector):
    """Down-weight suspected peers: healthy targets first, suspects last.

    Wraps any inner selector (uniform by default).  Slots are filled from
    the unsuspected part of the view; only when the healthy pool cannot
    satisfy the fanout are suspected peers admitted -- which doubles as
    the re-admission path: a recovered peer's score decays below the
    threshold and it silently rejoins the healthy pool.

    Args:
        health: the node's :class:`~repro.core.health.PeerHealth`.
        inner: the strategy applied within each pool.
    """

    def __init__(self, health, inner: Optional[PeerSelector] = None) -> None:
        self._health = health
        self._inner = inner if inner is not None else UniformSelector()

    def select(
        self,
        view: Sequence[str],
        fanout: int,
        rng: random.Random,
        exclude: Iterable[str] = (),
    ) -> List[str]:
        """Fill from healthy peers; top up from suspected ones if short."""
        excluded = set(exclude)
        candidates = [peer for peer in view if peer not in excluded]
        healthy, suspected = self._health.partition(candidates)
        chosen = self._inner.select(healthy, fanout, rng)
        shortfall = fanout - len(chosen)
        if shortfall > 0 and suspected:
            chosen.extend(self._inner.select(suspected, shortfall, rng))
        return chosen


class RoundRobinSelector(PeerSelector):
    """Deterministic rotation through the view.

    Used by ablations: it removes randomization, demonstrating why the
    epidemic analysis requires uniform choice (correlated failures knock
    out fixed dissemination paths).
    """

    def __init__(self) -> None:
        self._cursor = 0

    def select(
        self,
        view: Sequence[str],
        fanout: int,
        rng: random.Random,
        exclude: Iterable[str] = (),
    ) -> List[str]:
        """Rotate deterministically through the (filtered) view."""
        excluded = set(exclude)
        candidates = [peer for peer in view if peer not in excluded]
        if not candidates:
            return []
        count = min(fanout, len(candidates))
        chosen = [
            candidates[(self._cursor + index) % len(candidates)]
            for index in range(count)
        ]
        self._cursor = (self._cursor + count) % len(candidates)
        return chosen
