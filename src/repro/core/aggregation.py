"""Gossip-based aggregation (push-sum).

The paper positions WS-Gossip as "encompassing different gossip styles and
suitable for multiple application scenarios"; aggregation is the canonical
second scenario (system-wide averages/sums computed with no coordinator).
This is the push-sum protocol of Kempe, Dobra & Gehrke (FOCS 2003):

* every node holds a pair ``(value, weight)``;
* each round it keeps half and sends half to one uniform random peer;
* ``value / weight`` converges exponentially fast to the global average at
  every node; mass conservation (``sum of values`` and ``sum of weights``
  are invariant) is the correctness property the tests check.

``sum`` and ``count`` are the same protocol with different initial weights;
``min``/``max`` use idempotent merge instead of mass splitting.
"""

from __future__ import annotations

import enum
import random
from typing import Callable, List, Optional, Sequence

from repro.core.scheduling import Scheduler
from repro.soap import namespaces as ns
from repro.soap.fault import sender_fault
from repro.soap.handler import MessageContext
from repro.soap.runtime import SoapRuntime
from repro.soap.service import Service, operation

SHARE_ACTION = f"{ns.WSGOSSIP}/aggregate/Share"
AGGREGATION_SERVICE_PATH = "/aggregation"


class AggregateKind(enum.Enum):
    """Supported aggregate functions."""

    AVERAGE = "average"
    SUM = "sum"
    COUNT = "count"
    MIN = "min"
    MAX = "max"


class AggregationEngine:
    """Push-sum state machine for one aggregation task on one node.

    Args:
        runtime: the node's SOAP runtime.
        scheduler: timers for periodic shares.
        task: name identifying the aggregation task (nodes participating in
            the same task must use the same name).
        kind: the aggregate function.
        local_value: this node's input.
        view_provider: returns the current peer app/base addresses to share
            with (e.g. the coordinator-provided view or a sampling view).
        period: seconds between shares.
        rng: peer-choice stream.
        weight: initial weight; for AVERAGE every node uses 1.0, for
            SUM/COUNT exactly one node uses 1.0 and the rest 0.0 (handled
            by :func:`initial_weight`).
    """

    def __init__(
        self,
        runtime: SoapRuntime,
        scheduler: Scheduler,
        task: str,
        kind: AggregateKind,
        local_value: float,
        view_provider: Callable[[], Sequence[str]],
        period: float = 0.5,
        rng: Optional[random.Random] = None,
        weight: float = 1.0,
        jitter: float = 0.05,
    ) -> None:
        if period <= 0:
            raise ValueError(f"period must be positive: {period!r}")
        self.runtime = runtime
        self.scheduler = scheduler
        self.task = task
        self.kind = kind
        self.view_provider = view_provider
        self.period = period
        self.jitter = jitter
        self.rng = rng if rng is not None else random.Random()
        if kind is AggregateKind.COUNT:
            local_value = 1.0
        self.value = float(local_value)
        self.weight = float(weight)
        self._running = False
        self.rounds_run = 0

    # -- protocol -----------------------------------------------------------

    def start(self) -> None:
        """Begin periodic sharing."""
        if self._running:
            return
        self._running = True
        self._schedule()

    def stop(self) -> None:
        """Stop periodic sharing."""
        self._running = False

    def _schedule(self) -> None:
        delay = self.period + self.rng.uniform(0.0, self.jitter)
        self.scheduler.call_after(delay, self._round)

    def _round(self) -> None:
        if not self._running:
            return
        self.rounds_run += 1
        self._share_once()
        self._schedule()

    def _share_once(self) -> None:
        peers = [peer for peer in self.view_provider()]
        if peers:
            target = self.rng.choice(peers)
            if self.kind in (AggregateKind.MIN, AggregateKind.MAX):
                payload = {"task": self.task, "value": self.value, "weight": 0.0,
                           "kind": self.kind.value}
            else:
                # Split mass: keep half, send half.
                self.value /= 2.0
                self.weight /= 2.0
                payload = {"task": self.task, "value": self.value,
                           "weight": self.weight, "kind": self.kind.value}
            self.runtime.metrics.counter("aggregate.share").inc()
            self.runtime.send(
                self._aggregation_address(target), SHARE_ACTION, value=payload
            )

    @staticmethod
    def _aggregation_address(peer: str) -> str:
        from repro.transport.base import split_address

        scheme, authority, _ = split_address(peer)
        return f"{scheme}://{authority}{AGGREGATION_SERVICE_PATH}"

    def receive_share(self, value: float, weight: float, kind: str) -> None:
        """Merge an incoming share.

        Raises:
            ValueError: when the share's kind disagrees with ours (two
            different aggregations accidentally using one task name).
        """
        if kind != self.kind.value:
            raise ValueError(
                f"aggregation kind mismatch on task {self.task!r}: "
                f"{kind!r} != {self.kind.value!r}"
            )
        if self.kind is AggregateKind.MIN:
            self.value = min(self.value, value)
        elif self.kind is AggregateKind.MAX:
            self.value = max(self.value, value)
        else:
            self.value += value
            self.weight += weight

    # -- results -------------------------------------------------------------------

    def estimate(self) -> float:
        """Current local estimate of the aggregate."""
        if self.kind in (AggregateKind.MIN, AggregateKind.MAX):
            return self.value
        if self.weight <= 0.0:
            return 0.0
        return self.value / self.weight

    @property
    def mass(self) -> tuple:
        """(value, weight) -- the conserved quantities, for invariant tests."""
        return (self.value, self.weight)

    def __repr__(self) -> str:
        return (
            f"AggregationEngine(task={self.task!r}, kind={self.kind.value}, "
            f"estimate={self.estimate():.6g})"
        )


def initial_weight(kind: AggregateKind, is_root: bool) -> float:
    """The starting weight for a node.

    AVERAGE: everyone weighs 1.  SUM / COUNT: only the designated root
    carries weight 1, so the converged ``value/weight`` equals the total.
    MIN/MAX ignore weights.
    """
    if kind is AggregateKind.AVERAGE:
        return 1.0
    if kind in (AggregateKind.SUM, AggregateKind.COUNT):
        return 1.0 if is_root else 0.0
    return 0.0


class AggregationService(Service):
    """The ``/aggregation`` endpoint: receives push-sum shares."""

    def __init__(self) -> None:
        super().__init__()
        self._engines = {}

    def add_engine(self, engine: AggregationEngine) -> None:
        """Register an engine to receive shares for its task name."""
        if engine.task in self._engines:
            raise ValueError(f"task already registered: {engine.task!r}")
        self._engines[engine.task] = engine

    def engine_for(self, task: str) -> Optional[AggregationEngine]:
        """The engine handling ``task``, or ``None``."""
        return self._engines.get(task)

    @operation(SHARE_ACTION)
    def share(self, context: MessageContext, value) -> None:
        """SOAP operation: merge an incoming push-sum share."""
        if not isinstance(value, dict):
            raise sender_fault("Share requires a map payload")
        task = value.get("task")
        engine = self._engines.get(task) if isinstance(task, str) else None
        if engine is None:
            raise sender_fault(f"unknown aggregation task: {task!r}")
        try:
            share_value = float(value["value"])
            share_weight = float(value["weight"])
            kind = str(value["kind"])
        except (KeyError, TypeError, ValueError):
            raise sender_fault("malformed Share payload") from None
        engine.receive_share(share_value, share_weight, kind)
        return None
