"""The four WS-Gossip roles from the paper's Figure 1, as simulated nodes.

* :class:`CoordinatorNode` -- hosts Activation, Registration and
  Subscription; manages the subscriber list and gossip parameters.
* :class:`InitiatorNode` -- the one application whose code changes: it
  activates a gossip interaction and issues a single notification.
* :class:`DisseminatorNode` -- application unchanged, but the middleware
  stack gains the gossip layer; intercepts, registers, forwards.
* :class:`ConsumerNode` -- completely unchanged node: plain SOAP stack,
  receives the invocation like any other.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.core.coordination import GossipCoordinationProtocol
from repro.core.engine import PROTOCOL_INITIATOR, GossipEngine
from repro.core.handler import GossipLayer
from repro.core.message import GossipHeader
from repro.core.params import GossipParams
from repro.core.scheduling import ProcessScheduler
from repro.core.service import GossipService
from repro.core.subscription import SUBSCRIBE_ACTION, SubscriptionService
from repro.simnet.network import Network
from repro.soap import namespaces as ns
from repro.soap.handler import MessageContext
from repro.soap.service import Service
from repro.transport.inmem import WsProcess
from repro.wscoord.activation import CREATE_ACTION, ActivationService
from repro.wscoord.context import CoordinationContext
from repro.wscoord.coordinator import Coordinator
from repro.wscoord.registration import RegistrationService

ACTIVATION_PATH = "/activation"
REGISTRATION_PATH = "/registration"
SUBSCRIPTION_PATH = "/subscription"
APP_PATH = "/app"


class CoordinatorNode(WsProcess):
    """A WS-Coordination coordinator with the gossip protocol installed."""

    def __init__(
        self,
        name: str,
        network: Network,
        defaults: Optional[GossipParams] = None,
        auto_tune: bool = True,
        target_reliability: float = 0.99,
    ) -> None:
        super().__init__(name, network)
        self.coordinator = Coordinator(self._registration_epr)
        self.gossip_protocol = GossipCoordinationProtocol(
            rng=self.sim.rng.get(f"coordinator:{name}"),
            defaults=defaults,
            auto_tune=auto_tune,
            target_reliability=target_reliability,
        )
        self.coordinator.add_protocol(self.gossip_protocol)
        self.runtime.add_service(ACTIVATION_PATH, ActivationService(self.coordinator))
        self.runtime.add_service(
            REGISTRATION_PATH, RegistrationService(self.coordinator)
        )
        self.subscription_service = SubscriptionService(
            self.coordinator, clock=lambda: self.now
        )
        self.runtime.add_service(SUBSCRIPTION_PATH, self.subscription_service)
        from repro.core.topics import TOPIC_DIRECTORY_PATH, TopicDirectoryService

        self.topic_directory = TopicDirectoryService(self.coordinator)
        self.runtime.add_service(TOPIC_DIRECTORY_PATH, self.topic_directory)

    def on_start(self) -> None:
        # Periodically drop subscribers whose leases lapsed, so departed
        # consumers stop being handed out as gossip targets.
        self.set_periodic_timer(5.0, self.subscription_service.prune_all)

    def _registration_epr(self, activity_id: str):
        return self.runtime.epr(REGISTRATION_PATH, ActivityId=activity_id)

    @property
    def activation_address(self) -> str:
        return self.runtime.address_of(ACTIVATION_PATH)

    @property
    def subscription_address(self) -> str:
        return self.runtime.address_of(SUBSCRIPTION_PATH)

    @property
    def topic_directory_address(self) -> str:
        from repro.core.topics import TOPIC_DIRECTORY_PATH

        return self.runtime.address_of(TOPIC_DIRECTORY_PATH)


class Delivery:
    """One application-level delivery recorded by a node."""

    __slots__ = ("time", "action", "value", "gossip_id", "origin")

    def __init__(self, time, action, value, gossip_id, origin) -> None:
        self.time = time
        self.action = action
        self.value = value
        self.gossip_id = gossip_id
        self.origin = origin

    def __repr__(self) -> str:
        return f"Delivery(t={self.time:.4f}, action={self.action!r}, id={self.gossip_id!r})"


class AppNode(WsProcess):
    """Base for nodes hosting an application endpoint.

    The app service records every delivered invocation (for experiment
    accounting) and invokes any bound callback.
    """

    def __init__(self, name: str, network: Network, app_path: str = APP_PATH) -> None:
        super().__init__(name, network)
        self.app_path = app_path
        self.app_service = Service()
        self.runtime.add_service(app_path, self.app_service)
        self.deliveries: List[Delivery] = []
        self._delivered_ids: set = set()

    def reset_state(self, amnesia: bool) -> None:
        """Crash-faithful restart: the app's delivery record is process
        state and dies with the process.  A durable gossip layer (see
        :class:`DisseminatorNode`) repopulates the delivered-set from its
        WAL replay."""
        super().reset_state(amnesia)
        self.deliveries = []
        self._delivered_ids = set()

    @property
    def app_address(self) -> str:
        return self.runtime.address_of(self.app_path)

    def bind(
        self,
        action: str,
        callback: Optional[Callable[[MessageContext, Any], Any]] = None,
    ) -> None:
        """Accept invocations with ``action``, recording each delivery."""

        def handle(context: MessageContext, value: Any) -> Any:
            header = GossipHeader.from_envelope(context.envelope)
            gossip_id = header.message_id if header is not None else None
            origin = header.origin if header is not None else None
            delivery = Delivery(self.now, action, value, gossip_id, origin)
            self.deliveries.append(delivery)
            if gossip_id is not None:
                self._delivered_ids.add(gossip_id)
            if callback is not None:
                return callback(context, value)
            return None

        self.app_service.add_operation(action, handle)

    def has_delivered(self, gossip_id: str) -> bool:
        """True when this node's app saw the data item at least once."""
        return gossip_id in self._delivered_ids

    def delivery_time(self, gossip_id: str) -> Optional[float]:
        """First delivery time of a data item, or ``None``."""
        for delivery in self.deliveries:
            if delivery.gossip_id == gossip_id:
                return delivery.time
        return None

    def subscribe(
        self,
        subscription_address: str,
        activity_id: str,
        on_reply: Optional[Callable[[MessageContext, Any], None]] = None,
    ) -> None:
        """Subscribe this node's app endpoint to an activity (Figure 1's
        ``subscribe`` arrows).  Pass ``on_reply`` to observe the ack."""
        self.runtime.send(
            subscription_address,
            SUBSCRIBE_ACTION,
            value={"activity": activity_id, "participant": self.app_address},
            on_reply=on_reply,
        )


class ConsumerNode(AppNode):
    """Unchanged node: plain stack, no gossip layer at all."""


class DisseminatorNode(AppNode):
    """App unchanged; the middleware stack gains the gossip layer."""

    def __init__(
        self,
        name: str,
        network: Network,
        app_path: str = APP_PATH,
        params: Optional[GossipParams] = None,
        auto_join: bool = True,
        durability=None,
        overload=None,
        telemetry=None,
    ) -> None:
        super().__init__(name, network, app_path=app_path)
        self.gossip_layer = GossipLayer(
            runtime=self.runtime,
            scheduler=ProcessScheduler(self),
            app_address=self.app_address,
            rng=self.sim.rng.get(f"gossip:{name}"),
            auto_join=auto_join,
            default_params=params,
            durability=durability,
            overload=overload,
            telemetry=telemetry,
        )
        self.runtime.chain.add_first(self.gossip_layer)
        self.runtime.add_service("/gossip", GossipService(self.gossip_layer))
        #: Messages restored from the WAL by the most recent durable restart.
        self.replayed_messages = 0

    def reset_state(self, amnesia: bool) -> None:
        """Restart: wipe (or replay) the gossip layer's engines.

        Durable replay re-marks recovered identities as delivered so the
        experiment accounting matches what the pre-crash process had
        handed its application.
        """
        super().reset_state(amnesia)
        self.replayed_messages = self.gossip_layer.prepare_restart(
            amnesia=amnesia, on_replayed=self._delivered_ids.add
        )
        if self.gossip_layer.health is not None:
            # Suspicion scores live in process memory either way.
            self.gossip_layer.health.reset()

    def on_restart(self, amnesia: bool) -> None:
        """Rejoin the gossip group: re-register, then catch up with
        healthy peers before forwarding eagerly again."""
        self.gossip_layer.rejoin()


class InitiatorNode(DisseminatorNode):
    """The one application that changes: delegates subscription management
    and issues a single notification after activating a gossip interaction.
    """

    def __init__(
        self,
        name: str,
        network: Network,
        app_path: str = APP_PATH,
        params: Optional[GossipParams] = None,
        durability=None,
        overload=None,
        telemetry=None,
    ) -> None:
        super().__init__(
            name,
            network,
            app_path=app_path,
            params=params,
            durability=durability,
            overload=overload,
            telemetry=telemetry,
        )
        self.activities: Dict[str, GossipEngine] = {}

    def activate(
        self,
        activation_address: str,
        parameters: Optional[Dict[str, Any]] = None,
        expires: Optional[float] = None,
        on_ready: Optional[Callable[[GossipEngine], None]] = None,
    ) -> None:
        """Create a gossip activity at the coordinator.

        ``on_ready`` fires once the context arrives and this node has begun
        registering as the activity's initiator.
        """

        def handle_context(reply_context: MessageContext, value: Any) -> None:
            body = reply_context.envelope.body
            if body is None:
                self.runtime.metrics.counter("gossip.activate-failed").inc()
                return
            context = CoordinationContext.from_element(body)
            engine = self.gossip_layer.join(context, protocol=PROTOCOL_INITIATOR)
            self.activities[context.identifier] = engine
            if on_ready is not None:
                on_ready(engine)

        self.runtime.send(
            activation_address,
            CREATE_ACTION,
            value={
                "coordination_type": ns.WSGOSSIP_COORD,
                "expires": expires,
                "parameters": parameters or {},
            },
            on_reply=handle_context,
        )

    def publish(self, activity_id: str, action: str, value: Any) -> str:
        """Disseminate one invocation; returns the gossip message id.

        Raises:
            KeyError: for activities this initiator never activated/joined.
        """
        engine = self.activities[activity_id]
        return engine.publish(action, value)

    def ensure_topic(
        self,
        directory_address: str,
        topic: str,
        parameters: Optional[Dict[str, Any]] = None,
        on_ready: Optional[Callable[[GossipEngine], None]] = None,
    ) -> None:
        """Resolve a named topic at the directory and join its activity.

        Once the directory answers, the engine appears in
        :attr:`activities` (keyed by activity id) and ``on_ready`` fires.
        """
        from repro.core.topics import ensure_topic

        def handle(context, response) -> None:
            engine = self.gossip_layer.join(context, protocol=PROTOCOL_INITIATOR)
            self.activities[context.identifier] = engine
            if on_ready is not None:
                on_ready(engine)

        ensure_topic(
            self.runtime,
            directory_address,
            topic,
            parameters=parameters,
            on_context=handle,
        )
