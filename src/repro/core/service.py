"""The gossip port type: digest pulls and explicit delivery.

Push gossip needs no service of its own (the handler intercepts plain
application messages), but the pull, push-pull and anti-entropy styles need
two operations on every gossip-capable node:

* ``Pull`` -- request/response digest reconciliation: the caller sends its
  digest, the service returns the retained messages the caller lacks plus
  the identities it wants back.
* ``Deliver`` -- one-way batch of wire messages, fed straight back through
  the stack so the gossip layer handles them like any arrival.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.core.batch import (
    BATCH_ACTION,
    control_from_element,
    frames_from_element,
)
from repro.core.engine import (
    ADVERTISE_ACTION,
    DELIVER_ACTION,
    FEEDBACK_ACTION,
    FETCH_ACTION,
    PULL_ACTION,
    PULL_RESPONSE_ACTION,
)
from repro.core.handler import GossipLayer
from repro.soap.fault import sender_fault
from repro.soap.handler import MessageContext
from repro.soap.service import Reply, Service, operation


class GossipService(Service):
    """The ``/gossip`` endpoint mounted on gossip-capable nodes."""

    def __init__(self, layer: GossipLayer) -> None:
        super().__init__()
        self._layer = layer

    @operation(PULL_ACTION)
    def pull(self, context: MessageContext, value: Optional[Dict[str, Any]]) -> Reply:
        """SOAP operation: serve a digest reconciliation request."""
        if not isinstance(value, dict):
            raise sender_fault("Pull requires a map payload")
        activity = value.get("activity")
        digest = value.get("digest")
        if not isinstance(activity, str) or not isinstance(digest, list):
            raise sender_fault("Pull requires activity and digest")
        engine = self._layer.engine_for(activity)
        if engine is None:
            raise sender_fault(f"not participating in activity {activity!r}")
        requester = context.source
        response = engine.serve_pull(
            [item for item in digest if isinstance(item, str)], requester
        )
        engine.metrics.counter("gossip.pull-served").inc()
        return Reply(value=response, action=PULL_RESPONSE_ACTION)

    @operation(ADVERTISE_ACTION)
    def advertise(
        self, context: MessageContext, value: Optional[Dict[str, Any]]
    ) -> None:
        """SOAP operation: receive lazy-push advertisements."""
        engine, ids = self._engine_and_ids(value)
        hops = value.get("hops")
        holder = value.get("holder")
        if not isinstance(hops, int) or not isinstance(holder, str):
            raise sender_fault("Advertise requires hops and holder")
        engine.on_advertise(ids, hops, holder)
        return None

    @operation(FETCH_ACTION)
    def fetch(
        self, context: MessageContext, value: Optional[Dict[str, Any]]
    ) -> None:
        """SOAP operation: serve a lazy-push payload fetch."""
        engine, ids = self._engine_and_ids(value)
        requester = value.get("requester")
        if not isinstance(requester, str):
            raise sender_fault("Fetch requires a requester address")
        engine.serve_fetch(ids, requester)
        return None

    @operation(FEEDBACK_ACTION)
    def feedback(
        self, context: MessageContext, value: Optional[Dict[str, Any]]
    ) -> None:
        """SOAP operation: receive duplicate feedback (coin style)."""
        engine, ids = self._engine_and_ids(value)
        engine.on_feedback(ids)
        return None

    def _engine_and_ids(self, value: Optional[Dict[str, Any]]):
        if not isinstance(value, dict):
            raise sender_fault("payload must be a map")
        activity = value.get("activity")
        ids = value.get("ids")
        if not isinstance(activity, str) or not isinstance(ids, list):
            raise sender_fault("payload requires activity and ids")
        engine = self._layer.engine_for(activity)
        if engine is None:
            raise sender_fault(f"not participating in activity {activity!r}")
        return engine, [item for item in ids if isinstance(item, str)]

    @operation(BATCH_ACTION)
    def batch(self, context: MessageContext, value: Any) -> None:
        """SOAP operation: parsed-XML fallback for batched frames.

        Reached only when the byte-level split in the gossip layer's
        pre-parse gate failed (or the node has no layer gate at all): the
        embedded rumors are re-serialized from the parsed tree and fed
        through the normal receive path.
        """
        body = context.envelope.body
        if body is None:
            raise sender_fault("Batch requires a GossipBatch body")
        runtime = self._layer.runtime
        for data in frames_from_element(body):
            self._layer._batch_stats.rumors_unpacked += 1
            runtime.receive(data, source=context.source)
        control = control_from_element(body)
        if control.empty():
            return None
        activity = body.get("activity")
        holder = body.get("holder")
        engine = self._layer.engine_for(activity) if activity else None
        if engine is not None and holder:
            engine.on_batch_control(control, holder, context.source)
        return None

    @operation(DELIVER_ACTION)
    def deliver(
        self, context: MessageContext, value: Optional[Dict[str, Any]]
    ) -> None:
        """SOAP operation: ingest a batch of wire messages."""
        if not isinstance(value, dict):
            raise sender_fault("Deliver requires a map payload")
        messages = value.get("messages")
        if not isinstance(messages, list):
            raise sender_fault("Deliver requires a messages list")
        runtime = self._layer.runtime
        for data in messages:
            if isinstance(data, (bytes, bytearray)):
                runtime.metrics.counter("gossip.delivered-batch").inc()
                runtime.receive(bytes(data), source=context.source)
        return None
