"""Real-HTTP deployment of the WS-Gossip roles.

The same middleware classes that run in the simulator bind here to real
localhost HTTP servers and wall-clock timers -- demonstrating the stack is
transport-agnostic.  Used by the HTTP integration test and the
``examples/http_deployment.py`` demo.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, List, Optional

from repro.core.coordination import GossipCoordinationProtocol
from repro.core.engine import PROTOCOL_INITIATOR, GossipEngine
from repro.core.handler import GossipLayer
from repro.core.message import GossipHeader
from repro.core.params import GossipParams
from repro.core.scheduling import ThreadScheduler
from repro.core.service import GossipService
from repro.core.subscription import SUBSCRIBE_ACTION, SubscriptionService
from repro.soap import namespaces as ns
from repro.soap.service import Service
from repro.transport.http import HttpNode
from repro.wscoord.activation import CREATE_ACTION, ActivationService
from repro.wscoord.context import CoordinationContext
from repro.wscoord.coordinator import Coordinator
from repro.wscoord.registration import RegistrationService

APP_PATH = "/app"


class HttpCoordinator:
    """Coordinator role over HTTP."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0, seed: int = 0) -> None:
        self.node = HttpNode(host, port)
        self.coordinator = Coordinator(
            lambda activity_id: self.node.runtime.epr(
                "/registration", ActivityId=activity_id
            )
        )
        self.coordinator.add_protocol(
            GossipCoordinationProtocol(rng=random.Random(seed))
        )
        self.node.runtime.add_service("/activation", ActivationService(self.coordinator))
        self.node.runtime.add_service(
            "/registration", RegistrationService(self.coordinator)
        )
        self.node.runtime.add_service(
            "/subscription", SubscriptionService(self.coordinator)
        )

    @property
    def activation_address(self) -> str:
        return self.node.runtime.address_of("/activation")

    @property
    def subscription_address(self) -> str:
        return self.node.runtime.address_of("/subscription")

    def start(self) -> None:
        """Begin serving the coordinator endpoints."""
        self.node.start()

    def stop(self) -> None:
        """Shut the coordinator's HTTP server down."""
        self.node.stop()


class HttpAppNode:
    """Consumer role over HTTP: plain stack plus a recording app service."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0) -> None:
        self.node = HttpNode(host, port)
        self.app_service = Service()
        self.node.runtime.add_service(APP_PATH, self.app_service)
        self.deliveries: List[Dict[str, Any]] = []

    @property
    def app_address(self) -> str:
        return self.node.runtime.address_of(APP_PATH)

    def bind(self, action: str, callback: Optional[Callable] = None) -> None:
        """Accept invocations with ``action``, recording each delivery."""
        def handle(context, value):
            header = GossipHeader.from_envelope(context.envelope)
            self.deliveries.append(
                {
                    "value": value,
                    "gossip_id": header.message_id if header else None,
                }
            )
            if callback is not None:
                callback(context, value)
            return None

        self.app_service.add_operation(action, handle)

    def has_delivered(self, gossip_id: str) -> bool:
        """True when this node received the data item at least once."""
        return any(entry["gossip_id"] == gossip_id for entry in self.deliveries)

    def subscribe(self, subscription_address: str, activity_id: str) -> None:
        """Subscribe this node's app endpoint to an activity."""
        self.node.runtime.send(
            subscription_address,
            SUBSCRIBE_ACTION,
            value={"activity": activity_id, "participant": self.app_address},
        )

    def start(self) -> None:
        """Begin serving this node."""
        self.node.start()

    def stop(self) -> None:
        """Shut this node's HTTP server down."""
        self.node.stop()


class HttpDisseminator(HttpAppNode):
    """Disseminator role over HTTP: app node plus the gossip layer."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        params: Optional[GossipParams] = None,
        seed: int = 0,
    ) -> None:
        super().__init__(host, port)
        self.scheduler = ThreadScheduler()
        self.gossip_layer = GossipLayer(
            runtime=self.node.runtime,
            scheduler=self.scheduler,
            app_address=self.app_address,
            rng=random.Random(seed),
            default_params=params,
        )
        self.node.runtime.chain.add_first(self.gossip_layer)
        self.node.runtime.add_service("/gossip", GossipService(self.gossip_layer))

    def stop(self) -> None:
        """Cancel gossip timers and shut the server down."""
        self.scheduler.close()
        super().stop()


class HttpInitiator(HttpDisseminator):
    """Initiator role over HTTP."""

    def __init__(self, **kwargs) -> None:
        super().__init__(**kwargs)
        self.activities: Dict[str, GossipEngine] = {}

    def activate(
        self,
        activation_address: str,
        parameters: Optional[Dict[str, Any]] = None,
        on_ready: Optional[Callable[[GossipEngine], None]] = None,
    ) -> None:
        """Create a gossip activity at the coordinator and join it."""
        def handle_context(reply_context, value):
            context = CoordinationContext.from_element(reply_context.envelope.body)
            engine = self.gossip_layer.join(context, protocol=PROTOCOL_INITIATOR)
            self.activities[context.identifier] = engine
            if on_ready is not None:
                on_ready(engine)

        self.node.runtime.send(
            activation_address,
            CREATE_ACTION,
            value={
                "coordination_type": ns.WSGOSSIP_COORD,
                "parameters": parameters or {},
            },
            on_reply=handle_context,
        )

    def publish(self, activity_id: str, action: str, value: Any) -> str:
        """Disseminate one invocation; returns its gossip id."""
        return self.activities[activity_id].publish(action, value)
