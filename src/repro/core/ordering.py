"""Per-origin FIFO ordered delivery (optional extension).

Gossip gives at-least-once, unordered delivery.  Some of the paper's
scenarios (a per-symbol stock feed) want *FIFO per publisher*: ticks from
one origin must be seen in publication order.  This module provides the
holdback buffer the engine uses when an activity is created with
``{"ordered": True}``:

* the initiator stamps every publication with a per-origin ``Sequence``;
* receivers deliver sequence ``s`` only after ``s-1`` from that origin,
  holding later arrivals back (head-of-line blocking is the honest price;
  the ablation bench measures it);
* the gossip repair styles (push-pull / anti-entropy) fill gaps, at which
  point the buffer releases everything in order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple


@dataclass
class _OriginState:
    next_expected: int = 0
    held: Dict[int, Any] = field(default_factory=dict)


class FifoBuffer:
    """Holdback buffer enforcing per-origin sequence order.

    ``offer`` returns the list of items now deliverable (possibly empty,
    possibly several if a gap just closed), in order.  Items carry opaque
    payloads -- the engine stores the message context it needs to re-run
    local dispatch.
    """

    def __init__(self, holdback_limit: int = 256) -> None:
        if holdback_limit < 1:
            raise ValueError(f"holdback_limit must be >= 1: {holdback_limit!r}")
        self.holdback_limit = holdback_limit
        self._origins: Dict[str, _OriginState] = {}
        self._skipped = 0

    def offer(self, origin: str, sequence: int, item: Any) -> List[Any]:
        """Submit one arrival; returns the in-order deliverable items.

        Duplicates (sequence already delivered or already held) release
        nothing.  If the holdback for an origin overflows, the oldest gap
        is *skipped*: blocking forever on a message that may never come
        (its origin crashed mid-publish) would halt the feed -- the skip
        is counted by the caller via :meth:`skipped`.
        """
        state = self._origins.setdefault(origin, _OriginState())
        if sequence < state.next_expected or sequence in state.held:
            return []
        state.held[sequence] = item

        if len(state.held) > self.holdback_limit:
            # Skip to the oldest held sequence to relieve the overflow.
            oldest = min(state.held)
            self._skipped += oldest - state.next_expected
            state.next_expected = oldest

        released: List[Any] = []
        while state.next_expected in state.held:
            released.append(state.held.pop(state.next_expected))
            state.next_expected += 1
        return released

    @property
    def skipped(self) -> int:
        """How many sequence numbers were abandoned due to overflow."""
        return self._skipped

    def held_count(self, origin: Optional[str] = None) -> int:
        """Messages currently held back (for one origin or in total)."""
        if origin is not None:
            state = self._origins.get(origin)
            return len(state.held) if state else 0
        return sum(len(state.held) for state in self._origins.values())

    def next_expected(self, origin: str) -> int:
        """The next sequence number deliverable for ``origin``."""
        state = self._origins.get(origin)
        return state.next_expected if state else 0

    def counters(self) -> Dict[str, int]:
        """Per-origin ``next_expected`` counters (the durable part of the
        FIFO state; held items are recovered via the message store)."""
        return {
            origin: state.next_expected
            for origin, state in self._origins.items()
        }

    def restore_counter(self, origin: str, next_expected: int) -> None:
        """Restore a delivered-watermark after a crash: sequences below
        ``next_expected`` were already delivered and must be suppressed."""
        state = self._origins.setdefault(origin, _OriginState())
        if next_expected <= state.next_expected:
            return
        state.next_expected = next_expected
        for sequence in [s for s in state.held if s < next_expected]:
            del state.held[sequence]

    def __repr__(self) -> str:
        return (
            f"FifoBuffer(origins={len(self._origins)}, "
            f"held={self.held_count()}, skipped={self.skipped})"
        )
