"""The coordinator's Subscription service.

Figure 1 shows Consumers and Disseminators *subscribing* at the
Coordinator, which "besides the Activation and Registration services from
WS-Coordination [...] manages the subscription list".  Subscribing makes a
node a potential gossip target without requiring any middleware change on
its side -- the Consumer story.

Subscriptions may carry a WS-style **lease**: ``{"expires": seconds}``
bounds the subscription's lifetime; re-subscribing renews it.  Expired
subscribers are pruned lazily on every subscription operation and
periodically by the hosting coordinator node, so departed consumers stop
being handed out as gossip targets.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Tuple

from repro.core.engine import PROTOCOL_SUBSCRIBER
from repro.soap import namespaces as ns
from repro.soap.fault import sender_fault
from repro.soap.handler import MessageContext
from repro.soap.service import Service, operation
from repro.wsa.addressing import EndpointReference
from repro.wscoord.coordinator import Activity, Coordinator

SUBSCRIBE_ACTION = f"{ns.WSGOSSIP}/Subscribe"
UNSUBSCRIBE_ACTION = f"{ns.WSGOSSIP}/Unsubscribe"

LEASE_KEY = "lease_expires_at"

# Activity property caching the earliest lease expiry across participants.
# prune_expired runs on every subscribe -- without the early-out, N
# subscriptions would each rescan the whole participant list (O(N^2) group
# setup).
_NEXT_EXPIRY_KEY = "lease_next_expiry"


def note_lease(activity: Activity, expires_at: float) -> None:
    """Record a new lease so the prune fast path stays conservative."""
    current = activity.properties.get(_NEXT_EXPIRY_KEY)
    if current is None or expires_at < current:
        activity.properties[_NEXT_EXPIRY_KEY] = expires_at


def prune_expired(activity: Activity, now: float) -> int:
    """Drop participants whose lease has lapsed; returns how many.

    O(1) when no lease can have expired yet (the common case): the
    earliest-expiry watermark is kept in the activity's properties and only
    a watermark breach pays for the full scan.
    """
    next_expiry = activity.properties.get(_NEXT_EXPIRY_KEY)
    if next_expiry is None or now < next_expiry:
        return 0
    before = len(activity.participants)
    earliest: Optional[float] = None
    kept = []
    for participant in activity.participants:
        expires_at = participant.metadata.get(LEASE_KEY)
        if expires_at is not None and expires_at <= now:
            continue
        kept.append(participant)
        if expires_at is not None and (earliest is None or expires_at < earliest):
            earliest = expires_at
    removed = before - len(kept)
    if removed:
        activity.participants[:] = kept
        activity.invalidate_index()
    if earliest is None:
        activity.properties.pop(_NEXT_EXPIRY_KEY, None)
    else:
        activity.properties[_NEXT_EXPIRY_KEY] = earliest
    return removed


class SubscriptionService(Service):
    """Manages the per-activity subscriber list on the coordinator node.

    Args:
        coordinator: the activity registry.
        clock: time source for leases (defaults to a frozen 0.0, which
            disables expiry -- the hosting node should pass its clock).
    """

    def __init__(
        self,
        coordinator: Coordinator,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        super().__init__()
        self._coordinator = coordinator
        self._clock = clock if clock is not None else (lambda: 0.0)

    def prune_all(self) -> int:
        """Prune expired subscribers in every activity; returns the total."""
        now = self._clock()
        return sum(
            prune_expired(activity, now)
            for activity in self._coordinator.activities()
        )

    @operation(SUBSCRIBE_ACTION)
    def subscribe(
        self, context: MessageContext, value: Optional[Dict[str, Any]]
    ) -> Dict[str, Any]:
        """SOAP operation: add a subscriber (optionally leased)."""
        activity_id, participant = self._parse(value)
        expires = value.get("expires")
        if expires is not None and (
            not isinstance(expires, (int, float)) or expires <= 0
        ):
            raise sender_fault("expires must be a positive number of seconds")
        metadata: Dict[str, Any] = {"subscription": True}
        now = self._clock()
        if expires is not None:
            metadata[LEASE_KEY] = now + float(expires)

        activity = self._coordinator.activity(activity_id)
        prune_expired(activity, now)
        self._coordinator.register(
            activity_id,
            PROTOCOL_SUBSCRIBER,
            EndpointReference(participant),
            metadata=metadata,
        )
        if expires is not None:
            note_lease(activity, metadata[LEASE_KEY])
        response: Dict[str, Any] = {"activity": activity_id, "subscribed": True}
        if expires is not None:
            response["expires_at"] = metadata[LEASE_KEY]
        return response

    @operation(UNSUBSCRIBE_ACTION)
    def unsubscribe(
        self, context: MessageContext, value: Optional[Dict[str, Any]]
    ) -> Dict[str, Any]:
        """SOAP operation: remove a subscriber."""
        activity_id, participant = self._parse(value)
        activity = self._coordinator.activity(activity_id)
        prune_expired(activity, self._clock())
        before = len(activity.participants)
        activity.participants[:] = [
            existing
            for existing in activity.participants
            if not (
                existing.endpoint.address == participant
                and existing.protocol == PROTOCOL_SUBSCRIBER
            )
        ]
        if len(activity.participants) != before:
            activity.invalidate_index()
        return {
            "activity": activity_id,
            "subscribed": False,
            "removed": before - len(activity.participants),
        }

    @staticmethod
    def _parse(value: Optional[Dict[str, Any]]) -> Tuple[str, str]:
        if not isinstance(value, dict):
            raise sender_fault("Subscribe requires a map payload")
        activity_id = value.get("activity")
        participant = value.get("participant")
        if not isinstance(activity_id, str) or not isinstance(participant, str):
            raise sender_fault("Subscribe requires activity and participant")
        return activity_id, participant
