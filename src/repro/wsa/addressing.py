"""WS-Addressing 1.0 (2005/08) endpoint references and headers.

All messaging in this stack is one-way with WS-A semantics, the natural fit
for gossip: a request carries ``MessageID``/``ReplyTo``/``Action``; a reply
is itself a one-way message whose ``RelatesTo`` points back.  This is also
how the HTTP binding works (202 Accepted + callback), so the simulated and
real transports share one model.
"""

from __future__ import annotations

import uuid
import xml.etree.ElementTree as ET
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.soap import namespaces as ns
from repro.soap.envelope import Envelope
from repro.xmlutil import qname

_TO = qname(ns.WSA, "To")
_ACTION = qname(ns.WSA, "Action")
_MESSAGE_ID = qname(ns.WSA, "MessageID")
_RELATES_TO = qname(ns.WSA, "RelatesTo")
_REPLY_TO = qname(ns.WSA, "ReplyTo")
_FROM = qname(ns.WSA, "From")
_ADDRESS = qname(ns.WSA, "Address")
_REFERENCE_PARAMETERS = qname(ns.WSA, "ReferenceParameters")


def new_message_id() -> str:
    """A fresh ``urn:uuid:`` message identifier."""
    return f"urn:uuid:{uuid.uuid4()}"


@dataclass(frozen=True)
class EndpointReference:
    """A WS-A endpoint reference: an address URI plus reference parameters.

    Reference parameters are opaque string pairs echoed back as headers by
    whoever replies -- WS-Coordination uses them to carry context
    identifiers.
    """

    address: str
    reference_parameters: Dict[str, str] = field(default_factory=dict)

    def to_element(self, tag: str) -> ET.Element:
        """Serialize as an EPR element named ``tag``."""
        element = ET.Element(tag)
        address = ET.SubElement(element, _ADDRESS)
        address.text = self.address
        if self.reference_parameters:
            params = ET.SubElement(element, _REFERENCE_PARAMETERS)
            for key, value in sorted(self.reference_parameters.items()):
                child = ET.SubElement(params, qname(ns.WSGOSSIP, key))
                child.text = value
        return element

    @classmethod
    def from_element(cls, element: ET.Element) -> "EndpointReference":
        """Parse an EPR element.

        Raises:
            ValueError: when the mandatory ``Address`` child is missing.
        """
        address = element.findtext(_ADDRESS)
        if address is None:
            raise ValueError("EndpointReference missing wsa:Address")
        parameters: Dict[str, str] = {}
        params = element.find(_REFERENCE_PARAMETERS)
        if params is not None:
            for child in params:
                local = child.tag.rpartition("}")[2]
                parameters[local] = child.text or ""
        return cls(address=address, reference_parameters=parameters)

    def __hash__(self) -> int:
        return hash((self.address, tuple(sorted(self.reference_parameters.items()))))


@dataclass
class AddressingHeaders:
    """The message addressing properties (MAPs) of one message."""

    to: Optional[str] = None
    action: Optional[str] = None
    message_id: Optional[str] = None
    relates_to: Optional[str] = None
    reply_to: Optional[EndpointReference] = None
    from_: Optional[EndpointReference] = None

    def apply(self, envelope: Envelope) -> None:
        """Write these MAPs into the envelope's headers (replacing any
        existing WS-A headers)."""
        for tag in (_TO, _ACTION, _MESSAGE_ID, _RELATES_TO, _REPLY_TO, _FROM):
            envelope.remove_header(tag)
        if self.to is not None:
            element = ET.Element(_TO)
            element.text = self.to
            envelope.add_header(element)
        if self.action is not None:
            element = ET.Element(_ACTION)
            element.text = self.action
            envelope.add_header(element)
        if self.message_id is not None:
            element = ET.Element(_MESSAGE_ID)
            element.text = self.message_id
            envelope.add_header(element)
        if self.relates_to is not None:
            element = ET.Element(_RELATES_TO)
            element.text = self.relates_to
            envelope.add_header(element)
        if self.reply_to is not None:
            envelope.add_header(self.reply_to.to_element(_REPLY_TO))
        if self.from_ is not None:
            envelope.add_header(self.from_.to_element(_FROM))

    @classmethod
    def extract(cls, envelope: Envelope) -> "AddressingHeaders":
        """Read the MAPs present in an envelope (absent ones stay ``None``)."""
        reply_to_element = envelope.header(_REPLY_TO)
        from_element = envelope.header(_FROM)
        return cls(
            to=envelope.header_text(_TO),
            action=envelope.header_text(_ACTION),
            message_id=envelope.header_text(_MESSAGE_ID),
            relates_to=envelope.header_text(_RELATES_TO),
            reply_to=(
                EndpointReference.from_element(reply_to_element)
                if reply_to_element is not None
                else None
            ),
            from_=(
                EndpointReference.from_element(from_element)
                if from_element is not None
                else None
            ),
        )
