"""WS-Addressing: endpoint references and message addressing properties."""

from repro.wsa.addressing import (
    AddressingHeaders,
    EndpointReference,
    new_message_id,
)

__all__ = ["AddressingHeaders", "EndpointReference", "new_message_id"]
