"""The event queue and the simulator main loop.

Events are ``(time, sequence, callback)`` triples kept in a binary heap.
The sequence number breaks ties so that two events scheduled for the same
instant fire in scheduling order -- this is what makes runs deterministic.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional

from repro.simnet.clock import VirtualClock
from repro.simnet.rng import RngStreams


class Event:
    """A scheduled callback.

    Ordering is by ``(time, seq)``; the callback itself does not participate
    in comparisons.  Identity hashing/equality (the default) is intentional:
    processes keep their pending timers in sets.
    """

    __slots__ = ("time", "seq", "callback", "cancelled", "_queue")

    def __init__(self, time: float, seq: int, callback: Callable[[], None]) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.cancelled = False
        self._queue: Optional["EventQueue"] = None

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def cancel(self) -> None:
        """Mark the event so the simulator skips it when popped."""
        if not self.cancelled:
            self.cancelled = True
            if self._queue is not None:
                self._queue._note_cancel()

    def __repr__(self) -> str:
        return (
            f"Event(time={self.time!r}, seq={self.seq!r}, "
            f"cancelled={self.cancelled!r})"
        )


class EventQueue:
    """A min-heap of :class:`Event` objects with stable FIFO tie-breaking.

    Cancelled events stay in the heap (lazy deletion) but a live counter is
    maintained on push/pop/cancel, so :meth:`__len__` is O(1) instead of a
    full heap scan per call.  When dead entries outnumber live ones the heap
    is compacted in place, so a long run that cancels many timers (churn,
    overload shedding) does not drag an ever-growing tail of tombstones
    through every subsequent push and pop.
    """

    #: Never compact below this many dead entries -- rebuilding a tiny heap
    #: costs more than carrying the tombstones.
    COMPACT_MIN_DEAD = 64

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._counter = itertools.count()
        self._live = 0

    def _note_cancel(self) -> None:
        self._live -= 1
        dead = len(self._heap) - self._live
        if dead > self._live and dead >= self.COMPACT_MIN_DEAD:
            self.compact()

    def compact(self) -> None:
        """Drop cancelled entries and re-heapify.

        Safe at any point: ``(time, seq)`` is a unique total order, so the
        rebuilt heap pops live events in exactly the order the lazy-deletion
        heap would have.
        """
        self._heap = [event for event in self._heap if not event.cancelled]
        heapq.heapify(self._heap)

    def push(self, time: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at ``time``; returns the cancellable event."""
        event = Event(time, next(self._counter), callback)
        event._queue = self
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def pop(self) -> Event:
        """Pop the earliest non-cancelled event.

        Raises:
            IndexError: if the queue is empty (after discarding cancellations).
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                event._queue = None
                self._live -= 1
                return event
        raise IndexError("pop from empty EventQueue")

    def pop_if_before(self, deadline: float) -> Optional[Event]:
        """Pop the earliest live event iff its time is ``<= deadline``.

        One heap traversal serves both the peek and the pop, unlike the
        ``peek_time()`` + ``pop()`` pair which walks past the same cancelled
        prefix twice.  This is the hot path of barrier stepping in the
        sharded simulator, where ``run_until`` is called once per window.

        Returns ``None`` (and leaves the event queued) when the queue is
        empty or the earliest event lies beyond ``deadline``.
        """
        heap = self._heap
        while heap:
            event = heap[0]
            if event.cancelled:
                heapq.heappop(heap)
                continue
            if event.time > deadline:
                return None
            heapq.heappop(heap)
            event._queue = None
            self._live -= 1
            return event
        return None

    def peek_time(self) -> Optional[float]:
        """Time of the earliest pending event, or ``None`` if empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self.peek_time() is not None


class Simulator:
    """Drives the virtual clock through the event queue.

    The simulator owns the clock and the master RNG streams.  Simulated
    components schedule work with :meth:`call_at` / :meth:`call_after` and
    the run methods execute events in timestamp order.

    Example:
        >>> sim = Simulator(seed=1)
        >>> fired = []
        >>> _ = sim.call_after(2.0, lambda: fired.append(sim.now))
        >>> sim.run()
        >>> fired
        [2.0]
    """

    def __init__(self, seed: int = 0, start_time: float = 0.0) -> None:
        self.clock = VirtualClock(start_time)
        self.rng = RngStreams(seed)
        self._queue = EventQueue()
        self._events_executed = 0
        self._stopped = False

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self.clock.now

    @property
    def events_executed(self) -> int:
        """How many events have fired so far (cancelled ones excluded)."""
        return self._events_executed

    @property
    def pending_events(self) -> int:
        """How many events are still scheduled."""
        return len(self._queue)

    def call_at(self, when: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at absolute time ``when``.

        Raises:
            ValueError: if ``when`` is in the simulated past.
        """
        if when < self.now:
            raise ValueError(f"cannot schedule in the past: {when!r} < {self.now!r}")
        return self._queue.push(when, callback)

    def call_after(self, delay: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative: {delay!r}")
        return self._queue.push(self.now + delay, callback)

    def stop(self) -> None:
        """Request the current run loop to return after the current event."""
        self._stopped = True

    def step(self) -> bool:
        """Execute the next event.  Returns ``False`` when the queue is empty."""
        try:
            event = self._queue.pop()
        except IndexError:
            return False
        self.clock.advance_to(event.time)
        self._events_executed += 1
        event.callback()
        return True

    def run(self, max_events: Optional[int] = None) -> None:
        """Run until the queue drains, :meth:`stop` is called, or
        ``max_events`` events have fired."""
        self._stopped = False
        executed = 0
        while not self._stopped:
            if max_events is not None and executed >= max_events:
                return
            if not self.step():
                return
            executed += 1

    def run_until(self, deadline: float) -> None:
        """Run events with timestamps ``<= deadline``, then set the clock to
        ``deadline`` so callers can keep scheduling relative to it."""
        self._stopped = False
        queue = self._queue
        clock = self.clock
        while not self._stopped:
            event = queue.pop_if_before(deadline)
            if event is None:
                break
            clock.advance_to(event.time)
            self._events_executed += 1
            event.callback()
        if deadline > self.now:
            self.clock.advance_to(deadline)

    def __repr__(self) -> str:
        return (
            f"Simulator(now={self.now!r}, pending={self.pending_events}, "
            f"executed={self._events_executed})"
        )
