"""Simulated processes (nodes).

A :class:`Process` is a named actor attached to a :class:`~repro.simnet.network.Network`.
Subclasses override the ``on_*`` hooks.  Crash semantics follow the paper's
fault model (crash-stop with optional recovery): a crashed process receives
no messages, its pending timers are cancelled, and on recovery it restarts
from whatever state the subclass chose to keep (crash-recovery) or reset
(crash-stop with fresh start).
"""

from __future__ import annotations

import enum
from typing import Any, Callable, Dict, List, Optional

from repro.simnet.events import Event
from repro.simnet.network import Network


class ProcessState(enum.Enum):
    """Lifecycle of a simulated process."""

    NEW = "new"
    RUNNING = "running"
    CRASHED = "crashed"
    STOPPED = "stopped"


class Process:
    """Base class for all simulated nodes.

    Subclass hooks (all optional):

    * :meth:`on_start`   -- called once when the process starts.
    * :meth:`on_message` -- called per delivered message.
    * :meth:`on_crash`   -- called when a fault crashes the process.
    * :meth:`on_recover` -- called when the process restarts after a crash.
    * :meth:`on_stop`    -- called on orderly shutdown.
    """

    def __init__(self, name: str, network: Network) -> None:
        self.name = name
        self.network = network
        self.sim = network.sim
        self.state = ProcessState.NEW
        # A set, not a list: a busy node has thousands of pending timers
        # and every firing removes itself -- list.remove would be an O(n)
        # scan per event (Event hashes by identity for exactly this).
        self._timers: set = set()
        network.attach(self)

    # -- queries --------------------------------------------------------------

    @property
    def is_running(self) -> bool:
        return self.state is ProcessState.RUNNING

    @property
    def now(self) -> float:
        return self.sim.now

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> None:
        """Move to RUNNING and invoke :meth:`on_start`."""
        if self.state is ProcessState.RUNNING:
            return
        if self.state is ProcessState.STOPPED:
            raise RuntimeError(f"process {self.name!r} was stopped; cannot restart")
        previous = self.state
        self.state = ProcessState.RUNNING
        if previous is ProcessState.CRASHED:
            self.network.trace.record(self.now, "proc.recover", self.name)
            self.on_recover()
        else:
            self.network.trace.record(self.now, "proc.start", self.name)
            self.on_start()

    def crash(self) -> None:
        """Crash-stop: drop timers, stop receiving."""
        if self.state is not ProcessState.RUNNING:
            return
        self.state = ProcessState.CRASHED
        self._cancel_timers()
        self.network.trace.record(self.now, "proc.crash", self.name)
        self.on_crash()

    def restart(self, amnesia: bool = True) -> None:
        """Crash-faithful restart: discard (or replay) state, then resume.

        Unlike the legacy recover path (:meth:`start` after a crash, which
        resumes with the full pre-crash in-memory state intact), a restart
        actually loses the process image: :meth:`reset_state` rebuilds the
        subclass's volatile state -- from durable storage when
        ``amnesia=False`` and the subclass has any, from nothing otherwise
        -- and :meth:`on_restart` then runs the rejoin path.  A RUNNING
        process is crashed first so a restart is never a silent pause.
        """
        if self.state is ProcessState.STOPPED:
            raise RuntimeError(f"process {self.name!r} was stopped; cannot restart")
        if self.state is ProcessState.RUNNING:
            self.crash()
        self.reset_state(amnesia)
        self.state = ProcessState.RUNNING
        self.network.trace.record(
            self.now, "proc.restart", self.name, amnesia=amnesia
        )
        self.on_restart(amnesia)

    def stop(self) -> None:
        """Orderly permanent shutdown."""
        if self.state is ProcessState.STOPPED:
            return
        self.state = ProcessState.STOPPED
        self._cancel_timers()
        self.network.trace.record(self.now, "proc.stop", self.name)
        self.on_stop()

    # -- communication -----------------------------------------------------------

    def send(self, destination: str, payload: Any, size: int = 0):
        """Send a message; silently ignored unless RUNNING (a crashed node
        cannot transmit).

        Returns the :class:`~repro.simnet.network.NetworkMessage` (which
        records synchronously-known drops -- loss, partition, dead
        destination), or ``None`` when this process is not running.
        """
        if self.is_running:
            return self.network.send(self.name, destination, payload, size=size)
        return None

    def deliver(self, source: str, payload: Any) -> None:
        """Called by the network; routes to :meth:`on_message` when alive."""
        if self.is_running:
            self.on_message(source, payload)

    # -- timers --------------------------------------------------------------------

    def set_timer(self, delay: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` after ``delay`` seconds of simulated time.

        The timer fires only if the process is still RUNNING at that moment;
        crash and stop cancel all pending timers.
        """
        def fire() -> None:
            self._timers.discard(event)
            if self.is_running:
                callback()

        event = self.sim.call_after(delay, fire)
        self._timers.add(event)
        return event

    def set_periodic_timer(
        self,
        period: float,
        callback: Callable[[], None],
        jitter: float = 0.0,
    ) -> None:
        """Fire ``callback`` every ``period`` seconds while RUNNING.

        ``jitter`` adds a uniform random offset in ``[0, jitter]`` to every
        firing, desynchronizing gossip rounds across nodes the way real
        unsynchronized clocks do.
        """
        if period <= 0:
            raise ValueError(f"period must be positive: {period!r}")
        rng = self.sim.rng.get(f"timer-jitter:{self.name}")

        def tick() -> None:
            callback()
            if self.is_running:
                delay = period + (rng.uniform(0.0, jitter) if jitter > 0 else 0.0)
                self.set_timer(delay, tick)

        initial = period + (rng.uniform(0.0, jitter) if jitter > 0 else 0.0)
        self.set_timer(initial, tick)

    def _cancel_timers(self) -> None:
        for event in self._timers:
            event.cancel()
        self._timers.clear()

    # -- subclass hooks ----------------------------------------------------------------

    def on_start(self) -> None:
        """Called once when the process first starts."""

    def on_message(self, source: str, payload: Any) -> None:
        """Called for each message delivered while RUNNING."""

    def on_crash(self) -> None:
        """Called when the process crashes."""

    def on_recover(self) -> None:
        """Called when the process restarts after a crash."""

    def reset_state(self, amnesia: bool) -> None:
        """Rebuild volatile state for :meth:`restart`.

        Called while the process is still down.  Subclasses discard
        everything the crash destroyed; with ``amnesia=False`` they may
        replay whatever durable storage they keep.  The base class holds
        no subclass state, so the default is a no-op.
        """

    def on_restart(self, amnesia: bool) -> None:
        """Called after :meth:`restart` brings the process back RUNNING
        (the rejoin hook).  Defaults to :meth:`on_recover` so subclasses
        predating the crash-recovery subsystem keep working."""
        self.on_recover()

    def on_stop(self) -> None:
        """Called on orderly shutdown."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r}, state={self.state.value})"
