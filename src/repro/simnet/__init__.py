"""Discrete-event simulation kernel for WS-Gossip experiments.

The simulator is deterministic: given the same seed and the same program it
produces the same event order, message interleaving, losses and failures.
All WS-Gossip experiments (DESIGN.md, E1-E9) run on this kernel; the real
HTTP transport in :mod:`repro.transport.http` exists for the examples only.

Layering:

* :mod:`repro.simnet.clock`    -- virtual time.
* :mod:`repro.simnet.events`   -- the event queue and :class:`Simulator`.
* :mod:`repro.simnet.rng`      -- named, independently seeded RNG streams.
* :mod:`repro.simnet.latency`  -- message latency models.
* :mod:`repro.simnet.network`  -- the network fabric: delivery, loss,
  partitions, per-link overrides.
* :mod:`repro.simnet.process`  -- the simulated process (node) base class.
* :mod:`repro.simnet.faults`   -- crash / recovery / churn / partition plans.
* :mod:`repro.simnet.trace`    -- structured event tracing.
* :mod:`repro.simnet.metrics`  -- counters, histograms and time series.
"""

from repro.simnet.clock import VirtualClock
from repro.simnet.events import Event, EventQueue, Simulator
from repro.simnet.faults import ChurnGenerator, FaultPlan
from repro.simnet.latency import (
    ExponentialLatency,
    FixedLatency,
    LatencyModel,
    LogNormalLatency,
    UniformLatency,
)
from repro.simnet.metrics import Counter, Histogram, MetricsRegistry, TimeSeries
from repro.simnet.network import Network, NetworkMessage
from repro.simnet.process import Process, ProcessState
from repro.simnet.rng import RngStreams
from repro.simnet.trace import TraceEvent, TraceLog

__all__ = [
    "ChurnGenerator",
    "Counter",
    "Event",
    "EventQueue",
    "ExponentialLatency",
    "FaultPlan",
    "FixedLatency",
    "Histogram",
    "LatencyModel",
    "LogNormalLatency",
    "MetricsRegistry",
    "Network",
    "NetworkMessage",
    "Process",
    "ProcessState",
    "RngStreams",
    "Simulator",
    "TimeSeries",
    "TraceEvent",
    "TraceLog",
    "UniformLatency",
    "VirtualClock",
]
