"""The simulated network fabric.

The network connects named :class:`~repro.simnet.process.Process` instances.
Sending draws a latency from the configured model, applies loss and
partition checks, and schedules delivery on the simulator.  Delivery is
per-message (datagram semantics): no ordering guarantee across messages,
which is the honest model for SOAP-over-HTTP between distinct connections.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, Iterable, List, Optional, Tuple

from repro.simnet.events import Simulator
from repro.simnet.latency import FixedLatency, LatencyModel
from repro.simnet.metrics import MetricsRegistry
from repro.simnet.trace import TraceLog

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.simnet.process import Process


@dataclass
class NetworkMessage:
    """A message in flight (or delivered/dropped)."""

    source: str
    destination: str
    payload: Any
    send_time: float
    size: int = 0
    deliver_time: Optional[float] = None
    dropped: bool = False
    drop_reason: Optional[str] = None
    corrupted: bool = False


class Network:
    """Message fabric with latency, loss and partitions.

    Args:
        sim: the simulator events are scheduled on.
        latency: default latency model for all links.
        loss_rate: probability in ``[0, 1]`` that any message is dropped.
        trace: optional shared trace log.
        metrics: optional shared metrics sink; when omitted the network
            creates its own :class:`~repro.obs.hub.MetricsHub` chained to
            the default hub, so two networks in one process never share
            metric state.
    """

    def __init__(
        self,
        sim: Simulator,
        latency: Optional[LatencyModel] = None,
        loss_rate: float = 0.0,
        trace: Optional[TraceLog] = None,
        metrics: Optional[MetricsRegistry] = None,
        rng: Optional[Any] = None,
    ) -> None:
        # Imported here, not at module top: obs.hub pulls in
        # simnet.metrics, whose package init reaches back to this module.
        from repro.obs.hub import MetricsHub, default_hub

        if not 0.0 <= loss_rate <= 1.0:
            raise ValueError(f"loss_rate must be in [0, 1]: {loss_rate!r}")
        self.sim = sim
        self.latency = latency if latency is not None else FixedLatency(0.001)
        self.loss_rate = loss_rate
        self.trace = trace if trace is not None else TraceLog(enabled=False)
        self.metrics = (
            metrics if metrics is not None else MetricsHub(parent=default_hub())
        )
        # The observability hub scoping this network's simulation.  When a
        # plain registry was injected (tests asserting on bare counters)
        # the hub is a fresh sibling so stat groups still resolve somewhere.
        self.hub = (
            self.metrics
            if isinstance(self.metrics, MetricsHub)
            else MetricsHub(parent=default_hub())
        )
        self._processes: Dict[str, "Process"] = {}
        self._link_latency: Dict[Tuple[str, str], LatencyModel] = {}
        self._link_loss: Dict[Tuple[str, str], float] = {}
        self._partition_of: Dict[str, int] = {}
        # Wire corruption: probability that a delivered payload has one
        # byte flipped (fault injection for parser robustness).
        self.corruption_rate = 0.0
        # Optional egress bandwidth (bytes/second) per node: messages
        # serialize onto the wire, so a busy sender delays later sends.
        self._egress_bandwidth: Dict[str, float] = {}
        self._egress_busy_until: Dict[str, float] = {}
        # Loss/latency draws come from one stream.  A sharded worker
        # injects its per-shard stream here so shards stay independent; the
        # default is the simulator's "network" stream, unchanged.
        self._rng = rng if rng is not None else sim.rng.get("network")
        # Cross-shard egress hook (see repro.simnet.shard.ShardEgress):
        # when set, sends to a name the hook owns are buffered as envelopes
        # for the parent to route instead of being dropped as dead.
        self._egress: Optional[Any] = None
        # The per-message metric objects, bound once: send/_deliver run for
        # every simulated message, and the registry's name lookup is
        # measurable overhead at that call rate.
        self._sent = self.metrics.counter("net.sent")
        self._bytes = self.metrics.counter("net.bytes")
        self._dropped = self.metrics.counter("net.dropped")
        self._delivered = self.metrics.counter("net.delivered")
        self._latency_hist = self.metrics.histogram("net.latency")

    # -- membership of the fabric ------------------------------------------

    def attach(self, process: "Process") -> None:
        """Register a process under its name.

        Raises:
            ValueError: if the name is already taken by another process.
        """
        existing = self._processes.get(process.name)
        if existing is not None and existing is not process:
            raise ValueError(f"process name already attached: {process.name!r}")
        self._processes[process.name] = process

    def detach(self, name: str) -> None:
        """Remove a process; in-flight messages to it will be dropped."""
        self._processes.pop(name, None)

    def process(self, name: str) -> "Process":
        """Look up an attached process by name (KeyError if absent)."""
        return self._processes[name]

    def process_names(self) -> List[str]:
        """Names of every attached process."""
        return list(self._processes)

    def __contains__(self, name: str) -> bool:
        return name in self._processes

    # -- link configuration -------------------------------------------------

    def set_link_latency(self, source: str, destination: str, model: LatencyModel) -> None:
        """Override latency on the directed link ``source -> destination``."""
        self._link_latency[(source, destination)] = model

    def set_link_loss(self, source: str, destination: str, loss_rate: float) -> None:
        """Override loss on the directed link ``source -> destination``."""
        if not 0.0 <= loss_rate <= 1.0:
            raise ValueError(f"loss_rate must be in [0, 1]: {loss_rate!r}")
        self._link_loss[(source, destination)] = loss_rate

    def set_egress_bandwidth(self, name: str, bytes_per_second: float) -> None:
        """Bound a node's transmit rate; messages queue behind each other.

        Models the serialization delay a real NIC/stack imposes: a message
        of ``size`` bytes occupies the sender's uplink for
        ``size / bytes_per_second`` before propagation latency starts.
        """
        if bytes_per_second <= 0:
            raise ValueError(
                f"bytes_per_second must be positive: {bytes_per_second!r}"
            )
        self._egress_bandwidth[name] = bytes_per_second

    def set_corruption_rate(self, rate: float) -> None:
        """Flip one byte of a delivered payload with probability ``rate``.

        Corruption happens at delivery on a private copy -- fan-out sends
        share one buffer, and the other recipients must see clean bytes.
        """
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"corruption rate must be in [0, 1]: {rate!r}")
        self.corruption_rate = rate

    def _corrupt(self, payload: Any) -> Any:
        """One byte of ``payload`` flipped, on a copy (bytes only)."""
        if not isinstance(payload, (bytes, bytearray)) or len(payload) == 0:
            return payload
        mutated = bytearray(payload)
        index = self._rng.randrange(len(mutated))
        mutated[index] ^= 0xFF
        return bytes(mutated)

    def _transmission_delay(self, source: str, size: int) -> float:
        """Queueing + serialization delay at the sender (0 when unbounded)."""
        bandwidth = self._egress_bandwidth.get(source)
        if bandwidth is None or size <= 0:
            return 0.0
        start = max(self.sim.now, self._egress_busy_until.get(source, 0.0))
        departure = start + size / bandwidth
        self._egress_busy_until[source] = departure
        return departure - self.sim.now

    # -- partitions ----------------------------------------------------------

    def partition(self, groups: Iterable[Iterable[str]]) -> None:
        """Split the network: messages crossing group boundaries are dropped.

        Nodes not mentioned in any group remain mutually reachable (they
        implicitly form group ``-1``).
        """
        self._partition_of.clear()
        for index, group in enumerate(groups):
            for name in group:
                self._partition_of[name] = index

    def heal(self) -> None:
        """Remove all partitions."""
        self._partition_of.clear()

    def partitioned(self, source: str, destination: str) -> bool:
        """True when a partition separates the two nodes."""
        if not self._partition_of:
            return False
        group_a = self._partition_of.get(source, -1)
        group_b = self._partition_of.get(destination, -1)
        return group_a != group_b

    # -- sending -------------------------------------------------------------

    def send(self, source: str, destination: str, payload: Any, size: int = 0) -> NetworkMessage:
        """Send ``payload`` from ``source`` to ``destination``.

        The message may be dropped (loss, partition, dead destination); the
        returned :class:`NetworkMessage` records the outcome as it becomes
        known.  Sending to an unknown destination is a silent drop, matching
        a datagram to a host that is gone.
        """
        message = NetworkMessage(
            source=source,
            destination=destination,
            payload=payload,
            send_time=self.sim.now,
            size=size,
        )
        self._sent.inc()
        if size > 0:
            self._bytes.inc(size)
        if self.trace.enabled:
            self.trace.record(
                self.sim.now, "net.send", source, destination=destination
            )

        if self.partitioned(source, destination):
            self._drop(message, "partition")
            return message
        loss = self._link_loss.get((source, destination), self.loss_rate)
        if loss > 0.0 and self._rng.random() < loss:
            self._drop(message, "loss")
            return message
        # A dead destination refuses synchronously: SOAP-over-HTTP rides
        # TCP, so a crashed host means connection-refused at the sender --
        # observable failure evidence the health layer feeds on.  (A crash
        # while the message is in flight is still caught at delivery.)
        process = self._processes.get(destination)
        if process is None and self._egress is not None and self._egress.owns(destination):
            # The destination lives on another shard: draw the full delay
            # here (the sender's stream decides the arrival instant) and
            # hand the envelope to the egress buffer.  Liveness is checked
            # at the receiving shard on delivery, so a cross-shard send to
            # a dead node fails late (in-flight drop) rather than
            # synchronously -- the one sender-visible semantic difference.
            model = self._link_latency.get((source, destination), self.latency)
            delay = self._transmission_delay(source, size) + model.sample(self._rng)
            self._egress.emit(message, self.sim.now + delay)
            return message
        if process is None or not process.is_running:
            self._drop(message, "dead-destination")
            return message

        model = self._link_latency.get((source, destination), self.latency)
        delay = self._transmission_delay(source, size) + model.sample(self._rng)
        self.sim.call_after(delay, lambda: self._deliver(message))
        return message

    def set_egress(self, egress: Optional[Any]) -> None:
        """Install the cross-shard egress hook.

        ``egress`` must expose ``owns(name) -> bool`` (is this a node on a
        *remote* shard?) and ``emit(message, deliver_time)``.  ``None``
        uninstalls the hook, restoring single-process semantics.
        """
        self._egress = egress

    def inject_ingress(
        self,
        source: str,
        destination: str,
        payload: Any,
        size: int,
        send_time: float,
        deliver_time: float,
    ) -> NetworkMessage:
        """Schedule delivery of a message that originated on another shard.

        The sender's shard already charged loss and drew the latency; here
        the envelope only needs a delivery event.  ``deliver_time`` is
        clamped to ``sim.now`` so a float-rounding hair below the current
        barrier cannot schedule into the past.
        """
        message = NetworkMessage(
            source=source,
            destination=destination,
            payload=payload,
            send_time=send_time,
            size=size,
        )
        when = deliver_time if deliver_time > self.sim.now else self.sim.now
        self.sim.call_at(when, lambda: self._deliver(message))
        return message

    def _drop(self, message: NetworkMessage, reason: str) -> None:
        message.dropped = True
        message.drop_reason = reason
        self._dropped.inc()
        self.metrics.counter(f"net.dropped.{reason}").inc()
        if self.trace.enabled:
            self.trace.record(
                self.sim.now,
                "net.drop",
                message.source,
                destination=message.destination,
                reason=reason,
            )

    def _deliver(self, message: NetworkMessage) -> None:
        process = self._processes.get(message.destination)
        if process is None or not process.is_running:
            self._drop(message, "dead-destination")
            return
        # A partition raised while the message was in flight also cuts it.
        if self.partitioned(message.source, message.destination):
            self._drop(message, "partition")
            return
        if self.corruption_rate > 0.0 and self._rng.random() < self.corruption_rate:
            message.payload = self._corrupt(message.payload)
            message.corrupted = True
            self.metrics.counter("net.corrupted").inc()
        message.deliver_time = self.sim.now
        self._delivered.inc()
        self._latency_hist.observe(message.deliver_time - message.send_time)
        if self.trace.enabled:
            self.trace.record(
                self.sim.now,
                "net.deliver",
                message.destination,
                source=message.source,
            )
        process.deliver(message.source, message.payload)
