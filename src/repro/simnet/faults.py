"""Fault injection: crash schedules, partitions and churn.

A :class:`FaultPlan` is a declarative schedule of faults applied to a
network; :class:`ChurnGenerator` synthesizes continuous join/leave activity
at a target rate.  Both only *schedule* simulator events -- the kernel stays
oblivious to why a node crashed.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.simnet.events import Simulator
from repro.simnet.latency import FixedLatency, GaussianJitterLatency
from repro.simnet.network import Network


class FaultPlan:
    """Declarative fault schedule.

    Example::

        plan = FaultPlan(network)
        plan.crash_at(5.0, "node-3")
        plan.recover_at(12.0, "node-3")
        plan.partition_at(20.0, [["a", "b"], ["c", "d"]])
        plan.heal_at(30.0)
        plan.apply()
    """

    def __init__(self, network: Network) -> None:
        self.network = network
        self.sim = network.sim
        self._schedule: List[Tuple[float, str, tuple]] = []
        self._applied = False
        #: Victims of the most recent :meth:`crash_fraction_at` draw.
        self.last_victims: List[str] = []

    def crash_at(self, time: float, name: str) -> "FaultPlan":
        """Crash process ``name`` at simulated ``time``."""
        self._schedule.append((time, "crash", (name,)))
        return self

    def recover_at(self, time: float, name: str) -> "FaultPlan":
        """Resume a crashed process at ``time`` with its pre-crash
        in-memory state intact.

        .. deprecated::
            This models a *pause*, not a crash: the resurrected node keeps
            its full message store, dedup set and FIFO counters, which no
            real restart does.  Use :meth:`restart_at` and say what the
            state semantics are (``amnesia=True`` to forget, ``False`` to
            replay durable storage).
        """
        warnings.warn(
            "FaultPlan.recover_at resurrects a node with its in-memory "
            "state intact (a pause, not a crash); use "
            "FaultPlan.restart_at(time, name, amnesia=...) to make the "
            "state semantics explicit",
            DeprecationWarning,
            stacklevel=2,
        )
        self._schedule.append((time, "recover", (name,)))
        return self

    def restart_at(
        self, time: float, name: str, amnesia: bool = True
    ) -> "FaultPlan":
        """Restart process ``name`` at ``time`` with faithful crash
        semantics: the process image is lost.

        With ``amnesia=True`` the node restarts from nothing (durable
        storage is discarded too -- a lost disk).  With ``amnesia=False``
        the node replays whatever durable state it kept (a
        :class:`~repro.core.store.GossipLog` when configured) and rejoins
        via the catch-up protocol.  Either way, this composes with
        :meth:`crash_at` / :meth:`crash_fraction_at`: a restart of a node
        that is still RUNNING crashes it first.
        """
        self._schedule.append((time, "restart", (name, amnesia)))
        return self

    def crash_fraction_at(
        self,
        time: float,
        fraction: float,
        candidates: Sequence[str],
        restart_after: Optional[float] = None,
        amnesia: bool = True,
    ) -> "FaultPlan":
        """Crash a random ``fraction`` of ``candidates`` at ``time``.

        The victim set is drawn from the ``faults`` RNG stream at call
        time, so it is deterministic per seed and recorded in
        :attr:`last_victims` -- schedule follow-up faults (e.g. a
        :meth:`restart_at` of the same nodes) against it.  With
        ``restart_after`` the same victims are restarted
        ``restart_after`` seconds later with the given ``amnesia``
        semantics, making crash+restart a single composable step.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1]: {fraction!r}")
        rng = self.sim.rng.get("faults")
        count = int(round(fraction * len(candidates)))
        victims = rng.sample(list(candidates), count)
        self.last_victims = list(victims)
        for victim in victims:
            self.crash_at(time, victim)
            if restart_after is not None:
                self.restart_at(time + restart_after, victim, amnesia=amnesia)
        return self

    def partition_at(
        self, time: float, groups: Iterable[Iterable[str]]
    ) -> "FaultPlan":
        """Install a partition at ``time``."""
        frozen = [list(group) for group in groups]
        self._schedule.append((time, "partition", (frozen,)))
        return self

    def heal_at(self, time: float) -> "FaultPlan":
        """Remove all partitions at ``time``."""
        self._schedule.append((time, "heal", ()))
        return self

    def loss_at(self, time: float, rate: float) -> "FaultPlan":
        """Set the network-wide loss rate at ``time`` (0 restores health)."""
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"loss rate must be in [0, 1]: {rate!r}")
        self._schedule.append((time, "loss", (rate,)))
        return self

    def loss_ramp_at(
        self,
        time: float,
        start_rate: float,
        end_rate: float,
        duration: float,
        steps: int = 8,
    ) -> "FaultPlan":
        """Ramp the network-wide loss rate from ``start_rate`` to
        ``end_rate`` over ``duration`` seconds, in ``steps`` even steps.

        The final step lands exactly on ``end_rate`` at
        ``time + duration``; the rate then *stays* there (compose with
        :meth:`loss_at` to restore).  Deterministic: the schedule is fixed
        at call time, no randomness involved.
        """
        for rate in (start_rate, end_rate):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"loss rate must be in [0, 1]: {rate!r}")
        if duration < 0:
            raise ValueError(f"duration must be non-negative: {duration!r}")
        if steps < 1:
            raise ValueError(f"steps must be >= 1: {steps!r}")
        self._schedule.append((time, "loss", (start_rate,)))
        for step in range(1, steps + 1):
            fraction = step / steps
            rate = start_rate + (end_rate - start_rate) * fraction
            self._schedule.append((time + duration * fraction, "loss", (rate,)))
        return self

    def jitter_at(
        self,
        time: float,
        mean: float,
        sigma: float,
        until: Optional[float] = None,
    ) -> "FaultPlan":
        """Perturb the fabric's default latency to Gaussian jitter
        (``gauss(mean, sigma)``, clamped positive) at ``time``.

        With ``until`` the model in place *when the jitter began* is
        restored at that time.  Per-link overrides installed via
        :meth:`slow_link_at` are untouched -- this wobbles the default
        model only.  Deterministic: draws ride the network's own seeded
        RNG stream like every other latency model.
        """
        model = GaussianJitterLatency(mean, sigma)
        self._schedule.append((time, "jitter", (model,)))
        if until is not None:
            self._schedule.append((until, "unjitter", (model,)))
        return self

    def lossy_link_at(
        self, time: float, source: str, destination: str, rate: float
    ) -> "FaultPlan":
        """Degrade one directed link to ``rate`` loss at ``time``."""
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"loss rate must be in [0, 1]: {rate!r}")
        self._schedule.append((time, "link-loss", (source, destination, rate)))
        return self

    def slow_link_at(
        self, time: float, source: str, destination: str, latency
    ) -> "FaultPlan":
        """Slow one directed link at ``time``.

        ``latency`` is a :class:`~repro.simnet.latency.LatencyModel` or a
        plain float (seconds, fixed).
        """
        model = FixedLatency(latency) if isinstance(latency, (int, float)) else latency
        self._schedule.append((time, "slow-link", (source, destination, model)))
        return self

    def corrupt_at(self, time: float, rate: float) -> "FaultPlan":
        """Flip one byte of delivered payloads with probability ``rate``
        from ``time`` on (0 restores clean delivery)."""
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"corruption rate must be in [0, 1]: {rate!r}")
        self._schedule.append((time, "corrupt", (rate,)))
        return self

    def flaky_sends_at(
        self,
        time: float,
        names: Sequence[str],
        rate: float,
        until: Optional[float] = None,
    ) -> "FaultPlan":
        """Make the named nodes' *transports* fail sends with probability
        ``rate`` starting at ``time`` (cleared at ``until`` when given).

        This is a transport-level fault -- the failure is synchronously
        observable at the sender (as reason ``"flaky"``), exercising the
        retry/breaker/suspicion machinery rather than the network fabric.
        Nodes must host a :class:`~repro.transport.base.ResilientTransport`
        (every :class:`~repro.transport.inmem.WsProcess` does).
        """
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1]: {rate!r}")
        self._schedule.append((time, "flaky", (list(names), rate)))
        if until is not None:
            self._schedule.append((until, "unflaky", (list(names),)))
        return self

    def throttle_at(
        self,
        time: float,
        names: Sequence[str],
        rate: float,
        until: Optional[float] = None,
    ) -> "FaultPlan":
        """Make the named nodes *slow consumers* from ``time`` on: their
        gossip layers process at most ``rate`` inbound wire frames per
        second (restored to full speed at ``until`` when given).

        Frames arriving faster queue in the layer's bounded ingest queue
        and drain at the capped rate; with overload protection configured
        (``GossipConfig(overload=...)``) the queue sheds in priority
        order once its watermarks are crossed, without it the queue grows
        without bound -- exactly the collapse ``bench_overload`` measures.
        Nodes must expose a ``gossip_layer`` (every
        :class:`~repro.core.roles.DisseminatorNode` and
        :class:`~repro.core.decentralized.DecentralizedNode` does).
        """
        if rate <= 0:
            raise ValueError(f"rate must be positive: {rate!r}")
        self._schedule.append((time, "throttle", (list(names), rate)))
        if until is not None:
            self._schedule.append((until, "unthrottle", (list(names),)))
        return self

    def apply(self) -> None:
        """Schedule every fault on the simulator.  May only be called once."""
        if self._applied:
            raise RuntimeError("FaultPlan.apply() called twice")
        self._applied = True
        for time, action, args in self._schedule:
            if action == "crash":
                (name,) = args
                self.sim.call_at(time, self._crash_callback(name))
            elif action == "recover":
                (name,) = args
                self.sim.call_at(time, self._recover_callback(name))
            elif action == "restart":
                name, amnesia = args
                self.sim.call_at(time, self._restart_callback(name, amnesia))
            elif action == "partition":
                (groups,) = args
                self.sim.call_at(
                    time, lambda groups=groups: self.network.partition(groups)
                )
            elif action == "heal":
                self.sim.call_at(time, self.network.heal)
            elif action == "loss":
                (rate,) = args
                self.sim.call_at(
                    time, lambda rate=rate: setattr(self.network, "loss_rate", rate)
                )
            elif action == "link-loss":
                source, destination, rate = args
                self.sim.call_at(
                    time,
                    lambda s=source, d=destination, r=rate: (
                        self.network.set_link_loss(s, d, r)
                    ),
                )
            elif action == "slow-link":
                source, destination, model = args
                self.sim.call_at(
                    time,
                    lambda s=source, d=destination, m=model: (
                        self.network.set_link_latency(s, d, m)
                    ),
                )
            elif action == "jitter":
                (model,) = args
                self.sim.call_at(time, lambda m=model: self._set_jitter(m))
            elif action == "unjitter":
                (model,) = args
                self.sim.call_at(time, lambda m=model: self._clear_jitter(m))
            elif action == "corrupt":
                (rate,) = args
                self.sim.call_at(
                    time, lambda rate=rate: self.network.set_corruption_rate(rate)
                )
            elif action == "flaky":
                names, rate = args
                self.sim.call_at(
                    time, lambda n=names, r=rate: self._set_flaky(n, r)
                )
            elif action == "unflaky":
                (names,) = args
                self.sim.call_at(time, lambda n=names: self._set_flaky(n, 0.0))
            elif action == "throttle":
                names, rate = args
                self.sim.call_at(
                    time, lambda n=names, r=rate: self._set_throttle(n, r)
                )
            elif action == "unthrottle":
                (names,) = args
                self.sim.call_at(time, lambda n=names: self._set_throttle(n, None))

    def _set_jitter(self, model: GaussianJitterLatency) -> None:
        # Remember what the jitter displaced so ``until`` can restore it.
        self._displaced_latency = getattr(self, "_displaced_latency", {})
        self._displaced_latency[id(model)] = self.network.latency
        self.network.latency = model

    def _clear_jitter(self, model: GaussianJitterLatency) -> None:
        displaced = getattr(self, "_displaced_latency", {}).pop(id(model), None)
        if displaced is not None and self.network.latency is model:
            self.network.latency = displaced

    def _set_flaky(self, names: Sequence[str], rate: float) -> None:
        rng = self.sim.rng.get("faults")
        for name in names:
            if name not in self.network:
                continue
            transport = getattr(
                getattr(self.network.process(name), "runtime", None),
                "transport",
                None,
            )
            if transport is None or not hasattr(transport, "inject_fault"):
                continue
            if rate <= 0.0:
                transport.inject_fault(None)
            else:
                transport.inject_fault(
                    lambda address, r=rate: "flaky" if rng.random() < r else None
                )

    def _set_throttle(self, names: Sequence[str], rate: Optional[float]) -> None:
        for name in names:
            if name not in self.network:
                continue
            layer = getattr(self.network.process(name), "gossip_layer", None)
            if layer is None:
                continue
            if rate is None:
                layer.unthrottle()
            else:
                layer.throttle(rate)

    def _crash_callback(self, name: str):
        def crash() -> None:
            if name in self.network:
                self.network.process(name).crash()

        return crash

    def _recover_callback(self, name: str):
        def recover() -> None:
            if name in self.network:
                self.network.process(name).start()

        return recover

    def _restart_callback(self, name: str, amnesia: bool):
        def restart() -> None:
            if name in self.network:
                self.network.process(name).restart(amnesia=amnesia)

        return restart


@dataclass
class ChurnGenerator:
    """Continuous churn: crash a random running node, revive it after an
    exponentially distributed downtime.

    Args:
        network: the fabric to churn.
        candidates: names eligible for churn (protect coordinators by
            leaving them out).
        rate: expected churn events per second (crash + recover each count
            as one event).
        recover_delay: mean time a crashed node stays down.
        restart: revive victims through :meth:`~repro.simnet.process.
            Process.restart` -- faithful crash semantics where the process
            image is lost and the node rejoins via the recovery path.
            ``False`` (the historical default) revives with
            ``Process.start()``, a *pause-style* resume that keeps the
            entire pre-crash in-memory state; keep it only when that is
            the failure model you mean to measure.
        amnesia: with ``restart=True``, whether durable state is lost too
            (``True``, a lost disk) or replayed from the node's
            :class:`~repro.core.store.GossipLog` (``False``).  Ignored
            when ``restart`` is false.
    """

    network: Network
    candidates: Sequence[str]
    rate: float
    recover_delay: float = 1.0
    restart: bool = False
    amnesia: bool = True

    def start(self, until: Optional[float] = None) -> None:
        """Begin injecting churn until simulated time ``until`` (forever if
        ``None``, bounded by the run's own horizon)."""
        if self.rate <= 0:
            raise ValueError(f"rate must be positive: {self.rate!r}")
        self._until = until
        self._rng = self.network.sim.rng.get("churn")
        self._schedule_next()

    def _schedule_next(self) -> None:
        delay = self._rng.expovariate(self.rate)
        when = self.network.sim.now + delay
        if self._until is not None and when > self._until:
            return
        self.network.sim.call_at(when, self._churn_once)

    def _churn_once(self) -> None:
        running = [
            name
            for name in self.candidates
            if name in self.network and self.network.process(name).is_running
        ]
        if running:
            victim = self._rng.choice(running)
            process = self.network.process(victim)
            process.crash()
            down_for = self._rng.expovariate(1.0 / self.recover_delay)
            if self.restart:
                revive = lambda process=process: process.restart(
                    amnesia=self.amnesia
                )
            else:
                revive = lambda process=process: process.start()
            self.network.sim.call_after(down_for, revive)
        self._schedule_next()
