"""Trace persistence and analysis.

Experiment traces are worth keeping: export them as JSON lines for
offline inspection, load them back, and summarize who-talked-to-whom.
The formats are plain stdlib JSON -- no schema machinery -- because the
consumer is a researcher with a text editor.
"""

from __future__ import annotations

import json
from typing import Dict, IO, Iterable, List, Tuple

from repro.simnet.trace import TraceEvent, TraceLog


def dump_jsonl(trace: TraceLog, stream: IO[str]) -> int:
    """Write one JSON object per event; returns the number written."""
    count = 0
    for event in trace:
        record = {"time": event.time, "kind": event.kind}
        if event.node is not None:
            record["node"] = event.node
        if event.detail:
            record["detail"] = _jsonable(event.detail)
        stream.write(json.dumps(record, sort_keys=True) + "\n")
        count += 1
    return count


def _jsonable(detail: Dict) -> Dict:
    """Coerce detail values JSON can't represent into strings."""
    result = {}
    for key, value in detail.items():
        if isinstance(value, (str, int, float, bool)) or value is None:
            result[key] = value
        else:
            result[key] = repr(value)
    return result


def load_jsonl(stream: IO[str]) -> TraceLog:
    """Rebuild a trace from :func:`dump_jsonl` output.

    Raises:
        ValueError: on lines that are not valid event records.
    """
    trace = TraceLog(enabled=True)
    for line_number, line in enumerate(stream, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
            time = float(record["time"])
            kind = str(record["kind"])
        except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
            raise ValueError(f"bad trace record on line {line_number}") from exc
        trace.record(
            time, kind, record.get("node"), **record.get("detail", {})
        )
    return trace


def traffic_matrix(
    trace: TraceLog, kind: str = "net.send"
) -> Dict[Tuple[str, str], int]:
    """Count messages per (source, destination) pair."""
    matrix: Dict[Tuple[str, str], int] = {}
    for event in trace.events(kind=kind):
        destination = event.detail.get("destination")
        if event.node is None or destination is None:
            continue
        key = (event.node, destination)
        matrix[key] = matrix.get(key, 0) + 1
    return matrix


def top_talkers(
    trace: TraceLog, kind: str = "net.send", limit: int = 10
) -> List[Tuple[str, int]]:
    """Nodes ranked by messages sent."""
    totals: Dict[str, int] = {}
    for (source, _destination), count in traffic_matrix(trace, kind).items():
        totals[source] = totals.get(source, 0) + count
    ranked = sorted(totals.items(), key=lambda item: (-item[1], item[0]))
    return ranked[:limit]
