"""Virtual time for the discrete-event simulator.

Simulated time is a float number of seconds since the start of the run.
Only the :class:`~repro.simnet.events.Simulator` may advance the clock;
everything else reads it.
"""

from __future__ import annotations


class VirtualClock:
    """Monotonic simulated clock.

    The clock starts at ``0.0`` and can only move forward.  Attempting to
    move it backwards raises :class:`ValueError` -- that would mean the event
    queue yielded events out of order, which is a kernel bug worth failing
    loudly on.
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        if start < 0.0:
            raise ValueError(f"clock cannot start before zero: {start!r}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance_to(self, when: float) -> None:
        """Move the clock forward to ``when``.

        Raises:
            ValueError: if ``when`` is earlier than the current time.
        """
        if when < self._now:
            raise ValueError(
                f"clock cannot go backwards: now={self._now!r}, target={when!r}"
            )
        self._now = when

    def __repr__(self) -> str:
        return f"VirtualClock(now={self._now!r})"
