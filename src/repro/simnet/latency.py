"""Message latency models.

Each model is a callable object drawing one delivery delay (seconds) from a
supplied RNG stream.  Models never draw from global state, so two links with
separate streams stay independent.
"""

from __future__ import annotations

import math
import random


class LatencyModel:
    """Base class: draw a one-way message delay in seconds."""

    def sample(self, rng: random.Random) -> float:
        """Draw one delivery delay in seconds."""
        raise NotImplementedError

    def mean(self) -> float:
        """Expected delay, used by analytical helpers and trace summaries."""
        raise NotImplementedError

    def min_delay(self) -> float:
        """Conservative lower bound on any :meth:`sample` draw.

        The sharded simulator derives its cross-shard lookahead from this:
        no message sent at time ``t`` can arrive before ``t + min_delay()``,
        so shards may safely run ``min_delay()`` ahead of each other.
        Models with an unbounded-below tail must return ``0.0``.
        """
        return 0.0


class FixedLatency(LatencyModel):
    """Constant delay -- the simplest, fully deterministic model."""

    def __init__(self, delay: float = 0.001) -> None:
        if delay < 0:
            raise ValueError(f"delay must be non-negative: {delay!r}")
        self.delay = float(delay)

    def sample(self, rng: random.Random) -> float:
        """The constant delay (ignores the RNG)."""
        return self.delay

    def mean(self) -> float:
        return self.delay

    def min_delay(self) -> float:
        return self.delay

    def __repr__(self) -> str:
        return f"FixedLatency({self.delay!r})"


class UniformLatency(LatencyModel):
    """Delay drawn uniformly from ``[low, high]``."""

    def __init__(self, low: float, high: float) -> None:
        if low < 0 or high < low:
            raise ValueError(f"need 0 <= low <= high, got [{low!r}, {high!r}]")
        self.low = float(low)
        self.high = float(high)

    def sample(self, rng: random.Random) -> float:
        """Uniform draw from ``[low, high]``."""
        return rng.uniform(self.low, self.high)

    def mean(self) -> float:
        return (self.low + self.high) / 2.0

    def min_delay(self) -> float:
        return self.low

    def __repr__(self) -> str:
        return f"UniformLatency({self.low!r}, {self.high!r})"


class ExponentialLatency(LatencyModel):
    """Exponential delay with the given mean, plus an optional floor.

    The floor models the propagation delay below which no packet can arrive;
    the exponential tail models queueing.
    """

    def __init__(self, mean: float, floor: float = 0.0) -> None:
        if mean <= 0:
            raise ValueError(f"mean must be positive: {mean!r}")
        if floor < 0:
            raise ValueError(f"floor must be non-negative: {floor!r}")
        self._mean = float(mean)
        self.floor = float(floor)

    def sample(self, rng: random.Random) -> float:
        """Floor plus an exponential queueing tail."""
        return self.floor + rng.expovariate(1.0 / self._mean)

    def mean(self) -> float:
        return self.floor + self._mean

    def min_delay(self) -> float:
        return self.floor

    def __repr__(self) -> str:
        return f"ExponentialLatency(mean={self._mean!r}, floor={self.floor!r})"


class GaussianJitterLatency(LatencyModel):
    """Gaussian delay around a mean -- the jitter-perturbation model.

    Used by :meth:`~repro.simnet.faults.FaultPlan.jitter_at` to wobble a
    previously steady fabric: each delivery draws ``gauss(mean, sigma)``
    from the supplied RNG stream (deterministic per seed), clamped at a
    small positive floor so causality is preserved.
    """

    def __init__(self, mean: float, sigma: float, floor: float = 1e-6) -> None:
        if mean <= 0:
            raise ValueError(f"mean must be positive: {mean!r}")
        if sigma < 0:
            raise ValueError(f"sigma must be non-negative: {sigma!r}")
        if floor < 0:
            raise ValueError(f"floor must be non-negative: {floor!r}")
        self._mean = float(mean)
        self.sigma = float(sigma)
        self.floor = float(floor)

    def sample(self, rng: random.Random) -> float:
        """Gaussian draw around the mean, clamped at the floor."""
        return max(self.floor, rng.gauss(self._mean, self.sigma))

    def mean(self) -> float:
        # The clamp's bias is negligible for any sane (mean, sigma).
        return self._mean

    def min_delay(self) -> float:
        return self.floor

    def __repr__(self) -> str:
        return f"GaussianJitterLatency(mean={self._mean!r}, sigma={self.sigma!r})"


class LogNormalLatency(LatencyModel):
    """Log-normal delay, the standard fit for WAN round-trip distributions.

    Parameterized by the *median* delay and ``sigma`` (shape): most samples
    land near the median with a heavy right tail.
    """

    def __init__(self, median: float, sigma: float = 0.5) -> None:
        if median <= 0:
            raise ValueError(f"median must be positive: {median!r}")
        if sigma <= 0:
            raise ValueError(f"sigma must be positive: {sigma!r}")
        self.median = float(median)
        self.sigma = float(sigma)
        self._mu = math.log(median)

    def sample(self, rng: random.Random) -> float:
        """Log-normal draw around the configured median."""
        return rng.lognormvariate(self._mu, self.sigma)

    def mean(self) -> float:
        return math.exp(self._mu + self.sigma**2 / 2.0)

    def __repr__(self) -> str:
        return f"LogNormalLatency(median={self.median!r}, sigma={self.sigma!r})"
