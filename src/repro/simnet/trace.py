"""Structured tracing of simulation events.

Traces are the ground truth for experiment E1 (reproducing the paper's
Figure 1 message flow) and for debugging protocol behaviour.  A trace is an
append-only list of :class:`TraceEvent` records with cheap filtering
helpers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional


@dataclass(frozen=True)
class TraceEvent:
    """One timestamped record.

    Attributes:
        time: simulated time of the event.
        kind: short machine-readable tag, e.g. ``"send"``, ``"deliver"``,
            ``"crash"``, ``"gossip.forward"``.
        node: the node the event happened at (or ``None`` for global events).
        detail: free-form payload for assertions and reports.
    """

    time: float
    kind: str
    node: Optional[str] = None
    detail: Dict[str, Any] = field(default_factory=dict)


class TraceLog:
    """Append-only trace with filtering.

    Tracing can be disabled (``enabled=False``) for large benchmark runs
    where per-message records would dominate memory.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._events: List[TraceEvent] = []

    def record(
        self,
        time: float,
        kind: str,
        node: Optional[str] = None,
        **detail: Any,
    ) -> None:
        """Append one event (no-op when disabled)."""
        if self.enabled:
            self._events.append(TraceEvent(time, kind, node, detail))

    def events(
        self,
        kind: Optional[str] = None,
        node: Optional[str] = None,
        predicate: Optional[Callable[[TraceEvent], bool]] = None,
    ) -> List[TraceEvent]:
        """Return events matching all the given filters, in time order."""
        result = self._events
        if kind is not None:
            result = [event for event in result if event.kind == kind]
        if node is not None:
            result = [event for event in result if event.node == node]
        if predicate is not None:
            result = [event for event in result if predicate(event)]
        return list(result)

    def count(self, kind: Optional[str] = None) -> int:
        """Number of events, optionally restricted to one kind."""
        if kind is None:
            return len(self._events)
        return sum(1 for event in self._events if event.kind == kind)

    def kinds(self) -> List[str]:
        """Distinct event kinds in first-seen order."""
        seen: Dict[str, None] = {}
        for event in self._events:
            seen.setdefault(event.kind, None)
        return list(seen)

    def clear(self) -> None:
        """Drop every recorded event."""
        self._events.clear()

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def __len__(self) -> int:
        return len(self._events)
