"""Structured tracing of simulation events.

Traces are the ground truth for experiment E1 (reproducing the paper's
Figure 1 message flow) and for debugging protocol behaviour.  A trace is an
append-only list of :class:`TraceEvent` records with cheap filtering
helpers backed by per-kind and per-node indices.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional


@dataclass(frozen=True)
class TraceEvent:
    """One timestamped record.

    Attributes:
        time: simulated time of the event.
        kind: short machine-readable tag, e.g. ``"send"``, ``"deliver"``,
            ``"crash"``, ``"gossip.forward"``.
        node: the node the event happened at (or ``None`` for global events).
        detail: free-form payload for assertions and reports.
    """

    time: float
    kind: str
    node: Optional[str] = None
    detail: Dict[str, Any] = field(default_factory=dict)


class TraceLog:
    """Append-only trace with filtering.

    Tracing can be disabled (``enabled=False``) for large benchmark runs
    where per-message records would dominate memory.

    Filtered reads (:meth:`events`, :meth:`count`) are served from
    per-kind and per-node indices maintained at :meth:`record` time, so
    repeated queries do not rescan the whole log -- analysis code calls
    ``events(kind=...)`` once per kind per report, which was O(kinds x N)
    on large runs.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._events: List[TraceEvent] = []
        self._by_kind: Dict[str, List[TraceEvent]] = {}
        self._by_node: Dict[str, List[TraceEvent]] = {}

    def record(
        self,
        time: float,
        kind: str,
        node: Optional[str] = None,
        **detail: Any,
    ) -> None:
        """Append one event (no-op when disabled)."""
        if not self.enabled:
            return
        event = TraceEvent(time, kind, node, detail)
        self._events.append(event)
        bucket = self._by_kind.get(kind)
        if bucket is None:
            bucket = self._by_kind[kind] = []
        bucket.append(event)
        if node is not None:
            bucket = self._by_node.get(node)
            if bucket is None:
                bucket = self._by_node[node] = []
            bucket.append(event)

    def events(
        self,
        kind: Optional[str] = None,
        node: Optional[str] = None,
        predicate: Optional[Callable[[TraceEvent], bool]] = None,
    ) -> List[TraceEvent]:
        """Return events matching all the given filters, in time order."""
        # Start from the narrowest index available; append order is time
        # order within every bucket, so no re-sort is needed.
        if kind is not None:
            result: List[TraceEvent] = self._by_kind.get(kind, [])
            if node is not None:
                result = [event for event in result if event.node == node]
        elif node is not None:
            result = self._by_node.get(node, [])
        else:
            result = self._events
        if predicate is not None:
            return [event for event in result if predicate(event)]
        return list(result)

    def count(self, kind: Optional[str] = None) -> int:
        """Number of events, optionally restricted to one kind."""
        if kind is None:
            return len(self._events)
        return len(self._by_kind.get(kind, ()))

    def kinds(self) -> List[str]:
        """Distinct event kinds in first-seen order."""
        return list(self._by_kind)

    def clear(self) -> None:
        """Drop every recorded event."""
        self._events.clear()
        self._by_kind.clear()
        self._by_node.clear()

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def __len__(self) -> int:
        return len(self._events)
