"""Conservative parallel discrete-event simulation across processes.

The single-process :class:`~repro.simnet.events.Simulator` executes every
event on one core, which caps the reachable population size.  This module
shards a simulation across ``K`` worker processes, classic conservative-PDES
style:

* **Partitioning** -- every node name is assigned to exactly one shard,
  either by a stable hash (``crc32(name) % K``, independent of Python's
  randomized string hashing) or an explicit partition map
  (:class:`ShardPlan`).
* **Lookahead** -- all cross-shard messages travel through the latency
  model, whose :meth:`~repro.simnet.latency.LatencyModel.min_delay` bounds
  any delay from below.  A message sent at time ``t`` therefore cannot
  arrive before ``t + L`` where ``L`` is the lookahead, so shards may
  safely run ``L`` ahead of each other without ever receiving a message
  from their past.
* **Barriers** -- the parent drives all workers in lockstep windows.  Each
  round it computes ``m``, the minimum over every shard's next pending
  event time and every routed-but-undelivered arrival time, and advances
  every shard to ``T = min(deadline, m + L)``.  No shard can *send* before
  ``m`` (sending happens inside an event), and nothing sent at or after
  ``m`` can *arrive* before ``m + L``, so every event in ``(now, T]`` is
  safe to execute.  Cross-shard envelopes produced during the window are
  collected at the barrier and routed to their destination shards for the
  next window.
* **Determinism** -- each worker is a plain single-process ``Simulator``
  (same seed-derived streams as an unsharded run), and the parent sorts
  each shard's inbound envelopes by ``(deliver_time, source_shard,
  sequence)`` before injection.  Same seed + same shard count => identical
  per-shard event order, traces and delivery sets.  Across *different*
  shard counts the delivered rumor set and per-node delivery counts are
  preserved (the protocol's RNG streams are per-node, not per-shard), but
  same-instant ties may interleave differently and the network's
  loss/latency streams are per-shard -- see docs/ARCHITECTURE.md,
  "Parallel simulation".

The module is deployment-agnostic: :class:`ShardCluster` only knows how to
spawn workers, run the barrier loop and route envelopes.  What a worker
*builds* (nodes, protocol stack) is supplied by the caller as a module-level
worker function -- see :mod:`repro.core.shardworker` for the gossip one.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import zlib
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.simnet.latency import LatencyModel

#: A cross-shard message, parent-routable and picklable:
#: ``(deliver_time, source, destination, payload, size, send_time)``.
#: Payloads are the already-encoded wire bytes the sender put on the
#: simulated network, so no re-serialization happens at the boundary.
Envelope = Tuple[float, str, str, Any, int, float]

#: Environment override for the multiprocessing start method ("fork",
#: "spawn", "forkserver").  Default: "fork" where available (fast worker
#: startup), else the platform default.
START_METHOD_ENV = "REPRO_SHARD_START_METHOD"


class ShardWorkerError(RuntimeError):
    """A worker process reported an exception (message carries its repr)."""


def default_start_method() -> str:
    override = os.environ.get(START_METHOD_ENV)
    if override:
        return override
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else methods[0]


class ShardPlan:
    """The node -> shard assignment for one sharded simulation.

    Args:
        node_names: every node in the simulation (order is preserved and
            used for ``members()``).
        shards: number of shards, ``>= 1``.
        partition_map: optional explicit ``{name: shard_index}``; must
            cover every node.  When omitted, nodes are hashed with
            ``crc32`` (stable across processes and Python runs).

    Raises:
        ValueError: on ``shards < 1``, duplicate node names, a partition
            map that omits nodes, or an out-of-range shard index.
        (Deploy helpers translate these into
        :class:`~repro.core.params.ParamError` naming the config key.)
    """

    def __init__(
        self,
        node_names: Iterable[str],
        shards: int,
        partition_map: Optional[Mapping[str, int]] = None,
    ) -> None:
        names = list(node_names)
        if len(set(names)) != len(names):
            raise ValueError("duplicate node names in shard plan")
        if not isinstance(shards, int) or isinstance(shards, bool) or shards < 1:
            raise ValueError(f"shards must be an integer >= 1: {shards!r}")
        self.shards = shards
        self.names: List[str] = names
        if partition_map is not None:
            missing = [name for name in names if name not in partition_map]
            if missing:
                raise ValueError(
                    f"partition map omits {len(missing)} node(s): "
                    f"{', '.join(sorted(missing)[:5])}"
                    f"{'...' if len(missing) > 5 else ''}"
                )
            assignment = {}
            for name in names:
                index = partition_map[name]
                if not isinstance(index, int) or not 0 <= index < shards:
                    raise ValueError(
                        f"partition map assigns {name!r} to shard {index!r}, "
                        f"need an integer in [0, {shards})"
                    )
                assignment[name] = index
            self._assignment = assignment
        else:
            self._assignment = {
                name: zlib.crc32(name.encode("utf-8")) % shards for name in names
            }

    def shard_of(self, name: str) -> Optional[int]:
        """The shard owning ``name``, or ``None`` for an unknown node."""
        return self._assignment.get(name)

    def members(self, shard_index: int) -> List[str]:
        """The nodes assigned to ``shard_index``, in declaration order."""
        return [n for n in self.names if self._assignment[n] == shard_index]

    def __contains__(self, name: str) -> bool:
        return name in self._assignment

    def __repr__(self) -> str:
        sizes = [len(self.members(k)) for k in range(self.shards)]
        return f"ShardPlan(shards={self.shards}, members={sizes})"


def compute_lookahead(
    latency: LatencyModel, link_models: Iterable[LatencyModel] = ()
) -> float:
    """The conservative lookahead for a fabric: the smallest ``min_delay``
    over the default model and every per-link override.

    Raises:
        ValueError: when the bound is not strictly positive -- conservative
            sharding needs every cross-shard message to take *some* time,
            otherwise no shard could ever safely run ahead.
    """
    bounds = [latency.min_delay()]
    bounds.extend(model.min_delay() for model in link_models)
    lookahead = min(bounds)
    if lookahead <= 0.0:
        raise ValueError(
            "sharded simulation needs a latency model with a strictly "
            f"positive minimum delay (lookahead), got {lookahead!r}; use "
            "e.g. FixedLatency/UniformLatency(low>0) or a positive floor"
        )
    return lookahead


class ShardEgress:
    """The cross-shard egress buffer a worker installs on its Network.

    ``Network.send`` calls :meth:`owns` for destinations with no local
    process; when the destination is a known node on *another* shard the
    message (with its fully drawn delivery time) is buffered here instead
    of being dropped.  The worker drains the buffer into its barrier reply.
    """

    def __init__(self, plan: ShardPlan, shard_index: int) -> None:
        self._plan = plan
        self.shard_index = shard_index
        self._buffer: List[Envelope] = []

    def owns(self, name: str) -> bool:
        """True when ``name`` is a plan member living on another shard."""
        shard = self._plan.shard_of(name)
        return shard is not None and shard != self.shard_index

    def emit(self, message: Any, deliver_time: float) -> None:
        self._buffer.append(
            (
                deliver_time,
                message.source,
                message.destination,
                message.payload,
                message.size,
                message.send_time,
            )
        )

    def drain(self) -> List[Envelope]:
        """The buffered envelopes, clearing the buffer."""
        out = self._buffer
        self._buffer = []
        return out


def shard_worker_loop(conn: Any, runtime: Any) -> None:
    """The generic worker main loop: serve parent commands until "stop".

    ``runtime`` supplies the deployment specifics:

    * ``runtime.sim`` -- the worker's :class:`Simulator`.
    * ``runtime.network`` -- the worker's :class:`Network` (egress hook
      installed).
    * ``runtime.egress`` -- the :class:`ShardEgress` to drain into replies.
    * ``runtime.activate()`` -- a context manager making the worker's
      metrics hub current (``contextlib.nullcontext()`` if unused).
    * ``runtime.handle(msg)`` -- deployment commands; returns the reply
      dict (``"ok"``/``"egress"``/``"next"`` are filled in here).

    Every reply carries ``next`` (the worker's earliest pending event time)
    so the parent can compute the global minimum ``m`` for the next
    barrier, ``egress`` (envelopes produced since the last reply -- commands
    can send synchronously, e.g. an activation request, not just windows),
    and ``busy`` (cumulative CPU seconds this worker has spent executing
    windows: the per-shard critical-path number strong-scaling benchmarks
    report -- CPU time, not wall, so co-scheduled workers on an
    oversubscribed host do not count each other's timeslices).
    """
    busy = 0.0
    try:
        while True:
            msg = conn.recv()
            op = msg.get("op")
            if op == "stop":
                conn.send({"ok": True})
                return
            reply: Dict[str, Any]
            try:
                with runtime.activate():
                    if op == "advance":
                        started = time.process_time()
                        for envelope in msg["inbound"]:
                            deliver_time, source, destination, payload, size, send_time = envelope
                            runtime.network.inject_ingress(
                                source, destination, payload, size, send_time, deliver_time
                            )
                        runtime.sim.run_until(msg["until"])
                        busy += time.process_time() - started
                        reply = {}
                    else:
                        reply = dict(runtime.handle(msg) or {})
            except Exception as exc:  # surface, don't kill the pipe
                conn.send(
                    {
                        "ok": False,
                        "error": f"{type(exc).__name__}: {exc}",
                        "egress": runtime.egress.drain(),
                        "next": runtime.sim._queue.peek_time(),
                        "busy": busy,
                    }
                )
                continue
            reply.setdefault("ok", True)
            reply["egress"] = runtime.egress.drain()
            reply["next"] = runtime.sim._queue.peek_time()
            reply["busy"] = busy
            conn.send(reply)
    except (EOFError, KeyboardInterrupt):
        return


class ShardCluster:
    """Parent-side driver: spawns K workers and runs the barrier loop.

    Args:
        plan: the node assignment (workers receive only its inputs and
            rebuild it, so the parent and workers always agree).
        lookahead: cross-shard lookahead ``L`` from
            :func:`compute_lookahead`.
        worker: module-level function ``worker(conn, shard_index, *args)``
            that builds the shard and calls :func:`shard_worker_loop`.  It
            must send one ready reply ``{"ok": True, "next": ...}`` on
            ``conn`` after building (or ``{"ok": False, "error": ...}``).
        worker_args: extra picklable arguments for ``worker``.
    """

    def __init__(
        self,
        plan: ShardPlan,
        lookahead: float,
        worker: Callable[..., None],
        worker_args: Sequence[Any] = (),
        start_method: Optional[str] = None,
    ) -> None:
        if lookahead <= 0.0:
            raise ValueError(f"lookahead must be positive: {lookahead!r}")
        self.plan = plan
        self.lookahead = float(lookahead)
        self.now = 0.0
        self.barriers = 0
        self._conns: List[Any] = []
        self._procs: List[Any] = []
        self._nexts: List[Optional[float]] = [None] * plan.shards
        #: Cumulative per-worker window-execution CPU seconds; the max is
        #: the critical path a strong-scaling run is bounded by.
        self.busy: List[float] = [0.0] * plan.shards
        self._pending: List[List[Tuple[Envelope, int, int]]] = [
            [] for _ in range(plan.shards)
        ]
        self._egress_seq = [0] * plan.shards
        self._closed = False
        ctx = multiprocessing.get_context(start_method or default_start_method())
        try:
            for index in range(plan.shards):
                parent_conn, child_conn = ctx.Pipe()
                proc = ctx.Process(
                    target=worker,
                    args=(child_conn, index, *worker_args),
                    daemon=True,
                )
                proc.start()
                child_conn.close()
                self._conns.append(parent_conn)
                self._procs.append(proc)
            for index, conn in enumerate(self._conns):
                self._absorb(index, conn.recv())
        except BaseException:
            self.close()
            raise

    # -- plumbing ------------------------------------------------------------

    def _absorb(self, shard_index: int, reply: Mapping[str, Any]) -> Dict[str, Any]:
        """Fold one worker reply into parent state; raise on worker error."""
        if not reply.get("ok", False):
            raise ShardWorkerError(
                f"shard {shard_index}: {reply.get('error', 'unknown error')}"
            )
        self._nexts[shard_index] = reply.get("next")
        self.busy[shard_index] = reply.get("busy", self.busy[shard_index])
        for envelope in reply.get("egress", ()):
            dest_shard = self.plan.shard_of(envelope[2])
            if dest_shard is None:  # unroutable: destination left the plan
                continue
            seq = self._egress_seq[shard_index]
            self._egress_seq[shard_index] = seq + 1
            self._pending[dest_shard].append((envelope, shard_index, seq))
        return dict(reply)

    def command(self, shard_index: int, msg: Mapping[str, Any]) -> Dict[str, Any]:
        """Send one command to one shard and absorb its reply."""
        conn = self._conns[shard_index]
        conn.send(dict(msg))
        return self._absorb(shard_index, conn.recv())

    def broadcast(self, msg: Mapping[str, Any]) -> List[Dict[str, Any]]:
        """Send one command to every shard (all sends first, then all
        receives -- workers never block each other on a full pipe)."""
        payload = dict(msg)
        for conn in self._conns:
            conn.send(payload)
        return [
            self._absorb(index, conn.recv())
            for index, conn in enumerate(self._conns)
        ]

    # -- the barrier loop ----------------------------------------------------

    def _horizon(self) -> Optional[float]:
        """``m``: the earliest instant at which *anything* can happen --
        a pending local event on any shard or a routed in-flight arrival."""
        times = [t for t in self._nexts if t is not None]
        for batch in self._pending:
            times.extend(item[0][0] for item in batch)
        return min(times) if times else None

    def _advance(self, target: float) -> None:
        """One barrier window: deliver routed envelopes, run every shard to
        ``target``, collect new egress."""
        for conn, batch in zip(self._conns, self._pending):
            # (deliver_time, source_shard, per-shard seq): a total order
            # independent of worker reply timing, so injection order -- and
            # with it every downstream tie-break -- is deterministic.
            batch.sort(key=lambda item: (item[0][0], item[1], item[2]))
            conn.send(
                {
                    "op": "advance",
                    "until": target,
                    "inbound": [item[0] for item in batch],
                }
            )
        self._pending = [[] for _ in range(self.plan.shards)]
        for index, conn in enumerate(self._conns):
            self._absorb(index, conn.recv())
        self.barriers += 1

    def run_until(self, deadline: float) -> None:
        """Advance the whole cluster to ``deadline``.

        Window rule: ``T = min(deadline, m + L)`` where ``m`` is
        :meth:`_horizon` and ``L`` the lookahead.  Safe because no shard
        can send before ``m`` (sending happens inside an event at >= m)
        and anything sent at >= ``m`` arrives at >= ``m + L``; an arrival
        *exactly* at a barrier is exchanged at that barrier and injected
        before the next window, landing at its correct instant as a
        same-instant tie.  Jumping to ``m + L`` (rather than fixed ``L``
        steps) makes idle stretches cost one barrier instead of
        ``gap / L``.
        """
        if deadline < self.now:
            raise ValueError(
                f"cannot run backwards: {deadline!r} < {self.now!r}"
            )
        while True:
            horizon = self._horizon()
            if (
                self.now >= deadline
                and (horizon is None or horizon > deadline)
                and not any(self._pending)
            ):
                break
            if horizon is None:
                target = deadline
            else:
                target = min(deadline, horizon + self.lookahead)
            if target < self.now:
                target = self.now
            self._advance(target)
            self.now = target
            if target >= deadline and not any(self._pending):
                break

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Stop every worker and reap the processes (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for conn in self._conns:
            try:
                conn.send({"op": "stop"})
            except (OSError, ValueError):
                pass
        for conn in self._conns:
            try:
                if conn.poll(1.0):
                    conn.recv()
            except (OSError, EOFError):
                pass
            finally:
                try:
                    conn.close()
                except OSError:
                    pass
        for proc in self._procs:
            proc.join(timeout=2.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1.0)

    def __enter__(self) -> "ShardCluster":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def __del__(self) -> None:  # best-effort cleanup
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:
        return (
            f"ShardCluster(shards={self.plan.shards}, now={self.now!r}, "
            f"barriers={self.barriers}, lookahead={self.lookahead!r})"
        )
