"""Named, independently seeded random-number streams.

Experiments must be reproducible *and* composable: adding a new source of
randomness (say, a new latency model) must not perturb the draws made by an
existing one.  The classic fix is one independent stream per purpose, each
derived deterministically from the master seed and the stream name.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


def derive_seed(master_seed: int, name: str) -> int:
    """Derive a 64-bit child seed from ``master_seed`` and a stream name.

    Uses SHA-256 so that similar names ("node-1", "node-2") yield unrelated
    seeds, unlike e.g. ``master_seed + hash(name)`` which correlates streams
    under Python's randomized string hashing anyway.
    """
    digest = hashlib.sha256(f"{master_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RngStreams:
    """A factory of named :class:`random.Random` streams.

    Streams are created lazily and cached: asking twice for the same name
    returns the same generator object, so sequential draws continue rather
    than restart.

    Example:
        >>> streams = RngStreams(seed=42)
        >>> a = streams.get("latency")
        >>> b = streams.get("peer-selection")
        >>> a is streams.get("latency")
        True
    """

    def __init__(self, seed: int = 0) -> None:
        self._seed = int(seed)
        self._streams: Dict[str, random.Random] = {}

    @property
    def seed(self) -> int:
        """The master seed this factory was created with."""
        return self._seed

    def get(self, name: str) -> random.Random:
        """Return the (cached) stream for ``name``."""
        stream = self._streams.get(name)
        if stream is None:
            stream = random.Random(derive_seed(self._seed, name))
            self._streams[name] = stream
        return stream

    def fork(self, name: str) -> "RngStreams":
        """Return a new factory whose master seed is derived from ``name``.

        Useful to give each simulated node its own namespace of streams.
        """
        return RngStreams(derive_seed(self._seed, name))

    def for_shard(self, shard_index: int) -> "RngStreams":
        """The stream namespace for one shard of a sharded simulation.

        Per-*node* streams stay identical across shard counts because they
        are derived purely from the master seed and the node name; only
        streams that are inherently per-shard (the network's loss/latency
        draws) come from this namespace, which is why cross-shard runs agree
        on protocol behaviour but not on individual latency samples.
        """
        return self.fork(f"shard:{int(shard_index)}")

    def __repr__(self) -> str:
        return f"RngStreams(seed={self._seed}, streams={sorted(self._streams)})"
