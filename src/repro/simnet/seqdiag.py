"""Render a trace as an ASCII sequence diagram.

Turns the ``net.send`` / ``net.deliver`` records of a
:class:`~repro.simnet.trace.TraceLog` into the classic lifeline picture,
used by the CLI's ``figure1`` command to show the paper's message flow as
it actually executed.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.simnet.trace import TraceLog

_COLUMN_WIDTH = 16


def render_sequence(
    trace: TraceLog,
    participants: Optional[Sequence[str]] = None,
    max_events: int = 60,
    kind: str = "net.send",
) -> str:
    """Render message sends between participants as a sequence diagram.

    Args:
        trace: the trace to read.
        participants: lifeline order (defaults to first-seen order).
        max_events: truncate long traces (a note marks the cut).
        kind: which event kind represents a message (must carry ``node``
            as the source and ``destination`` in its detail).
    """
    events = trace.events(kind=kind)
    if participants is None:
        seen: Dict[str, None] = {}
        for event in events:
            if event.node:
                seen.setdefault(event.node, None)
            destination = event.detail.get("destination")
            if destination:
                seen.setdefault(destination, None)
        participants = list(seen)
    columns = {name: index for index, name in enumerate(participants)}
    if not columns:
        return "(no messages)"

    width = _COLUMN_WIDTH
    lines: List[str] = []
    header = "".join(name[: width - 2].center(width) for name in participants)
    lines.append(header)
    lines.append("".join("|".center(width) for _ in participants))

    shown = 0
    for event in events:
        source = event.node
        destination = event.detail.get("destination")
        if source not in columns or destination not in columns:
            continue
        if shown >= max_events:
            lines.append(f"... ({len(events) - shown} more messages)")
            break
        shown += 1
        lines.append(_arrow_line(columns, source, destination, event.time, width))
        lines.append("".join("|".center(width) for _ in participants))
    return "\n".join(lines)


def _arrow_line(
    columns: Dict[str, int], source: str, destination: str, time: float, width: int
) -> str:
    """One lifeline row with an arrow from source to destination."""
    count = len(columns)
    cells = ["|".center(width) for _ in range(count)]
    left = min(columns[source], columns[destination])
    right = max(columns[source], columns[destination])
    if left == right:
        # Self-send: mark the lifeline.
        cells[left] = "(self)".center(width)
        return "".join(cells) + f"  t={time:.3f}"

    # Build the arrow span between the two lifelines.
    span_cells = []
    for index in range(count):
        if index < left or index > right:
            span_cells.append("|".center(width))
        elif index == left:
            body = "-" * (width // 2 - 1)
            span_cells.append("|".center(width // 2) + body + "-" * (width - width // 2 - len(body) - 1) + "-")
        elif index == right:
            span_cells.append("-" * (width // 2 - 1) + ">|".ljust(width - width // 2 + 1, " "))
        else:
            span_cells.append("-" * width)
    line = "".join(span_cells)
    if columns[source] > columns[destination]:
        # Arrow points left: swap the chevron.
        line = line.replace(">", "", 1)
        head = line.find("-")
        line = line[:head] + "<" + line[head + 1:]
    return line + f"  t={time:.3f}"
