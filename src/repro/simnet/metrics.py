"""Lightweight metrics: counters, gauges, histograms and time series.

The benchmark harness reads these to produce the rows in EXPERIMENTS.md.
They deliberately mirror the shape of common production metric libraries
(counter / gauge / histogram / gauge-over-time) without any of their
machinery.

The stat groups (:class:`WireStats`, :class:`BatchStats`,
:class:`HealthStats`, :class:`RecoveryStats`, :class:`ControlStats`,
:class:`OverloadStats`) used
to be module-level singletons.  They are now plain value objects owned by a
:class:`repro.obs.MetricsHub`; each group may chain to a parent group so
per-simulation hubs still feed the process-wide default hub.  The old
module-level names (``WIRE_STATS`` et al.) keep working as deprecated
aliases for the default hub's groups -- see the module ``__getattr__`` at
the bottom.
"""

from __future__ import annotations

import math
import warnings
from typing import Dict, List, Optional, Tuple


class Counter:
    """Monotonic event counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (non-negative) to the counter."""
        if amount < 0:
            raise ValueError(f"counter increments must be non-negative: {amount!r}")
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, value={self.value})"


class Gauge:
    """A value that can go up and down (queue depth, open breakers, ...)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        """Replace the gauge value."""
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (may be negative) to the gauge."""
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Subtract ``amount`` from the gauge."""
        self.value -= amount

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, value={self.value})"


class Histogram:
    """Stores raw observations; summary statistics computed on demand.

    Raw storage keeps exact percentiles, which matters for latency tails.
    All experiment populations here are small enough (<= millions) that the
    memory cost is irrelevant.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._values: List[float] = []

    def observe(self, value: float) -> None:
        """Record one observation."""
        self._values.append(float(value))

    @property
    def count(self) -> int:
        return len(self._values)

    @property
    def total(self) -> float:
        return math.fsum(self._values)

    def mean(self) -> float:
        """Arithmetic mean of the observations (ValueError when empty)."""
        if not self._values:
            raise ValueError(f"histogram {self.name!r} is empty")
        return self.total / len(self._values)

    def stdev(self) -> float:
        """Sample standard deviation (0.0 for fewer than two values)."""
        if len(self._values) < 2:
            return 0.0
        mean = self.mean()
        variance = math.fsum((v - mean) ** 2 for v in self._values)
        return math.sqrt(variance / (len(self._values) - 1))

    def percentile(self, q: float) -> float:
        """Exact percentile by linear interpolation, ``q`` in [0, 100]."""
        if not self._values:
            raise ValueError(f"histogram {self.name!r} is empty")
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100]: {q!r}")
        ordered = sorted(self._values)
        if len(ordered) == 1:
            return ordered[0]
        rank = (q / 100.0) * (len(ordered) - 1)
        low = int(math.floor(rank))
        high = int(math.ceil(rank))
        if low == high:
            return ordered[low]
        fraction = rank - low
        value = ordered[low] * (1.0 - fraction) + ordered[high] * fraction
        # Interpolating subnormal floats can underflow below ordered[low];
        # clamp so the percentile always lies between its neighbours.
        return min(max(value, ordered[low]), ordered[high])

    def min(self) -> float:
        """Smallest observation (ValueError when empty)."""
        if not self._values:
            raise ValueError(f"histogram {self.name!r} is empty")
        return min(self._values)

    def max(self) -> float:
        """Largest observation (ValueError when empty)."""
        if not self._values:
            raise ValueError(f"histogram {self.name!r} is empty")
        return max(self._values)

    def values(self) -> List[float]:
        """A copy of the raw observations."""
        return list(self._values)

    def clear(self) -> None:
        """Discard every observation (the histogram object stays bound)."""
        self._values.clear()

    def __repr__(self) -> str:
        return f"Histogram({self.name!r}, count={self.count})"


class TimeSeries:
    """(time, value) samples, e.g. delivered-throughput over time (E4)."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._samples: List[Tuple[float, float]] = []

    def record(self, time: float, value: float) -> None:
        """Append a sample; times must be non-decreasing."""
        if self._samples and time < self._samples[-1][0]:
            raise ValueError(
                f"time series {self.name!r} must be appended in time order"
            )
        self._samples.append((float(time), float(value)))

    def samples(self) -> List[Tuple[float, float]]:
        """A copy of the (time, value) samples."""
        return list(self._samples)

    def values(self) -> List[float]:
        """Just the sample values, in time order."""
        return [value for _, value in self._samples]

    def window_rate(self, window: float) -> List[Tuple[float, float]]:
        """Bucket samples into ``window``-second bins, returning
        ``(bin_start, sum_of_values / window)`` -- a rate per second."""
        if window <= 0:
            raise ValueError(f"window must be positive: {window!r}")
        if not self._samples:
            return []
        bins: Dict[int, float] = {}
        for time, value in self._samples:
            bins[int(time // window)] = bins.get(int(time // window), 0.0) + value
        last_bin = max(bins)
        return [
            (index * window, bins.get(index, 0.0) / window)
            for index in range(last_bin + 1)
        ]

    def clear(self) -> None:
        """Discard every sample (the series object stays bound)."""
        self._samples.clear()

    def __len__(self) -> int:
        return len(self._samples)


class StatGroup:
    """Base for the fixed-field stat groups below.

    Each instance may chain to a ``parent`` group of the same shape.
    Writing a field (``stats.x += 1``) propagates the delta up the parent
    chain, so a per-simulation hub's groups also feed the process-wide
    default hub -- that is what keeps the deprecated module-level aliases
    meaningful.  :meth:`reset` zeroes fields *without* propagating (a
    benchmark resetting its own group must not erase history upstream).
    """

    # Subclasses list their counter fields here; ``_FIELDS`` is the same
    # thing as a frozenset for the O(1) membership test in __setattr__.
    _fields: Tuple[str, ...] = ()
    _FIELDS: frozenset = frozenset()

    __slots__ = ("parent",)

    def __init__(self, parent: Optional["StatGroup"] = None) -> None:
        object.__setattr__(self, "parent", parent)
        self.reset()

    def __setattr__(self, name: str, value) -> None:
        if name in self._FIELDS:
            old = getattr(self, name, 0)
            object.__setattr__(self, name, value)
            delta = value - old
            if delta:
                parent = self.parent
                while parent is not None:
                    object.__setattr__(parent, name, getattr(parent, name) + delta)
                    parent = parent.parent
        else:
            object.__setattr__(self, name, value)

    def reset(self) -> None:
        """Zero every counter in place; the parent chain is untouched."""
        for name in self._fields:
            object.__setattr__(self, name, 0)

    def snapshot(self) -> Dict[str, int]:
        """Current counter values as a plain dict."""
        return {name: getattr(self, name) for name in self._fields}


class WireStats(StatGroup):
    """Wire-path cost counters (one group per :class:`~repro.obs.MetricsHub`).

    The SOAP encode/parse hot path is exercised by every simulated node
    sharing a hub:

    * ``serialize_count`` -- actual XML encodes performed by
      :meth:`repro.soap.envelope.Envelope.to_bytes` (cache misses).
    * ``serialize_reused`` -- ``to_bytes()`` calls answered from the
      memoized wire bytes (cache hits -- the zero-copy fast path).
    * ``parse_count`` -- actual XML parses performed by
      :meth:`repro.soap.envelope.Envelope.from_bytes`.
    * ``parse_reused`` -- ``from_bytes()`` calls answered from the shared
      parse cache (identical wire bytes already parsed by another node in
      this process -- the fan-out twin of ``serialize_reused``).
    * ``dedup_preparse_hits`` -- duplicate gossip messages dropped by the
      byte-scan gate *before* any XML parse.
    * ``idempotent_replays`` -- retried edge POSTs answered from the
      :class:`~repro.transport.edge.IdempotencyIndex` without re-entering
      the runtime (``Idempotent-Replay: true`` responses).
    """

    _fields = (
        "serialize_count",
        "serialize_reused",
        "parse_count",
        "parse_reused",
        "dedup_preparse_hits",
        "idempotent_replays",
    )
    _FIELDS = frozenset(_fields)

    __slots__ = _fields

    @property
    def serialize_calls(self) -> int:
        """Total ``to_bytes()`` invocations, cached or not."""
        return self.serialize_count + self.serialize_reused

    def __repr__(self) -> str:
        return (
            f"WireStats(serialize={self.serialize_count}, "
            f"reused={self.serialize_reused}, parse={self.parse_count}, "
            f"preparse_hits={self.dedup_preparse_hits})"
        )


class BatchStats(StatGroup):
    """Batched-envelope counters (the coalescing twin of :class:`WireStats`).

    Fed by the engine's per-destination outbox and the batch codec
    (:mod:`repro.core.batch`); benchmarks snapshot them to show how much
    traffic the lpbcast-style piggybacking actually collapsed:

    * ``batches_built`` -- batch frames encoded (one per unique
      destination-set content per flush; fan-out shares the encode).
    * ``batches_sent`` -- batch frames handed to a transport (>= built,
      one per destination).
    * ``rumors_batched`` -- inner rumor frames carried inside sent batches.
    * ``control_piggybacked`` -- control sections (advertisements,
      feedback, pull digests) that rode along instead of going out as
      their own envelopes.
    * ``batches_received`` / ``rumors_unpacked`` -- receive-side splits.
    * ``batches_skipped_preparse`` -- whole batches dropped by the
      byte-scan gate because every carried rumor was already known.
    * ``flushes`` -- outbox flushes (each coalesces one burst of traffic).
    * ``legacy_singletons`` -- flushed entries that went out as plain
      single-rumor frames because batching them had no benefit.
    """

    _fields = (
        "batches_built",
        "batches_sent",
        "rumors_batched",
        "control_piggybacked",
        "batches_received",
        "rumors_unpacked",
        "batches_skipped_preparse",
        "flushes",
        "legacy_singletons",
    )
    _FIELDS = frozenset(_fields)

    __slots__ = _fields

    def __repr__(self) -> str:
        return (
            f"BatchStats(built={self.batches_built}, "
            f"sent={self.batches_sent}, rumors={self.rumors_batched}, "
            f"skipped={self.batches_skipped_preparse})"
        )


class HealthStats(StatGroup):
    """Peer-health counters (the resilience twin of :class:`WireStats`).

    Fed by the resilient transports (:mod:`repro.transport.base`) and the
    suspicion tracker (:mod:`repro.core.health`); benchmark E5 snapshots
    them to show what the health layer actually did during a chaos run:

    * ``send_failures`` -- individual send attempts that failed (every
      retry counts separately).
    * ``retries`` -- failed attempts that were retried with backoff.
    * ``sends_suppressed`` -- sends refused locally by an open circuit
      breaker (never reached the wire).
    * ``breaker_opened`` / ``breaker_probes`` / ``breaker_closed`` --
      circuit-breaker state transitions (closed->open, half-open probe
      admitted, probe succeeded -> closed).
    * ``peers_suspected`` / ``peers_restored`` -- suspicion-score
      threshold crossings in either direction.
    * ``fanout_boosts`` -- gossip rounds where the degraded-mode fanout
      exceeded the configured one because the healthy pool had shrunk.
    * ``dead_letters`` -- messages abandoned by the WS-RM reliability
      layer after ``max_retries`` (see :mod:`repro.soap.reliable`).
    """

    _fields = (
        "send_failures",
        "retries",
        "sends_suppressed",
        "breaker_opened",
        "breaker_probes",
        "breaker_closed",
        "peers_suspected",
        "peers_restored",
        "fanout_boosts",
        "dead_letters",
    )
    _FIELDS = frozenset(_fields)

    __slots__ = _fields

    def __repr__(self) -> str:
        return (
            f"HealthStats(failures={self.send_failures}, "
            f"retries={self.retries}, suppressed={self.sends_suppressed}, "
            f"opened={self.breaker_opened}, dead_letters={self.dead_letters})"
        )


class RecoveryStats(StatGroup):
    """Crash-recovery counters (the restart twin of :class:`HealthStats`).

    Fed by the durability layer (:mod:`repro.core.store`), the engine's
    restart/rejoin path, and :meth:`FaultPlan.restart_at
    <repro.simnet.faults.FaultPlan.restart_at>`; benchmark E5 and the
    ``make test-recovery`` gate snapshot them to show what recovery did:

    * ``restarts`` / ``amnesia_restarts`` -- engine restarts total and the
      subset that discarded durable state too.
    * ``replayed_messages`` -- messages restored into the store from the
      WAL/snapshot during a durable restart.
    * ``log_appends`` / ``snapshots`` -- WAL traffic and compactions.
    * ``corrupt_records`` / ``truncated_tails`` / ``corrupt_snapshots`` --
      damage tolerated (skipped, never fatal) during replay.
    * ``fetched`` -- messages obtained via the rejoin catch-up exchange.
    * ``redelivered_suppressed`` -- duplicate arrivals (including FIFO
      sequence numbers already delivered before the crash) swallowed
      during recovery instead of re-delivered.
    * ``catch_up_rounds`` / ``catch_ups_completed`` -- bounded anti-entropy
      rounds run after restart, and rejoins that finished them.
    """

    _fields = (
        "restarts",
        "amnesia_restarts",
        "replayed_messages",
        "log_appends",
        "snapshots",
        "corrupt_records",
        "truncated_tails",
        "corrupt_snapshots",
        "fetched",
        "redelivered_suppressed",
        "catch_up_rounds",
        "catch_ups_completed",
    )
    _FIELDS = frozenset(_fields)

    __slots__ = _fields

    def __repr__(self) -> str:
        return (
            f"RecoveryStats(restarts={self.restarts}, "
            f"replayed={self.replayed_messages}, fetched={self.fetched}, "
            f"suppressed={self.redelivered_suppressed}, "
            f"rounds={self.catch_up_rounds})"
        )


class ControlStats(StatGroup):
    """Adaptive-controller counters (the feedback twin of :class:`HealthStats`).

    Fed by :class:`repro.core.control.AdaptiveController`; the
    ``make test-adaptive`` gate and ``bench_perturbation`` snapshot them to
    prove the control loop actually engaged:

    * ``epochs`` -- controller epochs evaluated (one decision each).
    * ``boosts`` -- epochs that raised fanout/rounds (stress detected).
    * ``shrinks`` -- epochs that lowered fanout/rounds (calm, SLO met
      with margin, cooldown elapsed).
    * ``holds`` -- epochs that left the knobs alone.
    * ``escalations`` / ``deescalations`` -- push -> push-pull mode
      switches and the reverse.
    * ``slo_breaches`` -- epochs whose observed delivery fraction fell
      below the configured SLO.
    * ``cooldown_holds`` -- shrinks refused because the cooldown since
      the last boost had not elapsed (the anti-oscillation brake).
    * ``ceiling_clamps`` -- gossip rounds where the health-layer fanout
      boost was clamped at the controller's hard ceiling.
    * ``param_updates`` -- engine parameter objects actually replaced.
    * ``pressure_reliefs`` -- epochs where overload pressure above the
      policy's ``pressure_high`` made the controller narrow batching and
      fanout (and suppress any boost) instead of amplifying into an
      already-collapsing network.
    """

    _fields = (
        "epochs",
        "boosts",
        "shrinks",
        "holds",
        "escalations",
        "deescalations",
        "slo_breaches",
        "cooldown_holds",
        "ceiling_clamps",
        "param_updates",
        "pressure_reliefs",
    )
    _FIELDS = frozenset(_fields)

    __slots__ = _fields

    def __repr__(self) -> str:
        return (
            f"ControlStats(epochs={self.epochs}, boosts={self.boosts}, "
            f"shrinks={self.shrinks}, escalations={self.escalations}, "
            f"breaches={self.slo_breaches})"
        )


class OverloadStats(StatGroup):
    """Overload-protection counters (the backpressure twin of :class:`ControlStats`).

    Fed by the engine's shed ladder, the ingest gate, the edge admission
    bucket and the resilient transports (see docs/RESILIENCE.md,
    "Overload and backpressure"); the ``make test-overload`` gate and
    ``bench_overload`` snapshot them to prove shedding engaged:

    * ``admitted`` -- frames accepted into the bounded ingest queue (the
      denominator for shed ratios).
    * ``shed_digests`` -- duplicate advertisements and periodic digests
      dropped under pressure (cheapest rung, shed first).
    * ``shed_feedback`` -- feedback frames dropped under pressure.
    * ``shed_pull`` -- pull responses dropped under pressure.
    * ``shed_payloads`` -- eager rumor payloads dropped at the hard
      limit only (the last rung of the ladder).
    * ``publish_rejected`` -- local publishes refused with
      :class:`~repro.core.overload.OverloadError` at the outbox hard
      limit.
    * ``edge_rejected`` -- ``POST /v1/gossip`` requests 429'd by the
      edge token bucket.
    * ``retry_after_honored`` -- resilient-transport backoffs scheduled
      from a ``Retry-After`` hint instead of the breaker's own clock.
    * ``throttled`` -- deliveries deferred because the node's processing
      rate was capped (slow-consumer fault or drain pacing).
    * ``pressure_highs`` -- times a node's pressure crossed the high
      watermark (one per hysteresis cycle, not per shed frame).
    """

    _fields = (
        "admitted",
        "shed_digests",
        "shed_feedback",
        "shed_pull",
        "shed_payloads",
        "publish_rejected",
        "edge_rejected",
        "retry_after_honored",
        "throttled",
        "pressure_highs",
    )
    _FIELDS = frozenset(_fields)

    __slots__ = _fields

    @property
    def shed_total(self) -> int:
        """Every frame shed, across all rungs of the ladder."""
        return (
            self.shed_digests
            + self.shed_feedback
            + self.shed_pull
            + self.shed_payloads
        )

    _SHED_FIELDS = {
        "digest": "shed_digests",
        "feedback": "shed_feedback",
        "pull": "shed_pull",
    }

    def count_shed(self, shed_class: str) -> None:
        """Bump the counter for one shed frame of ``shed_class``
        (anything unrecognised counts as a payload)."""
        field = self._SHED_FIELDS.get(shed_class, "shed_payloads")
        setattr(self, field, getattr(self, field) + 1)

    def __repr__(self) -> str:
        return (
            f"OverloadStats(admitted={self.admitted}, "
            f"shed={self.shed_total}, rejected={self.edge_rejected}, "
            f"throttled={self.throttled}, highs={self.pressure_highs})"
        )


class MetricsRegistry:
    """Named registry so components can share one sink.

    ``counter``/``gauge``/``histogram``/``series`` create on first use and
    return the cached instance afterwards.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._series: Dict[str, TimeSeries] = {}

    def counter(self, name: str) -> Counter:
        """The counter named ``name`` (created on first use)."""
        if name not in self._counters:
            self._counters[name] = Counter(name)
        return self._counters[name]

    def gauge(self, name: str) -> Gauge:
        """The gauge named ``name`` (created on first use)."""
        if name not in self._gauges:
            self._gauges[name] = Gauge(name)
        return self._gauges[name]

    def histogram(self, name: str) -> Histogram:
        """The histogram named ``name`` (created on first use)."""
        if name not in self._histograms:
            self._histograms[name] = Histogram(name)
        return self._histograms[name]

    def series(self, name: str) -> TimeSeries:
        """The time series named ``name`` (created on first use)."""
        if name not in self._series:
            self._series[name] = TimeSeries(name)
        return self._series[name]

    def counters(self) -> Dict[str, int]:
        """Snapshot of all counter values."""
        return {name: counter.value for name, counter in self._counters.items()}

    def gauges(self) -> Dict[str, float]:
        """Snapshot of all gauge values."""
        return {name: gauge.value for name, gauge in self._gauges.items()}

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry(counters={len(self._counters)}, "
            f"histograms={len(self._histograms)}, series={len(self._series)})"
        )


# -- deprecated module-level singletons ---------------------------------------

#: Old singleton name -> attribute of the default MetricsHub it now aliases.
_DEPRECATED_STATS = {
    "WIRE_STATS": "wire",
    "BATCH_STATS": "batch",
    "HEALTH_STATS": "health",
    "RECOVERY_STATS": "recovery",
    "CONTROL_STATS": "control",
    "OVERLOAD_STATS": "overload",
}


def __getattr__(name: str):
    """PEP 562 hook: the retired ``*_STATS`` singletons resolve to the
    default hub's stat groups, with a :class:`DeprecationWarning`."""
    group = _DEPRECATED_STATS.get(name)
    if group is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    warnings.warn(
        f"{name} is deprecated; use repro.obs.default_hub().{group} "
        f"(or the hub owned by your Network/GossipGroup)",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.obs.hub import default_hub

    return getattr(default_hub(), group)
