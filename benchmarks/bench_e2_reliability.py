"""E2 -- Reliability vs fanout: "parameters f and r can be configured [6]
such that any desired average number of receivers successfully get the
message ... [or] the message is atomically delivered with high
probability" (paper Section 2).

Sweep fanout for several population sizes, measure the delivered fraction
and the atomic-delivery rate over seeds, and compare against the
Eugster et al. analysis implemented in :mod:`repro.core.analysis`.
"""

from _tables import emit, mean

from repro import GossipConfig
from repro.stats import summarize

from repro.core.analysis import (
    atomic_delivery_probability,
    expected_final_fraction,
    fanout_for_atomicity,
    rounds_for_coverage,
)

POPULATIONS = [32, 64, 128]
FANOUTS = [1, 2, 3, 5, 7]
SEEDS = [1, 2, 3, 4, 5]


def run_once(n: int, fanout: int, seed: int) -> float:
    rounds = rounds_for_coverage(n, max(fanout, 2)) + 2
    group = GossipConfig(
        n_disseminators=n - 1,
        seed=seed,
        params={
            "fanout": fanout,
            "rounds": rounds,
            "peer_sample_size": max(2 * fanout, 12),
        },
        auto_tune=False,
    ).build()
    group.setup(settle=1.0, eager_join=True)
    gossip_id = group.publish({"exp": "e2"})
    group.run_for(rounds * 0.5 + 5.0)
    return group.delivered_fraction(gossip_id)


def reliability_rows():
    rows = []
    for n in POPULATIONS:
        for fanout in FANOUTS:
            fractions = [run_once(n, fanout, seed) for seed in SEEDS]
            summary = summarize(fractions)
            atomic_rate = mean(1.0 if f >= 1.0 else 0.0 for f in fractions)
            predicted_fraction = expected_final_fraction(float(fanout))
            predicted_atomic = atomic_delivery_probability(n, float(fanout))
            rows.append(
                (n, fanout, summary.mean, summary.half_width,
                 predicted_fraction, atomic_rate, predicted_atomic)
            )
    return rows


def tuning_rows():
    rows = []
    for n in POPULATIONS:
        fanout = int(fanout_for_atomicity(n, 0.99)) + 1
        fractions = [run_once(n, fanout, seed) for seed in SEEDS]
        rows.append((n, fanout, mean(fractions), mean(
            1.0 if f >= 1.0 else 0.0 for f in fractions
        )))
    return rows


def test_e2_reliability_vs_fanout(benchmark):
    rows = reliability_rows()
    emit(
        "e2_reliability",
        "E2: delivered fraction & atomicity vs fanout (mean over seeds)",
        ["N", "fanout", "measured frac", "+/-95%", "analysis frac",
         "atomic rate", "analysis atomic"],
        rows,
    )
    # Shape checks: monotone in fanout; fanout>=5 effectively atomic;
    # subcritical fanout=1 far from full coverage.
    by_n = {}
    for n, fanout, measured, _hw, _pf, atomic, _pa in rows:
        by_n.setdefault(n, []).append((fanout, measured, atomic))
    for n, series in by_n.items():
        fractions = [item[1] for item in series]
        assert fractions[0] < 0.9, "fanout=1 should miss many nodes"
        assert fractions[-1] >= 0.99
        assert series[-1][2] >= 0.66, "high fanout should be atomic most seeds"

    tuned = tuning_rows()
    emit(
        "e2_tuned",
        "E2b: coordinator-tuned fanout for 99% atomic delivery",
        ["N", "tuned fanout", "measured frac", "atomic rate"],
        tuned,
    )
    for n, fanout, measured, atomic in tuned:
        assert measured >= 0.99

    benchmark.pedantic(lambda: run_once(64, 4, 1), rounds=3, iterations=1)


if __name__ == "__main__":
    emit(
        "e2_reliability",
        "E2: delivered fraction & atomicity vs fanout",
        ["N", "fanout", "measured frac", "analysis frac", "atomic rate", "analysis atomic"],
        reliability_rows(),
    )
