"""Ablations over deployment modes.

* A4 ordered delivery: per-origin FIFO costs head-of-line latency under
  loss (held-back messages wait for repair); measure the p95 delivery
  latency with and without ordering.
* A5 distributed coordinator: the decentralized mode (WS-Membership +
  peer-sampling views, no Activation/Registration at all) matches the
  centralized mode's delivery, at the price of background membership
  traffic.
"""

from _tables import emit, mean
from repro import DecentralizedGroup, GossipConfig, GossipParams, GossipStyle


SEEDS = [1, 2]


def ordered_run(ordered, seed, loss_rate=0.15, n=16, publications=8):
    group = GossipConfig(
        n_disseminators=n - 1,
        seed=seed,
        loss_rate=loss_rate,
        params={"style": "push-pull", "fanout": 4, "rounds": 6,
                "period": 0.4, "ordered": ordered, "peer_sample_size": 12},
        auto_tune=False,
    ).build()
    group.setup(settle=1.5)
    latencies = []
    publish_times = {}
    for index in range(publications):
        mid = group.publish({"seq": index})
        publish_times[mid] = group.sim.now
        group.run_for(0.2)
    group.run_for(25.0)
    for mid, published_at in publish_times.items():
        if group.delivered_fraction(mid) < 1.0:
            return None
        for when in group.delivery_times(mid):
            latencies.append(when - published_at)
    latencies.sort()
    return latencies[int(0.95 * (len(latencies) - 1))]


def test_a4_ordering_cost(benchmark):
    rows = []
    for ordered in (False, True):
        p95s = [ordered_run(ordered, seed) for seed in SEEDS]
        complete = [value for value in p95s if value is not None]
        rows.append(
            ("FIFO ordered" if ordered else "unordered",
             mean(complete) if complete else float("nan"),
             f"{len(complete)}/{len(SEEDS)}")
        )
    emit(
        "a4_ordering",
        "A4: p95 delivery latency under 15% loss -- ordering costs "
        "head-of-line waiting",
        ["mode", "p95 latency (s)", "complete runs"],
        rows,
    )
    unordered_p95, ordered_p95 = rows[0][1], rows[1][1]
    assert ordered_p95 >= unordered_p95, (
        "holding back out-of-order messages cannot be faster"
    )
    benchmark.pedantic(lambda: ordered_run(True, 1), rounds=1, iterations=1)


def centralized_run(seed, n=20):
    group = GossipConfig(
        n_disseminators=n - 1,
        seed=seed,
        params={"style": "push-pull", "fanout": 4, "rounds": 7,
                "period": 0.5, "peer_sample_size": 14},
        auto_tune=False,
    ).build()
    group.setup(settle=1.0)
    before = group.message_counts().get("net.sent", 0)
    gossip_id = group.publish({"a": 1})
    group.run_for(15.0)
    return (
        group.delivered_fraction(gossip_id),
        group.message_counts()["net.sent"] - before,
    )


def decentralized_run(seed, n=20):
    group = DecentralizedGroup(
        n_nodes=n,
        seed=seed,
        params=GossipParams(fanout=4, rounds=7, style=GossipStyle.PUSH_PULL,
                            period=0.5),
    )
    group.setup()
    before = group.message_counts().get("net.sent", 0)
    gossip_id = group.publish({"a": 1})
    group.run_for(15.0)
    return (
        group.delivered_fraction(gossip_id),
        group.message_counts()["net.sent"] - before,
    )


def test_a5_distributed_coordinator(benchmark):
    central = [centralized_run(seed) for seed in SEEDS]
    decentralized = [decentralized_run(seed) for seed in SEEDS]
    rows = [
        ("centralized coordinator", mean(r[0] for r in central),
         mean(r[1] for r in central)),
        ("WS-Membership views", mean(r[0] for r in decentralized),
         mean(r[1] for r in decentralized)),
    ]
    emit(
        "a5_decentralized",
        "A5: centralized vs distributed coordinator (N=20, push-pull); "
        "msgs include membership/sampling background",
        ["mode", "delivery", "msgs during dissemination"],
        rows,
    )
    assert rows[0][1] == 1.0
    assert rows[1][1] == 1.0
    benchmark.pedantic(lambda: decentralized_run(1), rounds=1, iterations=1)


if __name__ == "__main__":
    print("ablation tables are produced under pytest: "
          "pytest benchmarks/bench_a2_modes.py --benchmark-only")
