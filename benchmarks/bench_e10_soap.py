"""E10 -- Middleware overhead: the cost of the SOAP stack itself.

The gossip layer lives inside the handler chain of a real XML SOAP stack
(Section 3's deployment story); this bench quantifies what that stack
costs per message: envelope encode/decode, payload serialization, the
handler chain, and a full local send->receive->dispatch round trip.
"""

import xml.etree.ElementTree as ET

from _tables import emit

from repro.core.message import GossipHeader, GossipStyle
from repro.soap.envelope import Envelope
from repro.soap.handler import Handler, HandlerChain, MessageContext, Direction
from repro.soap.runtime import SoapRuntime
from repro.soap.serializer import from_element, to_element
from repro.soap.service import Service, operation
from repro.transport.base import LoopbackTransport
from repro.wsa.addressing import AddressingHeaders
from repro.wscoord.context import CoordinationContext
from repro.wsa.addressing import EndpointReference

TICK = {"symbol": "SYM01", "price": 42.125, "size": 300, "seq": 123456,
        "time": 17.25}


def build_gossip_envelope():
    """A representative on-the-wire gossip message."""
    envelope = Envelope(body=to_element("{urn:stock}tick", TICK))
    envelope.add_header(
        CoordinationContext(
            identifier="urn:wscoord:activity:bench",
            coordination_type="urn:ws-gossip:2008:coordination",
            registration_service=EndpointReference(
                "sim://coordinator/registration",
                {"ActivityId": "urn:wscoord:activity:bench"},
            ),
        ).to_element()
    )
    envelope.add_header(
        GossipHeader(
            activity="urn:wscoord:activity:bench",
            message_id="urn:ws-gossip:msg:bench",
            origin="sim://initiator/app",
            hops=5,
            style=GossipStyle.PUSH,
        ).to_element()
    )
    AddressingHeaders(
        to="sim://node/app", action="urn:stock/tick",
        message_id="urn:uuid:bench",
    ).apply(envelope)
    return envelope


def test_e10_envelope_encode(benchmark):
    envelope = build_gossip_envelope()
    data = benchmark(envelope.to_bytes)
    emit(
        "e10_size",
        "E10a: wire size of one gossiped tick",
        ["artifact", "bytes"],
        [("full gossip envelope", len(data)),
         ("payload only", len(ET.tostring(to_element("{urn:stock}tick", TICK))))],
    )
    assert data.startswith(b"<?xml")


def test_e10_envelope_decode(benchmark):
    data = build_gossip_envelope().to_bytes()

    def decode():
        envelope = Envelope.from_bytes(data)
        header = GossipHeader.from_envelope(envelope)
        return from_element(envelope.body), header

    value, header = benchmark(decode)
    assert value == TICK
    assert header.hops == 5


def test_e10_handler_chain(benchmark):
    chain = HandlerChain([Handler() for _ in range(4)])
    context = MessageContext(Envelope(), Direction.INBOUND)

    def run_chain():
        return chain.run_inbound(context)

    assert benchmark(run_chain)


def test_e10_full_roundtrip(benchmark):
    transport = LoopbackTransport()
    client = SoapRuntime("test://client", transport)
    server = SoapRuntime("test://server", transport)
    transport.register(client)
    transport.register(server)

    class TickSink(Service):
        def __init__(self):
            super().__init__()
            self.count = 0

        @operation("urn:stock/tick")
        def tick(self, context, value):
            self.count += 1
            return None

    sink = TickSink()
    server.add_service("/app", sink)

    def send_one():
        client.send("test://server/app", "urn:stock/tick", value=TICK)

    benchmark(send_one)
    assert sink.count > 0


if __name__ == "__main__":
    data = build_gossip_envelope().to_bytes()
    emit("e10_size", "E10a: wire size", ["artifact", "bytes"],
         [("full gossip envelope", len(data))])
