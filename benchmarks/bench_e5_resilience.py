"""E5 -- Resilience to process and network faults.

"The reliability of these algorithms is based on a pro-active mechanism
where redundancy and randomization are used to avoid potential process and
network link failures" (paper Section 2).  Sweep crash fraction and message
loss; compare delivery to surviving receivers across WS-Gossip, the k-ary
tree, and the WS-Notification broker.
"""

from _tables import emit, mean

from repro import DurabilityPolicy, GossipConfig
from repro.baselines.centralnotify import CentralNotifyGroup
from repro.baselines.tree import TreeGroup
from repro.simnet.faults import FaultPlan

N = 32
SEEDS = [1, 2]
CRASH_FRACTIONS = [0.0, 0.1, 0.3, 0.5]
LOSS_RATES = [0.0, 0.1, 0.3]
HEALTH_POLICY = {
    "suspicion_threshold": 0.9,
    "half_life": 60.0,
    "max_retries": 1,
    "breaker_threshold": 2,
    "breaker_reset": 5.0,
}


def gossip_run(crash_fraction=0.0, loss_rate=0.0, seed=1):
    group = GossipConfig(
        n_disseminators=N - 1,
        seed=seed,
        loss_rate=loss_rate,
        params={"fanout": 6, "rounds": 8, "peer_sample_size": 16},
        auto_tune=False,
    ).build()
    group.setup(settle=1.5, eager_join=True)
    plan = FaultPlan(group.network)
    plan.crash_fraction_at(
        group.sim.now, crash_fraction, [node.name for node in group.disseminators]
    )
    plan.apply()
    group.run_for(0.05)
    gossip_id = group.publish({"exp": "e5"})
    group.run_for(10.0)
    survivors = [
        node
        for node in group.disseminators
        if group.network.process(node.name).is_running
    ]
    if not survivors:
        return 1.0
    return mean(
        1.0 if node.has_delivered(gossip_id) else 0.0 for node in survivors
    )


def health_run(health, crash_fraction=0.3, loss_rate=0.1, seed=1):
    """Combined crash + loss run with the peer-health layer on or off."""
    group = GossipConfig(
        n_disseminators=N - 1,
        seed=seed,
        loss_rate=loss_rate,
        params={"fanout": 6, "rounds": 8, "peer_sample_size": 16},
        auto_tune=False,
        health=health,
        health_policy=HEALTH_POLICY if health else None,
    ).build()
    group.setup(settle=1.5, eager_join=True)
    plan = FaultPlan(group.network)
    plan.crash_fraction_at(
        group.sim.now, crash_fraction, [node.name for node in group.disseminators]
    )
    plan.apply()
    group.run_for(0.05)
    # Warmup traffic teaches the health layer who is down before measuring.
    for _ in range(2):
        group.publish({"warmup": True})
        group.run_for(3.0)
    gossip_id = group.publish({"exp": "e5-health"})
    group.run_for(10.0)
    survivors = [
        node
        for node in group.disseminators
        if group.network.process(node.name).is_running
    ]
    if not survivors:
        return 1.0
    return mean(
        1.0 if node.has_delivered(gossip_id) else 0.0 for node in survivors
    )


def health_rows():
    rows = []
    for label, crashes, loss in (
        ("30% crashes", 0.3, 0.0),
        ("10% loss", 0.0, 0.1),
        ("30% crashes + 10% loss", 0.3, 0.1),
    ):
        on = mean(health_run(True, crashes, loss, seed=s) for s in SEEDS)
        off = mean(health_run(False, crashes, loss, seed=s) for s in SEEDS)
        rows.append((label, on, off))
    return rows


def recovery_run(amnesia, catch_up, crash_fraction=0.2, seed=1):
    """Crash-restart run: delivery over the WHOLE group, restarted nodes
    included.  Push style so no periodic repair masks the recovery path:
    a restarted node gets old messages back from its WAL (durable), from
    rejoin catch-up (amnesia + catch-up), or never (the ablation arm)."""
    group = GossipConfig(
        n_disseminators=N - 1,
        seed=seed,
        durability=DurabilityPolicy(catch_up=catch_up),
        params={"style": "push", "fanout": 6, "rounds": 8, "peer_sample_size": 16},
        auto_tune=False,
    ).build()
    group.setup(settle=1.5, eager_join=True)
    gossip_id = group.publish({"exp": "e5-recovery"})
    group.run_for(5.0)
    plan = FaultPlan(group.network)
    plan.crash_fraction_at(
        group.sim.now,
        crash_fraction,
        [node.name for node in group.disseminators],
        restart_after=2.0,
        amnesia=amnesia,
    )
    plan.apply()
    group.run_for(12.0)
    return mean(
        1.0 if node.has_delivered(gossip_id) else 0.0
        for node in group.disseminators
    )


def recovery_rows():
    rows = []
    for label, amnesia, catch_up in (
        ("durable replay (WAL)", False, True),
        ("amnesia + catch-up", True, True),
        ("amnesia, no catch-up", True, False),
    ):
        delivery = mean(
            recovery_run(amnesia, catch_up, seed=s) for s in SEEDS
        )
        rows.append((label, delivery))
    return rows


def tree_run(crash_fraction=0.0, loss_rate=0.0, seed=1):
    group = TreeGroup(N, seed=seed, arity=2, loss_rate=loss_rate)
    group.setup()
    plan = FaultPlan(group.network)
    plan.crash_fraction_at(
        group.sim.now, crash_fraction, [node.name for node in group.receivers[1:]]
    )
    plan.apply()
    group.run_for(0.05)
    mid = group.publish({"exp": "e5"})
    group.run_for(10.0)
    survivors = [node for node in group.receivers if node.is_running]
    return mean(1.0 if node.has_delivered(mid) else 0.0 for node in survivors)


def broker_run(crash_fraction=0.0, loss_rate=0.0, seed=1, crash_broker=False):
    group = CentralNotifyGroup(N, seed=seed, loss_rate=loss_rate)
    group.setup()
    plan = FaultPlan(group.network)
    plan.crash_fraction_at(
        group.sim.now, crash_fraction, [node.name for node in group.receivers]
    )
    plan.apply()
    if crash_broker:
        group.broker.crash()
    group.run_for(0.05)
    mid = group.publish({"exp": "e5"})
    group.run_for(10.0)
    survivors = [node for node in group.receivers if node.is_running]
    return mean(1.0 if node.has_delivered(mid) else 0.0 for node in survivors)


def crash_rows():
    rows = []
    for fraction in CRASH_FRACTIONS:
        gossip = mean(gossip_run(crash_fraction=fraction, seed=s) for s in SEEDS)
        tree = mean(tree_run(crash_fraction=fraction, seed=s) for s in SEEDS)
        broker = mean(broker_run(crash_fraction=fraction, seed=s) for s in SEEDS)
        rows.append((f"{fraction:.0%}", gossip, tree, broker))
    return rows


def loss_rows():
    rows = []
    for loss in LOSS_RATES:
        gossip = mean(gossip_run(loss_rate=loss, seed=s) for s in SEEDS)
        tree = mean(tree_run(loss_rate=loss, seed=s) for s in SEEDS)
        broker = mean(broker_run(loss_rate=loss, seed=s) for s in SEEDS)
        rows.append((f"{loss:.0%}", gossip, tree, broker))
    return rows


def test_e5_crash_resilience(benchmark):
    rows = crash_rows()
    emit(
        "e5_crashes",
        "E5a: delivery to survivors vs crash fraction (N=32)",
        ["crashed", "WS-Gossip", "tree", "broker"],
        rows,
    )
    # Gossip stays near-perfect; the tree degrades with every interior crash.
    for label, gossip, tree, broker in rows:
        assert gossip >= 0.9
    assert rows[-1][2] < 0.8, "tree should lose subtrees at 50% crashes"

    broker_out = broker_run(crash_broker=True)
    emit(
        "e5_broker_spof",
        "E5b: the broker is a single point of failure",
        ["scenario", "delivery"],
        [("broker up", broker_run()), ("broker crashed", broker_out)],
    )
    assert broker_out == 0.0

    benchmark.pedantic(lambda: gossip_run(crash_fraction=0.3), rounds=1, iterations=1)


def test_e5_health_ablation(benchmark):
    rows = health_rows()
    emit(
        "e5_health",
        "E5d: delivery to survivors, peer-health layer on vs off (N=32)",
        ["faults", "health on", "health off"],
        rows,
    )
    # Suspicion + degraded-mode selection never hurts and helps under
    # combined faults, where dead peers waste a fixed fanout budget.
    for label, on, off in rows:
        assert on >= off - 1e-9, f"health layer regressed delivery: {label}"
        assert on >= 0.95
    benchmark.pedantic(lambda: health_run(True), rounds=1, iterations=1)


def test_e5_crash_recovery(benchmark):
    rows = recovery_rows()
    emit(
        "e5_recovery",
        "E5e: delivery across 20% crash-restart, by recovery path (N=32)",
        ["recovery path", "delivery"],
        rows,
    )
    by_label = dict(rows)
    # Both recovery paths restore full (or near-full) delivery; the
    # ablation arm loses roughly the crashed fraction for good.
    assert by_label["durable replay (WAL)"] >= 0.99
    assert by_label["amnesia + catch-up"] >= 0.99
    assert by_label["amnesia, no catch-up"] < 0.9
    benchmark.pedantic(
        lambda: recovery_run(amnesia=True, catch_up=True), rounds=1, iterations=1
    )


def test_e5_loss_resilience(benchmark):
    rows = loss_rows()
    emit(
        "e5_loss",
        "E5c: delivery vs message-loss rate (N=32)",
        ["loss", "WS-Gossip", "tree", "broker"],
        rows,
    )
    for label, gossip, tree, broker in rows:
        assert gossip >= 0.95, "redundancy should mask loss"
    # Single-path systems track (1 - loss) while gossip stays flat.
    assert rows[-1][3] < 0.85
    benchmark.pedantic(lambda: gossip_run(loss_rate=0.3), rounds=1, iterations=1)


if __name__ == "__main__":
    emit("e5_crashes", "E5a: delivery vs crash fraction",
         ["crashed", "WS-Gossip", "tree", "broker"], crash_rows())
    emit("e5_loss", "E5c: delivery vs loss",
         ["loss", "WS-Gossip", "tree", "broker"], loss_rows())
    emit("e5_health", "E5d: delivery, health layer on vs off",
         ["faults", "health on", "health off"], health_rows())
    emit("e5_recovery", "E5e: delivery across 20% crash-restart, by recovery path",
         ["recovery path", "delivery"], recovery_rows())
