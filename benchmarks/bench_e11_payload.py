"""E11 -- Payload size and the lazy-push trade-off (extension experiment).

Eager push re-transmits the full payload on every forward; lazy push
(Plumtree-style) pushes identifiers and transfers the payload once per
node.  With per-node uplink bandwidth bounded, the wire-byte savings turn
into latency savings as payloads grow.  This experiment did not exist in
the paper (which names only push); it exercises the "different gossip
styles" extension point.
"""

from _tables import emit

from repro import GossipConfig
from repro.simnet.latency import FixedLatency

N = 16
BANDWIDTH = 250_000.0  # 250 KB/s uplink per node
PAYLOAD_SIZES = [100, 2_000, 16_000]


def run_once(style, payload_bytes, seed=3):
    group = GossipConfig(
        n_disseminators=N - 1,
        seed=seed,
        latency=FixedLatency(0.002),
        params={"style": style, "fanout": 5, "rounds": 7, "period": 2.0,
                "peer_sample_size": 12},
        auto_tune=False,
    ).build()
    group.setup(settle=1.0)
    for node in group.app_nodes():
        group.network.set_egress_bandwidth(node.name, BANDWIDTH)
    bytes_before = group.metrics.counters().get("net.bytes", 0)
    start = group.sim.now
    gossip_id = group.publish({"blob": "x" * payload_bytes})
    deadline = start + 60.0
    while group.sim.now < deadline and group.delivered_fraction(gossip_id) < 1.0:
        group.run_for(0.25)
    elapsed = group.sim.now - start
    total_bytes = group.metrics.counters().get("net.bytes", 0) - bytes_before
    return group.delivered_fraction(gossip_id), elapsed, total_bytes


def payload_rows():
    rows = []
    for payload_bytes in PAYLOAD_SIZES:
        push_coverage, push_time, push_bytes = run_once("push", payload_bytes)
        lazy_coverage, lazy_time, lazy_bytes = run_once("lazy-push", payload_bytes)
        rows.append(
            (payload_bytes, push_coverage, push_bytes // 1000,
             lazy_coverage, lazy_bytes // 1000,
             push_bytes / max(1, lazy_bytes))
        )
    return rows


def test_e11_payload_size(benchmark):
    rows = payload_rows()
    emit(
        "e11_payload",
        f"E11: push vs lazy-push wire volume by payload size "
        f"(N={N}, {BANDWIDTH / 1000:.0f} KB/s uplinks)",
        ["payload B", "push cov", "push KB", "lazy cov", "lazy KB",
         "push/lazy bytes"],
        rows,
    )
    for payload_bytes, push_cov, _pb, lazy_cov, _lb, ratio in rows:
        assert push_cov == 1.0
        assert lazy_cov == 1.0
    # The byte advantage must grow with payload size.
    ratios = [row[5] for row in rows]
    assert ratios[-1] > ratios[0]
    assert ratios[-1] > 1.5, "large payloads should clearly favour lazy push"
    # Small payloads pay the ad/fetch overhead: no free lunch.
    assert ratios[0] < 1.2
    benchmark.pedantic(lambda: run_once("lazy-push", 2000), rounds=1, iterations=1)


if __name__ == "__main__":
    emit(
        "e11_payload",
        "E11: push vs lazy-push wire volume by payload size",
        ["payload B", "push cov", "push KB", "lazy cov", "lazy KB",
         "push/lazy bytes"],
        payload_rows(),
    )
