"""E12 -- Where should reliability live: transport retransmission (WS-RM)
or epidemic redundancy (WS-Gossip)?

The 2008 ecosystem answered message loss with WS-ReliableMessaging-style
per-link ack/retransmit.  This experiment builds exactly that -- a
sequential-unicast publisher whose every link is reliable -- and compares
it with gossip on a lossy, crashy fabric:

* under pure *loss*, both reach everyone; RM pays retransmissions and a
  long latency tail (retry timers), gossip pays duplicates but stays fast;
* under *crashes*, RM keeps retrying dead receivers and gives up --
  reliability is not resilience; gossip routes around them.
"""

from _tables import emit, mean

from repro import GossipConfig, Simulator
from repro.core.scheduling import ProcessScheduler
from repro.simnet.faults import FaultPlan
from repro.simnet.latency import FixedLatency
from repro.simnet.network import Network
from repro.soap.reliable import install_reliability
from repro.soap.service import Service
from repro.transport.inmem import WsProcess

N = 24
SEEDS = [1, 2]
RETRY_INTERVAL = 0.3


class _Receiver(WsProcess):
    def __init__(self, name, network):
        super().__init__(name, network)
        self.app = Service()
        self.runtime.add_service("/app", self.app)
        self.delivery_time = None
        self.app.add_operation("urn:t/Event", self._handle)
        self.rm = install_reliability(self.runtime, ProcessScheduler(self),
                                      retry_interval=RETRY_INTERVAL,
                                      max_retries=12)

    def _handle(self, context, value):
        if self.delivery_time is None:
            self.delivery_time = self.now
        return None


def rm_unicast_run(loss_rate, crash_fraction, seed):
    sim = Simulator(seed=seed)
    network = Network(sim, latency=FixedLatency(0.005), loss_rate=loss_rate)
    publisher = _Receiver("publisher", network)
    receivers = [_Receiver(f"r{index}", network) for index in range(N)]
    for node in (publisher, *receivers):
        node.start()
    plan = FaultPlan(network)
    plan.crash_fraction_at(0.0, crash_fraction, [node.name for node in receivers])
    plan.apply()
    sim.run_until(0.01)
    start = sim.now
    for node in receivers:
        publisher.runtime.send(f"sim://{node.name}/app", "urn:t/Event",
                               value={"e": 12})
    sim.run_until(start + 20.0)
    survivors = [node for node in receivers if node.is_running]
    delivered = [node for node in survivors if node.delivery_time is not None]
    latencies = sorted(node.delivery_time - start for node in delivered)
    p95 = latencies[int(0.95 * (len(latencies) - 1))] if latencies else float("nan")
    messages = network.metrics.counter("net.sent").value
    abandoned = publisher.rm.dead_letters
    return len(delivered) / max(1, len(survivors)), p95, messages, abandoned


def gossip_run(loss_rate, crash_fraction, seed):
    group = GossipConfig(
        n_disseminators=N,
        seed=seed,
        latency=FixedLatency(0.005),
        loss_rate=loss_rate,
        params={"fanout": 6, "rounds": 8, "peer_sample_size": 16},
        auto_tune=False,
    ).build()
    group.setup(settle=1.5, eager_join=True)
    plan = FaultPlan(group.network)
    plan.crash_fraction_at(
        group.sim.now, crash_fraction, [node.name for node in group.disseminators]
    )
    plan.apply()
    group.run_for(0.05)
    before = group.metrics.counter("net.sent").value
    start = group.sim.now
    gossip_id = group.publish({"e": 12})
    group.run_for(20.0)
    survivors = [
        node for node in group.disseminators
        if group.network.process(node.name).is_running
    ]
    delivered = [node for node in survivors if node.has_delivered(gossip_id)]
    latencies = sorted(
        node.delivery_time(gossip_id) - start for node in delivered
    )
    p95 = latencies[int(0.95 * (len(latencies) - 1))] if latencies else float("nan")
    messages = group.metrics.counter("net.sent").value - before
    return len(delivered) / max(1, len(survivors)), p95, messages


def scenario_rows():
    rows = []
    for label, loss, crashes in (
        ("20% loss", 0.2, 0.0),
        ("40% loss", 0.4, 0.0),
        ("25% crashes", 0.0, 0.25),
        ("20% loss + 25% crashes", 0.2, 0.25),
    ):
        rm = [rm_unicast_run(loss, crashes, seed) for seed in SEEDS]
        gossip = [gossip_run(loss, crashes, seed) for seed in SEEDS]
        rows.append(
            (
                label,
                mean(r[0] for r in rm), mean(r[1] for r in rm),
                mean(r[2] for r in rm), mean(r[3] for r in rm),
                mean(g[0] for g in gossip), mean(g[1] for g in gossip),
                mean(g[2] for g in gossip),
            )
        )
    return rows


def test_e12_reliability_layers(benchmark):
    rows = scenario_rows()
    emit(
        "e12_reliability",
        f"E12: WS-RM reliable unicast vs WS-Gossip (N={N}; delivery to "
        "survivors, p95 latency s, wire msgs, abandoned msgs)",
        ["scenario", "RM del", "RM p95", "RM msgs", "RM dead",
         "gossip del", "gossip p95", "gossip msgs"],
        rows,
    )
    by_label = {row[0]: row for row in rows}
    # Both repair pure loss...
    assert by_label["20% loss"][1] >= 0.99
    assert by_label["20% loss"][5] >= 0.99
    # ...but RM pays a latency tail that grows with loss (retry timers),
    # while gossip stays an order of magnitude faster at moderate loss.
    assert by_label["40% loss"][2] > by_label["20% loss"][2]
    assert by_label["20% loss"][6] < by_label["20% loss"][2] / 5
    # Crashes: gossip still covers survivors; RM wastes retransmissions on
    # the dead, then abandons those messages (visible as dead letters).
    assert by_label["25% crashes"][5] >= 0.95
    assert by_label["25% crashes"][4] > 0
    assert by_label["20% loss"][4] == 0
    benchmark.pedantic(lambda: gossip_run(0.2, 0.0, 1), rounds=1, iterations=1)


if __name__ == "__main__":
    emit(
        "e12_reliability",
        "E12: WS-RM reliable unicast vs WS-Gossip",
        ["scenario", "RM del", "RM p95", "RM msgs", "RM dead",
         "gossip del", "gossip p95", "gossip msgs"],
        scenario_rows(),
    )
