"""E1 -- Reproduce the paper's Figure 1 (dissemination using the gossip
service).

The only figure in the paper is architectural: Initiator App0b activates a
gossip interaction, App1-App3 subscribe at the Coordinator, the Initiator
issues a single ``op``, Disseminators intercept / register / forward, and
the unchanged Consumer receives ``op``.  This bench drives exactly that
five-node topology, checks every arrow, prints the observed message-flow
table, and times the full flow.
"""

from _tables import emit

from repro import Simulator
from repro.core.roles import (
    ConsumerNode,
    CoordinatorNode,
    DisseminatorNode,
    InitiatorNode,
)
from repro.simnet.latency import FixedLatency
from repro.simnet.network import Network
from repro.simnet.trace import TraceLog

ACTION = "urn:stock/op"


def run_figure1(seed: int = 11, trace: bool = False):
    sim = Simulator(seed=seed)
    trace_log = TraceLog(enabled=trace)
    network = Network(sim, latency=FixedLatency(0.002), trace=trace_log)
    coordinator = CoordinatorNode("coordinator", network, auto_tune=False)
    app0b = InitiatorNode("app0b", network)
    app1 = DisseminatorNode("app1", network)
    app2 = DisseminatorNode("app2", network)
    app3 = ConsumerNode("app3", network)
    for node in (coordinator, app0b, app1, app2, app3):
        node.start()
    for node in (app0b, app1, app2, app3):
        node.bind(ACTION)

    engines = []
    app0b.activate(
        coordinator.activation_address,
        parameters={"fanout": 2, "rounds": 3},
        on_ready=lambda engine: engines.append(engine),
    )
    sim.run_until(1.0)
    activity_id = engines[0].activity_id
    for node in (app1, app2, app3):
        node.subscribe(coordinator.subscription_address, activity_id)
    sim.run_until(2.0)
    engines[0].refresh_view()
    sim.run_until(3.0)
    gossip_id = app0b.publish(activity_id, ACTION, {"symbol": "SWX", "price": 42.0})
    sim.run_until(8.0)

    receivers = [node for node in (app1, app2, app3) if node.has_delivered(gossip_id)]
    return sim, network, trace_log, receivers, (app1, app2, app3)


def figure1_rows():
    sim, network, trace_log, receivers, apps = run_figure1(trace=True)
    steps = [
        ("1 activation", "App0b -> Coordinator", "CreateCoordinationContext"),
        ("2 subscribe x3", "App1/2/3 -> Coordinator", "Subscribe"),
        ("3 op (gossip)", "App0b -> peers", "app op + Gossip/Context headers"),
        ("4 register", "Disseminators -> Coordinator", "Register (auto-join)"),
        ("5 forward", "Disseminators -> peers", "op re-routed by gossip layer"),
        ("6 consume", "App3 (unchanged)", "plain SOAP dispatch"),
    ]
    rows = []
    for label, edge, what in steps:
        rows.append((label, edge, what, "observed"))
    rows.append(
        (
            "result",
            f"{len(receivers)}/3 apps received op",
            f"{network.metrics.counter('net.sent').value} wire msgs",
            "PASS" if len(receivers) == 3 else "FAIL",
        )
    )
    return rows


def test_e1_figure1_flow(benchmark):
    rows = figure1_rows()
    emit(
        "e1_figure1",
        "E1: Figure 1 message flow (1 initiator, 2 disseminators, 1 consumer)",
        ["step", "edge", "payload", "status"],
        rows,
    )
    assert rows[-1][-1] == "PASS"

    def one_flow():
        sim, network, trace_log, receivers, apps = run_figure1()
        return len(receivers)

    delivered = benchmark(one_flow)
    assert delivered == 3


if __name__ == "__main__":
    emit(
        "e1_figure1",
        "E1: Figure 1 message flow",
        ["step", "edge", "payload", "status"],
        figure1_rows(),
    )
