"""E7 -- Membership under failures and churn (WS-Membership, Section 3).

Two measurements:

* failure-detection latency and view accuracy of the WS-Membership
  heartbeat gossip as ``t_fail`` varies;
* dissemination delivery under continuous churn, with push-pull repair.
"""

from _tables import emit, mean

from repro import GossipConfig, Simulator
from repro.simnet.latency import FixedLatency
from repro.simnet.network import Network
from repro.wsmembership import MemberStatus, MembershipNode
from repro.workloads import churn_plan

N_MEMBERS = 16


def detection_run(t_fail, seed=1):
    sim = Simulator(seed=seed)
    network = Network(sim, latency=FixedLatency(0.005))
    nodes = [
        MembershipNode(f"m{index}", network, period=0.5, t_fail=t_fail,
                       t_cleanup=4 * t_fail)
        for index in range(N_MEMBERS)
    ]
    for node in nodes:
        node.start()
    anchor = nodes[0].runtime.base_address
    for node in nodes[1:]:
        node.bootstrap([anchor])
    nodes[0].bootstrap([nodes[1].runtime.base_address])
    sim.run_until(12.0)

    victim = nodes[N_MEMBERS // 2]
    victim_address = victim.runtime.base_address
    victim.crash()
    crash_time = sim.now

    observers = [node for node in nodes if node is not victim]
    detect_times = {}
    step = 0.25
    while sim.now < crash_time + 20 * t_fail and len(detect_times) < len(observers):
        sim.run_until(sim.now + step)
        for node in observers:
            if node.name in detect_times:
                continue
            status = node.membership.view.status_of(victim_address)
            if status in (MemberStatus.SUSPECT, MemberStatus.FAILED):
                detect_times[node.name] = sim.now - crash_time
    false_positives = sum(
        1
        for node in observers
        for member in node.membership.view.members(MemberStatus.SUSPECT)
        if member != victim_address
    )
    detected = list(detect_times.values())
    return (
        mean(detected) if detected else float("inf"),
        len(detected) / len(observers),
        false_positives,
    )


def detection_rows():
    rows = []
    for t_fail in (2.0, 4.0, 8.0):
        latency, coverage, false_positives = detection_run(t_fail)
        rows.append((t_fail, latency, coverage, false_positives))
    return rows


def churn_delivery(rate, seed=5):
    group = GossipConfig(
        n_disseminators=24,
        seed=seed,
        params={"fanout": 4, "rounds": 7, "style": "push-pull", "period": 0.5,
                "peer_sample_size": 14},
        auto_tune=False,
    ).build()
    group.setup(settle=1.5, eager_join=True)
    if rate > 0:
        churn_plan(
            group.network,
            [node.name for node in group.disseminators],
            rate=rate,
            recover_delay=1.5,
            until=group.sim.now + 20.0,
            # Faithful crash-restart semantics (amnesia + rejoin/catch-up),
            # not the pause-style resume the generator defaulted to before.
            restart=True,
        )
    gossip_id = group.publish({"exp": "e7"})
    group.run_for(30.0)
    up_nodes = [
        node
        for node in group.disseminators
        if group.network.process(node.name).is_running
    ]
    return mean(1.0 if node.has_delivered(gossip_id) else 0.0 for node in up_nodes)


def churn_rows():
    return [
        (rate, churn_delivery(rate)) for rate in (0.0, 0.5, 1.0, 2.0, 4.0)
    ]


def test_e7_failure_detection(benchmark):
    rows = detection_rows()
    emit(
        "e7_detection",
        f"E7a: WS-Membership failure detection (N={N_MEMBERS}, period=0.5s)",
        ["t_fail (s)", "mean detect (s)", "detect coverage", "false suspects"],
        rows,
    )
    for t_fail, latency, coverage, false_positives in rows:
        assert coverage == 1.0, "every live node must detect the crash"
        assert latency >= t_fail * 0.8
        assert latency <= 6 * t_fail
        # Tight timeouts can transiently suspect a lagging-but-alive node;
        # progress un-suspects it.  Allow a couple of transients.
        assert false_positives <= 2
    # Detection latency tracks the configured timeout.
    assert rows[0][1] < rows[-1][1]
    benchmark.pedantic(lambda: detection_run(2.0), rounds=1, iterations=1)


def test_e7_delivery_under_churn(benchmark):
    rows = churn_rows()
    emit(
        "e7_churn",
        "E7b: delivery to up-nodes vs churn rate (push-pull, N=25)",
        ["churn events/s", "delivery"],
        rows,
    )
    assert rows[0][1] == 1.0
    for rate, delivery in rows:
        assert delivery >= 0.9, f"delivery collapsed at churn rate {rate}"
    benchmark.pedantic(lambda: churn_delivery(1.0), rounds=1, iterations=1)


if __name__ == "__main__":
    emit("e7_detection", "E7a: failure detection",
         ["t_fail", "mean detect", "coverage", "false suspects"], detection_rows())
    emit("e7_churn", "E7b: delivery under churn",
         ["churn events/s", "delivery"], churn_rows())
