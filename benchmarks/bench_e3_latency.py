"""E3 -- Dissemination latency scales logarithmically with population.

The paper's scalability claim: gossip reaches "large numbers of
participants" in O(log N) rounds.  Sweep N with coordinator-tuned
parameters (the framework's own auto-tune, targeting 99% atomic delivery),
measure the hop count for the epidemic to reach everyone, and compare with
the mean-field prediction.
"""

import math

from _tables import emit, mean

from repro import GossipConfig
from repro.core.analysis import expected_rounds, fanout_for_atomicity
from repro.simnet.latency import FixedLatency

POPULATIONS = [16, 32, 64, 128, 256]
SEEDS = [1, 2, 3]
HOP_LATENCY = 0.01  # seconds per hop: time-to-cover / latency ~ hops


def tuned_fanout(n: int) -> int:
    return int(math.ceil(fanout_for_atomicity(n, 0.99))) + 1


def run_once(n: int, seed: int):
    fanout = tuned_fanout(n)
    group = GossipConfig(
        n_disseminators=n - 1,
        seed=seed,
        latency=FixedLatency(HOP_LATENCY),
        params={
            "fanout": fanout,
            "rounds": expected_rounds(n, fanout) + 3,
            "peer_sample_size": 2 * fanout,
        },
        auto_tune=False,
    ).build()
    group.setup(settle=1.0, eager_join=True)
    start = group.sim.now
    gossip_id = group.publish({"exp": "e3"})
    group.run_for(10.0)
    if group.delivered_fraction(gossip_id) < 1.0:
        return None
    last = max(group.delivery_times(gossip_id))
    return (last - start) / HOP_LATENCY  # hops until the last receiver


def latency_rows():
    rows = []
    for n in POPULATIONS:
        fanout = tuned_fanout(n)
        hops = [run_once(n, seed) for seed in SEEDS]
        covered = [h for h in hops if h is not None]
        predicted = expected_rounds(n, fanout)
        rows.append(
            (
                n,
                fanout,
                mean(covered) if covered else float("nan"),
                predicted,
                math.log2(n),
                f"{len(covered)}/{len(SEEDS)}",
            )
        )
    return rows


def test_e3_latency_scaling(benchmark):
    rows = latency_rows()
    emit(
        "e3_latency",
        "E3: hops to full coverage vs N (coordinator-tuned fanout)",
        ["N", "fanout", "measured hops", "mean-field", "log2(N)", "full runs"],
        rows,
    )
    measured = [row[2] for row in rows]
    assert all(not math.isnan(value) for value in measured), "coverage failed"
    # Logarithmic shape: 16x the population costs far less than 16x hops.
    assert measured[-1] <= measured[0] * 3.5
    assert measured[-1] <= math.log2(POPULATIONS[-1]) + 3
    benchmark.pedantic(lambda: run_once(64, 1), rounds=3, iterations=1)


if __name__ == "__main__":
    emit(
        "e3_latency",
        "E3: hops to full coverage vs N (coordinator-tuned fanout)",
        ["N", "fanout", "measured hops", "mean-field", "log2(N)", "full runs"],
        latency_rows(),
    )
