"""E13 -- WAN awareness: locality-aware peer selection across datacenters
(extension experiment).

Split the population across two sites with 40x slower cross-site links.
Uniform selection sprays ~half its fanout across the WAN; the
locality-aware selector keeps most traffic local with a remote trickle to
bridge the sites.  Measure cross-site message fraction, delivery, and
time to cover.
"""

from _tables import emit, mean

from repro import GossipConfig
from repro.core.peers import LocalityAwareSelector
from repro.simnet.latency import FixedLatency
from repro.workloads.topology import (
    apply_site_latency,
    cross_site_fraction,
    site_of_address,
)

N = 32  # app nodes (initiator + 31 disseminators), split across 2 sites
SEEDS = [1, 2, 3]
LOCAL = FixedLatency(0.002)
CROSS = FixedLatency(0.080)


def build_group(seed):
    group = GossipConfig(
        n_disseminators=N - 1,
        seed=seed,
        params={"fanout": 5, "rounds": 7, "peer_sample_size": 31},
        auto_tune=False,
        trace=True,
    ).build()
    names = [node.name for node in group.app_nodes()]
    sites = {"dc-east": names[: N // 2], "dc-west": names[N // 2:]}
    site_map = apply_site_latency(group.network, sites, LOCAL, CROSS)
    site_map["coordinator"] = "dc-east"
    return group, site_map


def run_once(seed, remote_probability=None):
    group, site_map = build_group(seed)
    if remote_probability is not None:
        for node in group.app_nodes():
            if hasattr(node, "gossip_layer"):
                self_site = site_map[node.name]
                node.gossip_layer.selector = LocalityAwareSelector(
                    site_of=lambda address, m=site_map: site_of_address(address, m),
                    self_site=self_site,
                    remote_probability=remote_probability,
                )
    group.setup(settle=1.5, eager_join=True)
    group.trace.clear()  # measure dissemination traffic only
    start = group.sim.now
    gossip_id = group.publish({"exp": "e13"})
    group.run_for(10.0)
    times = group.delivery_times(gossip_id)
    return (
        group.delivered_fraction(gossip_id),
        cross_site_fraction(group.trace, site_map),
        (max(times) - start) if times else float("nan"),
    )


def wan_rows():
    rows = []
    for label, remote_probability in (
        ("uniform (paper default)", None),
        ("locality-aware p=0.30", 0.30),
        ("locality-aware p=0.10", 0.10),
    ):
        results = [run_once(seed, remote_probability) for seed in SEEDS]
        rows.append(
            (
                label,
                mean(r[0] for r in results),
                mean(r[1] for r in results),
                mean(r[2] for r in results),
            )
        )
    return rows


def test_e13_wan_awareness(benchmark):
    rows = wan_rows()
    emit(
        "e13_wan",
        f"E13: two-DC deployment (N={N}, cross links {CROSS.delay * 1000:.0f}ms "
        f"vs {LOCAL.delay * 1000:.0f}ms local)",
        ["selector", "delivery", "cross-DC msg fraction", "time to cover (s)"],
        rows,
    )
    uniform, aware30, aware10 = rows
    assert uniform[1] == 1.0
    assert aware30[1] == 1.0
    # Locality awareness slashes cross-DC traffic...
    assert aware30[2] < uniform[2] * 0.8
    assert aware10[2] < aware30[2]
    # ...without giving up coverage; the p=0.10 trickle may trade a bit of
    # latency for the savings but must still bridge the sites.
    assert aware10[1] >= 0.95
    benchmark.pedantic(lambda: run_once(1, 0.3), rounds=1, iterations=1)


if __name__ == "__main__":
    emit(
        "e13_wan",
        "E13: two-DC deployment",
        ["selector", "delivery", "cross-DC msg fraction", "time to cover (s)"],
        wan_rows(),
    )
