"""Ablations over WS-Gossip design choices (DESIGN.md Section 5).

* A1 peer selection: the epidemic analysis assumes *uniform random*
  targets.  Replace it with deterministic round-robin and reliability
  under correlated crashes degrades.
* A2 rounds budget: infect-and-die needs ``r`` at least the mean-field
  round count; sweep ``r`` and watch coverage hit a knee exactly there.
* A3 auto-tuning: fixed small fanout loses atomicity as the population
  grows; the coordinator's analytic tuning holds it.
"""

from _tables import emit, mean

from repro import GossipConfig
from repro.core.analysis import expected_rounds
from repro.core.peers import RoundRobinSelector

SEEDS = [1, 2, 3]


def selection_run(selector_factory, seed, crash_fraction=0.25, n=24):
    from repro.simnet.faults import FaultPlan

    group = GossipConfig(
        n_disseminators=n - 1,
        seed=seed,
        params={"fanout": 4, "rounds": 7, "peer_sample_size": 12},
        auto_tune=False,
    ).build()
    if selector_factory is not None:
        for node in [group.initiator, *group.disseminators]:
            node.gossip_layer.selector = selector_factory()
    group.setup(settle=1.0, eager_join=True)
    plan = FaultPlan(group.network)
    plan.crash_fraction_at(
        group.sim.now, crash_fraction, [node.name for node in group.disseminators]
    )
    plan.apply()
    group.run_for(0.05)
    gossip_id = group.publish({"a": 1})
    group.run_for(10.0)
    survivors = [
        node
        for node in group.disseminators
        if group.network.process(node.name).is_running
    ]
    return mean(
        1.0 if node.has_delivered(gossip_id) else 0.0 for node in survivors
    )


def test_a1_peer_selection(benchmark):
    uniform = mean(selection_run(None, seed) for seed in SEEDS)
    round_robin = mean(
        selection_run(RoundRobinSelector, seed) for seed in SEEDS
    )
    emit(
        "a1_selection",
        "A1: delivery to survivors, 25% crashes -- uniform vs round-robin "
        "selection",
        ["selector", "delivery"],
        [("uniform random", uniform), ("round-robin", round_robin)],
    )
    assert uniform >= round_robin - 0.02, (
        "randomized selection should not lose to deterministic rotation"
    )
    assert uniform >= 0.9
    benchmark.pedantic(lambda: selection_run(None, 1), rounds=1, iterations=1)


def rounds_run(rounds, seed, n=32):
    group = GossipConfig(
        n_disseminators=n - 1,
        seed=seed,
        params={"fanout": 4, "rounds": rounds, "peer_sample_size": 12},
        auto_tune=False,
    ).build()
    group.setup(settle=1.0, eager_join=True)
    gossip_id = group.publish({"a": 1})
    group.run_for(10.0)
    return group.delivered_fraction(gossip_id)


def test_a2_rounds_budget(benchmark):
    knee = expected_rounds(32, 4)
    rows = []
    for rounds in (1, 2, 3, knee, knee + 2):
        coverage = mean(rounds_run(rounds, seed) for seed in SEEDS)
        rows.append((rounds, coverage))
    emit(
        "a2_rounds",
        f"A2: coverage vs rounds budget r (N=32, fanout=4; mean-field knee={knee})",
        ["rounds r", "coverage"],
        rows,
    )
    coverages = [row[1] for row in rows]
    assert coverages[0] < 0.6, "r=1 must stop the epidemic early"
    assert coverages == sorted(coverages)
    assert coverages[-1] >= 0.97
    benchmark.pedantic(lambda: rounds_run(3, 1), rounds=1, iterations=1)


def autotune_run(auto_tune, n, seed):
    group = GossipConfig(
        n_disseminators=n - 1,
        seed=seed,
        params={"fanout": 3, "rounds": 5},
        auto_tune=auto_tune,
    ).build()
    group.setup(settle=1.0, eager_join=True)
    gossip_id = group.publish({"a": 1})
    group.run_for(10.0)
    return 1.0 if group.delivered_fraction(gossip_id) >= 1.0 else 0.0


def test_a3_auto_tuning(benchmark):
    rows = []
    for n in (16, 64, 128):
        fixed = mean(autotune_run(False, n, seed) for seed in SEEDS)
        tuned = mean(autotune_run(True, n, seed) for seed in SEEDS)
        rows.append((n, fixed, tuned))
    emit(
        "a3_autotune",
        "A3: atomic-delivery rate, fixed fanout=3 vs coordinator auto-tune",
        ["N", "fixed f=3", "auto-tuned"],
        rows,
    )
    # Fixed fanout loses atomicity as N grows; tuning keeps it.
    assert rows[-1][1] < rows[-1][2]
    assert rows[-1][2] == 1.0
    benchmark.pedantic(lambda: autotune_run(True, 64, 1), rounds=1, iterations=1)


if __name__ == "__main__":
    print("ablation tables are produced under pytest: "
          "pytest benchmarks/bench_a1_ablations.py --benchmark-only")
