"""E6 -- Load distribution: centralized broker vs gossip.

The paper's architectural argument: a WS-Notification broker carries the
entire fan-out itself (load linear in N at one node), whereas WS-Gossip
spreads forwarding across the population and the Coordinator is only
involved in registration.  Sweep N and measure per-node message load for
one dissemination.
"""

from _tables import emit

from repro import GossipConfig
from repro.baselines.centralnotify import CentralNotifyGroup

POPULATIONS = [16, 32, 64, 128]


def broker_load(n, seed=1):
    group = CentralNotifyGroup(n, seed=seed)
    group.setup()
    before = group.metrics.counter("wsn.fanout").value
    group.publish({"exp": "e6"})
    group.run_for(3.0)
    return group.metrics.counter("wsn.fanout").value - before


def gossip_loads(n, seed=1):
    group = GossipConfig(
        n_disseminators=n - 1,
        seed=seed,
        params={"fanout": 4, "rounds": 7, "peer_sample_size": 12},
        auto_tune=False,
        trace=True,
    ).build()
    group.setup(settle=1.0, eager_join=True)
    sends_before = group.metrics.counter("net.sent").value
    forwards_before = group.metrics.counter("gossip.forward").value
    coordinator_before = _coordinator_receipts(group)
    gossip_id = group.publish({"exp": "e6"})
    group.run_for(10.0)
    total_sends = group.metrics.counter("net.sent").value - sends_before
    per_node = total_sends / n
    coordinator_msgs = _coordinator_receipts(group) - coordinator_before
    return per_node, coordinator_msgs, group.delivered_fraction(gossip_id)


def _coordinator_receipts(group):
    return sum(
        1
        for event in group.trace.events(kind="net.deliver", node="coordinator")
    )


def load_rows():
    rows = []
    for n in POPULATIONS:
        broker = broker_load(n)
        per_node, coordinator_msgs, delivered = gossip_loads(n)
        rows.append((n, broker, per_node, coordinator_msgs, delivered))
    return rows


def test_e6_coordinator_load(benchmark):
    rows = load_rows()
    emit(
        "e6_load",
        "E6: per-dissemination load -- broker msgs vs gossip per-node msgs",
        ["N", "broker fan-out msgs", "gossip msgs/node", "coordinator msgs", "delivered"],
        rows,
    )
    # Broker load is exactly linear in N.
    assert [row[1] for row in rows] == POPULATIONS
    # Gossip per-node load stays flat-ish (bounded by fanout * rounds),
    # and the coordinator sits out of the data path entirely.
    per_node = [row[2] for row in rows]
    assert max(per_node) <= 4 * 2.5
    assert per_node[-1] <= per_node[0] * 2.0
    assert all(row[3] == 0 for row in rows)
    benchmark.pedantic(lambda: gossip_loads(32), rounds=1, iterations=1)


if __name__ == "__main__":
    emit(
        "e6_load",
        "E6: per-dissemination load",
        ["N", "broker fan-out msgs", "gossip msgs/node", "coordinator msgs", "delivered"],
        load_rows(),
    )
