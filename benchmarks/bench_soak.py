"""Live soak: the stock workload through a real-socket gossip mesh.

Where ``bench_perf_core`` measures the *simulated* stack, this benchmark
stands up an actual deployment -- hundreds of full middleware stacks,
each on its own UDP (or keep-alive HTTP) socket, all on one event loop --
and pumps stock ticks through it for minutes while scraping the
aggregated ``GET /v1/metrics`` edge throughout, exactly how an operator
would watch it.  Results (sustained publishes/s, delivery fraction,
p50/p95/p99 end-to-end latency) land under the ``"soak"`` key of
BENCH_core.json.

Run the full soak (300 nodes, 3 minutes):

    PYTHONPATH=src python benchmarks/bench_soak.py

CI gate (small mesh, seconds, asserts delivery and latency):

    PYTHONPATH=src python benchmarks/bench_soak.py --smoke
"""

from __future__ import annotations

import argparse
import asyncio
import json
import random
import sys
import time
from pathlib import Path

from repro.core.aiodeploy import AsyncGossipMesh, soak_params
from repro.obs.hub import default_hub
from repro.transport.aio import AioHttpTransport, AsyncHttpNode
from repro.workloads import StockFeed

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_core.json"


def percentile(values, q: float) -> float:
    """Nearest-rank percentile (q in [0, 100]) of a non-empty list."""
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1, round(q / 100.0 * (len(ordered) - 1))))
    return ordered[rank]


async def run_soak(
    n_nodes: int,
    duration: float,
    rate: float,
    transport: str = "udp",
    view_size: int = 8,
    seed: int = 0,
    scrape_period: float = 2.0,
    settle: float = 6.0,
    period: float = 0.5,
) -> dict:
    """One soak run; returns the result row."""
    wall_start = time.monotonic()
    mesh = AsyncGossipMesh(
        n_nodes,
        transport=transport,
        params=soak_params(transport, period=period),
        view_size=view_size,
        seed=seed,
    )
    loop = mesh.loop
    await mesh.astart()
    # The operator's window into the run: one HTTP edge serving the
    # *default* hub, i.e. every node's stat groups aggregated.
    metrics_edge = AsyncHttpNode(hub=default_hub())
    await metrics_edge.astart()
    scraper = AioHttpTransport()
    metrics_url = f"{metrics_edge.base_address}/v1/metrics"

    feed = StockFeed(rate=rate, seed=seed)
    rng = random.Random(seed + 1)
    published = {}  # gossip id -> (publisher index, publish time)
    scrapes_ok = 0
    scrape_bytes = 0
    start = loop.time()
    next_scrape = start + scrape_period
    try:
        for tick in feed.ticks(duration):
            lag = tick.time - (loop.time() - start)
            if lag > 0:
                await asyncio.sleep(lag)
            publisher = rng.randrange(n_nodes)
            gossip_id = await mesh.apublish(tick.to_value(), publisher)
            published[gossip_id] = (publisher, loop.time())
            if loop.time() >= next_scrape:
                status, _, body = await scraper.get(metrics_url)
                if status == 200 and body:
                    scrapes_ok += 1
                    scrape_bytes += len(body)
                next_scrape = loop.time() + scrape_period
        publish_span = loop.time() - start
        await asyncio.sleep(settle)
        status, _, body = await scraper.get(metrics_url)
        if status == 200 and body:
            scrapes_ok += 1
            scrape_bytes += len(body)
    finally:
        await scraper.aclose()
        await metrics_edge.astop()
        await mesh.astop()

    fractions = [
        mesh.delivered_fraction(gossip_id, publisher)
        for gossip_id, (publisher, _) in published.items()
    ]
    latencies = mesh.delivery_latencies(
        {gossip_id: when for gossip_id, (_, when) in published.items()}
    )
    hub = default_hub()
    return {
        "n_nodes": n_nodes,
        "transport": transport,
        "view_size": view_size,
        "seed": seed,
        "period_s": period,
        "duration_s": round(duration, 3),
        "ticks_published": len(published),
        "publishes_per_s": round(len(published) / publish_span, 2),
        "delivered_fraction": round(sum(fractions) / len(fractions), 6),
        "min_delivered_fraction": round(min(fractions), 6),
        "deliveries": mesh.total_deliveries(),
        "latency_p50_ms": round(percentile(latencies, 50) * 1000, 2),
        "latency_p95_ms": round(percentile(latencies, 95) * 1000, 2),
        "latency_p99_ms": round(percentile(latencies, 99) * 1000, 2),
        "metrics_scrapes": scrapes_ok,
        "metrics_scrape_bytes": scrape_bytes,
        "wire_parse_count": hub.wire.parse_count,
        "dedup_preparse_hits": hub.wire.dedup_preparse_hits,
        "wall_s": round(time.monotonic() - wall_start, 1),
    }


def save_row(row: dict) -> None:
    """Append the row under BENCH_core.json's ``soak`` section.

    The simulator sections (``headline``, ``runs``...) are left exactly
    as they are -- ``bench_perf_core --smoke`` validates those.
    """
    data = json.loads(RESULTS_PATH.read_text()) if RESULTS_PATH.exists() else {}
    soak = data.setdefault("soak", {
        "benchmark": "live-soak",
        "description": (
            "Real-socket mesh on one event loop (benchmarks/bench_soak.py): "
            "stock ticks through N full middleware stacks, GET /v1/metrics "
            "scraped throughout; per-(message,node) end-to-end latency."
        ),
        "runs": [],
    })
    soak["runs"] = [
        existing for existing in soak["runs"]
        if (existing["n_nodes"], existing["transport"])
        != (row["n_nodes"], row["transport"])
    ] + [row]
    RESULTS_PATH.write_text(json.dumps(data, indent=2) + "\n")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--nodes", type=int, default=300)
    parser.add_argument("--duration", type=float, default=180.0)
    parser.add_argument("--rate", type=float, default=10.0,
                        help="mean stock ticks per second")
    parser.add_argument("--transport", choices=("udp", "http"), default="udp")
    parser.add_argument("--view-size", type=int, default=8)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--settle", type=float, default=6.0,
                        help="seconds to let the tail disseminate")
    parser.add_argument("--period", type=float, default=0.5,
                        help="gossip round period (pull-digest cadence)")
    parser.add_argument("--no-save", action="store_true",
                        help="print the row without touching BENCH_core.json")
    parser.add_argument(
        "--smoke", action="store_true",
        help="CI gate: small mesh, short run, assert delivery and p99",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        args.nodes, args.duration, args.rate = 40, 6.0, 10.0
        args.settle = 4.0

    print(
        f"soak: {args.nodes} nodes over {args.transport}, "
        f"{args.duration:.0f}s at {args.rate:.0f} ticks/s ...",
        flush=True,
    )
    row = asyncio.run(run_soak(
        args.nodes, args.duration, args.rate,
        transport=args.transport, view_size=args.view_size,
        seed=args.seed, settle=args.settle, period=args.period,
    ))
    print(json.dumps(row, indent=2))

    if args.smoke:
        failures = []
        if row["delivered_fraction"] < 0.99:
            failures.append(
                f"delivered_fraction {row['delivered_fraction']} < 0.99"
            )
        if row["latency_p99_ms"] > 5000.0:
            failures.append(f"latency_p99_ms {row['latency_p99_ms']} > 5000")
        if row["metrics_scrapes"] < 1:
            failures.append("no successful /v1/metrics scrape")
        if failures:
            print("SOAK SMOKE FAILED: " + "; ".join(failures))
            return 1
        print("soak smoke ok: delivery "
              f"{row['delivered_fraction']}, p99 {row['latency_p99_ms']}ms, "
              f"{row['metrics_scrapes']} metrics scrapes")
        return 0

    if not args.no_save:
        save_row(row)
        print(f"saved to {RESULTS_PATH} under 'soak'")
    return 0


if __name__ == "__main__":
    sys.exit(main())
