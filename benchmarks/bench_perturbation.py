"""Adaptive control under perturbation: self-tuning vs static knobs.

Four back-to-back phases stress one simulated group -- calm steady
publishing, 30% crash-restart churn (amnesia), a 10->20% loss ramp, and
a 5x publish burst -- while a :class:`~repro.core.control.AdaptiveController`
re-tunes fanout / rounds / gossip mode / batching each epoch.  The same
schedule then runs against a grid of static ``(fanout, rounds)`` push-pull
configurations.  The claim under test: the controller holds the >= 0.99
delivery SLO through every phase while spending *less* traffic per
delivered rumor than any static configuration that also meets the SLO
(static knobs must be provisioned for the worst phase; the controller only
pays for the phase it is in).

Full sweep (writes rows under the ``"perturbation"`` key of BENCH_core.json):

    PYTHONPATH=src python benchmarks/bench_perturbation.py

CI gate (smaller group, shorter phases, asserts the claim):

    PYTHONPATH=src python benchmarks/bench_perturbation.py --smoke
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro import GossipConfig
from repro.simnet.faults import FaultPlan
from repro.workloads import PublishDriver, churn_plan

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_core.json"

PHASES = ("calm", "churn", "loss", "burst")

# The controller's starting point: frugal push gossip.  Everything beyond
# this -- more fanout, more rounds, push-pull repair, batching -- must be
# *earned* by an observed stress signal.
ADAPTIVE_BASE_PARAMS = {
    "style": "push",
    "fanout": 3,
    "rounds": 5,
    "period": 0.5,
    "peer_sample_size": 12,
}


def run_arm(
    label: str,
    n_nodes: int,
    phase_len: float,
    publish_rate: float,
    seed: int,
    *,
    adaptive: Optional[dict] = None,
    static_fanout: Optional[int] = None,
    static_rounds: Optional[int] = None,
    churn_fraction: float = 0.30,
    loss_start: float = 0.10,
    loss_end: float = 0.20,
    burst_multiplier: float = 5.0,
    drain: float = 12.0,
) -> Dict[str, Any]:
    """Run one arm (adaptive or one static grid point) through the
    calm -> churn -> loss -> burst schedule; return its result row."""
    wall_start = time.monotonic()
    if adaptive is not None:
        params = dict(ADAPTIVE_BASE_PARAMS)
        config = GossipConfig(
            n_disseminators=n_nodes - 1,
            seed=seed,
            params=params,
            auto_tune=False,
            health=True,
            adaptive=adaptive,
        )
    else:
        params = {
            "style": "push-pull",
            "fanout": static_fanout,
            "rounds": static_rounds,
            "period": 0.5,
            "peer_sample_size": max(12, static_fanout),
        }
        config = GossipConfig(
            n_disseminators=n_nodes - 1,
            seed=seed,
            params=params,
            auto_tune=False,
            health=True,
        )
    group = config.build()
    # Eager join for every arm: each disseminator owns an engine from the
    # start, so pull-family repair (static push-pull, or the controller's
    # escalated mode) can reach nodes that never saw the first push.
    group.setup(settle=1.5, eager_join=True)

    t0 = group.sim.now
    bounds = [t0 + index * phase_len for index in range(len(PHASES) + 1)]

    # Phase 2: continuous crash-restart churn (amnesia) over ~30% of the
    # group.  The generator starts immediately, so its birth is scheduled.
    names = [node.name for node in group.disseminators]
    churn_rate = churn_fraction * n_nodes / phase_len
    group.sim.call_at(
        bounds[1],
        lambda: churn_plan(
            group.network,
            names,
            rate=churn_rate,
            recover_delay=1.0,
            until=bounds[2],
            restart=True,
        ),
    )

    # Phase 3: loss ramps 10% -> 20%, then the fabric heals.
    fault_plan = FaultPlan(group.network)
    fault_plan.loss_ramp_at(bounds[2], loss_start, loss_end, phase_len)
    fault_plan.loss_at(bounds[3], 0.0)
    fault_plan.apply()

    # Steady Poisson publishes all the way through; phase 4 is a burst.
    driver = PublishDriver(
        group.sim,
        lambda sequence: group.publish({"seq": sequence}),
        rate=publish_rate,
    )
    driver.burst_publish_at(bounds[3], burst_multiplier, phase_len)
    driver.start(until=bounds[4])

    sent_marks = [group.message_counts().get("net.sent", 0)]
    for bound in bounds[1:]:
        group.run_for(bound - group.sim.now)
        sent_marks.append(group.message_counts().get("net.sent", 0))
    group.run_for(drain)
    total_sent = group.message_counts().get("net.sent", 0) - sent_marks[0]

    # Per-phase delivery, judged after the drain over nodes that are up
    # (post-churn everyone has restarted; amnesiac rejoiners must have
    # been healed by gossip repair to count).
    up_nodes = [
        node
        for node in group.disseminators
        if group.network.process(node.name).is_running
    ]
    phase_ids: Dict[str, List[str]] = {phase: [] for phase in PHASES}
    for when, gossip_id in driver.published:
        for index, phase in enumerate(PHASES):
            if bounds[index] <= when < bounds[index + 1]:
                phase_ids[phase].append(gossip_id)
                break
    delivered_total = 0
    phase_delivery: Dict[str, Optional[float]] = {}
    for phase in PHASES:
        fractions = []
        for gossip_id in phase_ids[phase]:
            delivered = sum(
                1 for node in up_nodes if node.has_delivered(gossip_id)
            )
            delivered_total += delivered
            fractions.append(delivered / len(up_nodes))
        phase_delivery[phase] = (
            round(sum(fractions) / len(fractions), 6) if fractions else None
        )

    row: Dict[str, Any] = {
        "arm": label,
        "n_nodes": n_nodes,
        "seed": seed,
        "phase_len_s": phase_len,
        "publish_rate": publish_rate,
        "params": {
            key: params[key] for key in ("style", "fanout", "rounds")
        },
        "published": len(driver.published),
        "phase_published": {
            phase: len(phase_ids[phase]) for phase in PHASES
        },
        "phase_delivery": phase_delivery,
        "min_phase_delivery": min(
            value for value in phase_delivery.values() if value is not None
        ),
        "messages_sent": total_sent,
        "phase_sent": {
            PHASES[index]: sent_marks[index + 1] - sent_marks[index]
            for index in range(len(PHASES))
        },
        "deliveries": delivered_total,
        "traffic_per_delivery": round(total_sent / max(1, delivered_total), 3),
        "wall_s": round(time.monotonic() - wall_start, 1),
    }
    if adaptive is not None:
        control = group.hub.control
        row["control"] = {
            "epochs": control.epochs,
            "boosts": control.boosts,
            "shrinks": control.shrinks,
            "escalations": control.escalations,
            "deescalations": control.deescalations,
            "ceiling_clamps": control.ceiling_clamps,
        }
        targets = group.controller.targets
        row["final_params"] = {
            key: targets[key] for key in ("fanout", "rounds", "max_batch_rumors")
        }
    return row


def run_sweep(
    n_nodes: int,
    phase_len: float,
    publish_rate: float,
    seed: int,
    grid: List[tuple],
    adaptive_policy: dict,
) -> List[Dict[str, Any]]:
    rows = [
        run_arm(
            "adaptive", n_nodes, phase_len, publish_rate, seed,
            adaptive=adaptive_policy,
        )
    ]
    print(_summary_line(rows[0]), flush=True)
    for fanout, rounds in grid:
        row = run_arm(
            f"static-f{fanout}-r{rounds}",
            n_nodes, phase_len, publish_rate, seed,
            static_fanout=fanout, static_rounds=rounds,
        )
        rows.append(row)
        print(_summary_line(row), flush=True)
    return rows


def _summary_line(row: Dict[str, Any]) -> str:
    delivery = " ".join(
        f"{phase}={row['phase_delivery'][phase]}"
        for phase in PHASES
        if row["phase_delivery"][phase] is not None
    )
    return (
        f"{row['arm']:>16}: sent={row['messages_sent']:>7} "
        f"traffic/delivery={row['traffic_per_delivery']:>7} "
        f"min_delivery={row['min_phase_delivery']}  [{delivery}]"
    )


def check_claim(rows: List[Dict[str, Any]], slo: float = 0.99) -> List[str]:
    """The gate: adaptive meets the SLO in every phase and beats every
    SLO-meeting static point on traffic per delivery."""
    failures = []
    adaptive_row = rows[0]
    for phase in PHASES:
        delivery = adaptive_row["phase_delivery"][phase]
        if delivery is None:
            failures.append(f"adaptive published nothing in phase {phase}")
        elif delivery < slo:
            failures.append(
                f"adaptive delivery {delivery} < {slo} in phase {phase}"
            )
    meeting = [
        row for row in rows[1:] if row["min_phase_delivery"] >= slo
    ]
    if not meeting:
        failures.append(
            "no static grid point met the SLO -- the comparison is vacuous; "
            "widen the grid"
        )
    for row in meeting:
        if adaptive_row["traffic_per_delivery"] >= row["traffic_per_delivery"]:
            failures.append(
                f"adaptive traffic/delivery "
                f"{adaptive_row['traffic_per_delivery']} not below "
                f"{row['arm']}'s {row['traffic_per_delivery']}"
            )
    return failures


def save_rows(rows: List[Dict[str, Any]], config: Dict[str, Any]) -> None:
    """Write the sweep under BENCH_core.json's ``perturbation`` section,
    leaving every other section untouched."""
    data = json.loads(RESULTS_PATH.read_text()) if RESULTS_PATH.exists() else {}
    data["perturbation"] = {
        "benchmark": "adaptive-vs-static-under-perturbation",
        "description": (
            "One group through calm -> 30% crash-restart churn -> 10-20% "
            "loss ramp -> 5x publish burst "
            "(benchmarks/bench_perturbation.py).  The adaptive controller "
            "(start: frugal push) vs a static push-pull (fanout, rounds) "
            "grid; traffic per delivered rumor at >= 0.99 per-phase "
            "delivery."
        ),
        "config": config,
        "runs": rows,
    }
    RESULTS_PATH.write_text(json.dumps(data, indent=2) + "\n")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--nodes", type=int, default=120)
    parser.add_argument("--phase-len", type=float, default=30.0)
    parser.add_argument("--rate", type=float, default=0.5,
                        help="base publishes per simulated second")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--no-save", action="store_true",
                        help="print rows without touching BENCH_core.json")
    parser.add_argument(
        "--smoke", action="store_true",
        help="CI gate: smaller group, shorter phases, assert the claim",
    )
    args = parser.parse_args(argv)

    grid = [(4, 6), (6, 8), (8, 10)]
    if args.smoke:
        args.nodes, args.phase_len, args.rate = 60, 20.0, 0.4
        grid = [(4, 6), (6, 8), (8, 10)]

    adaptive_policy = {
        "slo_delivery": 0.99,
        "epoch": 2.0,
        "max_fanout": 10,
        "max_rounds": 12,
        "fanout_ceiling": 12,
        "max_batch_rumors": 64,
    }
    print(
        f"perturbation: N={args.nodes}, 4x{args.phase_len:.0f}s phases at "
        f"{args.rate}/s, adaptive vs {len(grid)} static points ...",
        flush=True,
    )
    rows = run_sweep(
        args.nodes, args.phase_len, args.rate, args.seed, grid,
        adaptive_policy,
    )

    failures = check_claim(rows)
    if args.smoke:
        if failures:
            print("PERTURBATION SMOKE FAILED: " + "; ".join(failures))
            return 1
        print(
            "perturbation smoke ok: adaptive min delivery "
            f"{rows[0]['min_phase_delivery']}, traffic/delivery "
            f"{rows[0]['traffic_per_delivery']} vs best static "
            f"{min(r['traffic_per_delivery'] for r in rows[1:] if r['min_phase_delivery'] >= 0.99)}"
        )
        return 0

    print(json.dumps(rows, indent=2))
    if failures:
        print("CLAIM NOT MET: " + "; ".join(failures))
    if not args.no_save:
        save_rows(rows, {
            "n_nodes": args.nodes,
            "phase_len_s": args.phase_len,
            "publish_rate": args.rate,
            "seed": args.seed,
            "adaptive_policy": adaptive_policy,
            "grid": grid,
        })
        print(f"saved to {RESULTS_PATH} under 'perturbation'")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
