"""E9 -- Gossip aggregation (push-sum): the second application scenario.

Every node starts with a sensor reading; push-sum converges to the global
average exponentially fast at every node, with no coordinator.  Measure
relative error vs rounds and vs population size, against the known ground
truth from the synthetic sensor field.
"""

from _tables import emit, mean

from repro import Simulator
from repro.core.aggregation import (
    AGGREGATION_SERVICE_PATH,
    AggregateKind,
    AggregationEngine,
    AggregationService,
    initial_weight,
)
from repro.core.scheduling import ProcessScheduler
from repro.simnet.network import Network
from repro.transport.inmem import WsProcess
from repro.workloads import SensorField

PERIOD = 0.2


class SensorNode(WsProcess):
    def attach(self, task, kind, value, peers, is_root):
        self.service = AggregationService()
        self.runtime.add_service(AGGREGATION_SERVICE_PATH, self.service)
        self.engine = AggregationEngine(
            runtime=self.runtime,
            scheduler=ProcessScheduler(self),
            task=task,
            kind=kind,
            local_value=value,
            view_provider=lambda: peers,
            period=PERIOD,
            rng=self.sim.rng.get(f"agg:{self.name}"),
            weight=initial_weight(kind, is_root),
        )
        self.service.add_engine(self.engine)


def build(n, kind, seed=1):
    field = SensorField(n, seed=seed)
    sim = Simulator(seed=seed)
    network = Network(sim)
    nodes = [SensorNode(f"s{index}", network) for index in range(n)]
    addresses = [node.runtime.base_address for node in nodes]
    for index, node in enumerate(nodes):
        peers = [a for a in addresses if a != node.runtime.base_address]
        node.attach("field", kind, field.readings[index], peers, index == 0)
        node.start()
        node.engine.start()
    return sim, nodes, field


def max_relative_error(nodes, truth):
    scale = abs(truth) if truth else 1.0
    return max(abs(node.engine.estimate() - truth) / scale for node in nodes)


def convergence_rows(n=32, seed=1):
    sim, nodes, field = build(n, AggregateKind.AVERAGE, seed=seed)
    truth = field.truth()["mean"]
    rows = []
    for rounds in (5, 10, 20, 40, 80):
        sim.run_until(rounds * PERIOD)
        rows.append((rounds, max_relative_error(nodes, truth)))
    return rows


def population_rows(seed=1):
    rows = []
    for n in (8, 16, 32, 64):
        sim, nodes, field = build(n, AggregateKind.AVERAGE, seed=seed)
        truth = field.truth()["mean"]
        sim.run_until(60 * PERIOD)
        rows.append((n, max_relative_error(nodes, truth)))
    return rows


def kinds_rows(n=24, seed=2):
    rows = []
    for kind, key in (
        (AggregateKind.AVERAGE, "mean"),
        (AggregateKind.SUM, "sum"),
        (AggregateKind.COUNT, "count"),
        (AggregateKind.MIN, "min"),
        (AggregateKind.MAX, "max"),
    ):
        sim, nodes, field = build(n, kind, seed=seed)
        truth = field.truth()[key]
        sim.run_until(80 * PERIOD)
        estimates = [node.engine.estimate() for node in nodes]
        scale = abs(truth) if truth else 1.0
        rows.append((kind.value, truth, mean(estimates),
                     max(abs(e - truth) / scale for e in estimates)))
    return rows


def test_e9_aggregation(benchmark):
    conv = convergence_rows()
    emit(
        "e9_convergence",
        "E9a: push-sum max relative error vs rounds (N=32, average)",
        ["rounds", "max rel error"],
        conv,
    )
    errors = [row[1] for row in conv]
    assert errors == sorted(errors, reverse=True), "error must shrink"
    assert errors[-1] < 1e-3
    # Exponential decay: each doubling of rounds slashes the error by a
    # large factor overall.
    assert errors[-1] < errors[0] / 100.0

    pops = population_rows()
    emit(
        "e9_population",
        "E9b: error after 60 rounds vs population",
        ["N", "max rel error"],
        pops,
    )
    assert all(error < 0.01 for _, error in pops)

    kinds = kinds_rows()
    emit(
        "e9_kinds",
        "E9c: all aggregate kinds vs ground truth (N=24, 80 rounds)",
        ["kind", "truth", "mean estimate", "max rel error"],
        kinds,
    )
    for kind, truth, estimate, error in kinds:
        assert error < 0.02, f"{kind} did not converge"

    benchmark.pedantic(lambda: convergence_rows(n=16), rounds=1, iterations=1)


if __name__ == "__main__":
    emit("e9_convergence", "E9a: error vs rounds", ["rounds", "max rel error"],
         convergence_rows())
    emit("e9_population", "E9b: error vs N", ["N", "max rel error"],
         population_rows())
    emit("e9_kinds", "E9c: aggregate kinds", ["kind", "truth", "mean est", "err"],
         kinds_rows())
