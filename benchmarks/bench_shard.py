"""Sharded simulator strong scaling: K worker processes, one deployment.

Runs the constant-total-work burst of ``bench_perf_core`` (same params,
same ``publications(n) = TOTAL_DELIVERIES / n`` workload) through
``GossipConfig(shards=K).build()`` at N in {1000, 5000, 20000} and
K in {1, 2, 4, 8}, and records two speedups per row:

* ``wall_speedup`` -- K=1 drain wall over this row's drain wall.  Only
  meaningful when the host actually has >= K cores; on a single-core
  container the workers timeslice one CPU and the wall *regresses*.
* ``critical_path_speedup`` -- K=1 drain wall over the row's critical
  path: the parent's own drain CPU plus ``max(worker busy CPU)``.  The
  workers run concurrently, so with one core per shard the drain wall
  approaches exactly this sum; it is the honest projection of the
  multi-core wall from a core-starved measurement host.  Per-worker busy
  is CPU time (``time.process_time`` in the worker), not wall, so
  co-scheduled siblings don't inflate it.

The determinism contract (also asserted by ``--smoke`` /
``make bench-shard-smoke``):

* same seed and same K, run twice -> byte-identical per-shard trace
  digests (event-by-event);
* K=1 vs K>1 at the same seed -> the *delivered rumor sets are
  identical per publication* once the protocol converges (the gate uses
  push-pull, whose anti-entropy repair reaches delivery 1.0; pure push
  below 1.0 admits same-instant tie reorderings that legitimately change
  peer draws -- see docs/ARCHITECTURE.md, "Parallel simulation").

Run directly to (re)write the ``"shard"`` section of ``BENCH_core.json``
(the other sections are preserved)::

    PYTHONPATH=src python benchmarks/bench_shard.py

or ``--smoke`` for the fast K=2/N=1000 gate used by ``make test``.
Under pytest only the smoke gate runs.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.dirname(__file__))

from _tables import emit

from bench_perf_core import (
    BASELINE_PATH,
    DRAIN_SIM_S,
    MAX_BATCH_RUMORS,
    PARAMS,
    publications_for,
)

from repro import GossipConfig

SIZES = [1000, 5000, 20000]
SHARD_COUNTS = [1, 2, 4, 8]
SEED = 3
DELIVERED_FLOOR = 0.99
SPEEDUP_FLOOR_K4 = 2.0
SMOKE_SPEEDUP_FLOOR = 1.3
SMOKE_N = 1000
SMOKE_K = 2
# Determinism-contract scenario: small enough to be fast, push-pull so
# anti-entropy repair converges to delivery 1.0 (below 1.0 the delivered
# set is not invariant across K -- that's the documented contract).
CONTRACT_N = 60
CONTRACT_SEEDS = [11, 23, 37]
CONTRACT_PARAMS = {"style": "push-pull", "fanout": 4, "rounds": 8}
CONTRACT_RUN_S = 10.0
CONTRACT_PUBLICATIONS = 3


def run_row(
    n: int,
    shards: int,
    seed: int = SEED,
    max_batch_rumors: int = MAX_BATCH_RUMORS,
) -> dict:
    """One measured burst dissemination, simulated across ``shards``."""
    publications = publications_for(n)
    params = dict(PARAMS, max_batch_rumors=max_batch_rumors)
    group = GossipConfig(
        n_disseminators=n - 1,
        seed=seed,
        params=params,
        auto_tune=False,
        shards=shards,
    ).build()
    try:
        started = time.perf_counter()
        group.setup(settle=1.0, eager_join=True)
        setup_wall = time.perf_counter() - started

        started = time.perf_counter()
        message_ids = [
            group.publish({"tick": index}) for index in range(publications)
        ]
        publish_wall = time.perf_counter() - started

        # Parent CPU during the drain: for K=1 this is the whole
        # simulation; for K>1 it is routing/pickling only, and it is the
        # serial leg of the critical path.  Worker busy is cumulative, so
        # snapshot it around the drain -- the speedup compares drain
        # against drain, not against setup (whose join/subscribe work
        # dwarfs a small burst at large N).
        busy_before = group.worker_busy() if shards > 1 else []
        started = time.perf_counter()
        cpu_started = time.process_time()
        group.run_for(DRAIN_SIM_S)
        drain_cpu = time.process_time() - cpu_started
        drain_wall = time.perf_counter() - started

        fractions = [group.delivered_fraction(mid) for mid in message_ids]
        row = {
            "n": n,
            "shards": shards,
            "publications": publications,
            "setup_wall_s": round(setup_wall, 4),
            "publish_wall_s": round(publish_wall, 4),
            "drain_wall_s": round(drain_wall, 4),
            "drain_parent_cpu_s": round(drain_cpu, 4),
            "delivered_fraction": round(min(fractions), 5),
            "mean_delivered_fraction": round(
                sum(fractions) / len(fractions), 5
            ),
            "cpu_count": os.cpu_count(),
        }
        if shards > 1:
            busy = [
                after - before
                for after, before in zip(group.worker_busy(), busy_before)
            ]
            row["worker_busy_s"] = [round(b, 4) for b in busy]
            row["max_worker_busy_s"] = round(max(busy), 4)
            row["barriers"] = group.barriers
            # Parent serial work + the slowest shard, run concurrently:
            # the drain wall this row approaches given one core/shard.
            row["critical_path_s"] = round(drain_cpu + max(busy), 4)
        else:
            row["critical_path_s"] = round(drain_wall, 4)
        return row
    finally:
        if hasattr(group, "close"):
            group.close()


def add_speedups(rows) -> None:
    """Annotate each row with speedups against its size's K=1 row."""
    baselines = {
        row["n"]: row["drain_wall_s"] for row in rows if row["shards"] == 1
    }
    for row in rows:
        base = baselines.get(row["n"])
        if base is None:
            continue
        row["wall_speedup"] = round(base / max(row["drain_wall_s"], 1e-9), 3)
        row["critical_path_speedup"] = round(
            base / max(row["critical_path_s"], 1e-9), 3
        )


def delivered_sets(n: int, shards: int, seed: int):
    """Receiver sets per publication index for the contract scenario."""
    group = GossipConfig(
        n_disseminators=n - 1,
        seed=seed,
        params=dict(CONTRACT_PARAMS),
        auto_tune=False,
        shards=shards,
    ).build()
    try:
        group.setup(settle=1.0, eager_join=True)
        message_ids = [
            group.publish({"tick": index})
            for index in range(CONTRACT_PUBLICATIONS)
        ]
        group.run_for(CONTRACT_RUN_S)
        # GossipGroup.receivers returns node objects; the sharded group
        # returns names (nodes live in worker processes).  Compare names.
        return [
            frozenset(
                node if isinstance(node, str) else node.name
                for node in group.receivers(mid)
            )
            for mid in message_ids
        ]
    finally:
        if hasattr(group, "close"):
            group.close()


def repeat_digests(n: int, shards: int, seed: int):
    """Per-shard trace digests of one traced contract run."""
    group = GossipConfig(
        n_disseminators=n - 1,
        seed=seed,
        params=dict(CONTRACT_PARAMS),
        auto_tune=False,
        trace=True,
        shards=shards,
    ).build()
    try:
        group.setup(settle=1.0, eager_join=True)
        for index in range(CONTRACT_PUBLICATIONS):
            group.publish({"tick": index})
        group.run_for(CONTRACT_RUN_S)
        return group.trace_digests()
    finally:
        group.close()


def check_contract(shard_counts, seeds=CONTRACT_SEEDS) -> list:
    """Delivered-set equality K=1 vs each K, per seed.  Returns failures."""
    failures = []
    for seed in seeds:
        reference = delivered_sets(CONTRACT_N, 1, seed)
        population = CONTRACT_N - 1
        for index, receivers in enumerate(reference):
            if len(receivers) != population:
                failures.append(
                    f"seed {seed} K=1 publication {index} did not converge: "
                    f"{len(receivers)}/{population} delivered"
                )
        for shards in shard_counts:
            candidate = delivered_sets(CONTRACT_N, shards, seed)
            if candidate != reference:
                diffs = [
                    index
                    for index, (a, b) in enumerate(zip(reference, candidate))
                    if a != b
                ]
                failures.append(
                    f"seed {seed}: delivered sets K={shards} differ from K=1 "
                    f"at publication(s) {diffs}"
                )
    return failures


def check_repeatability(shards: int, seed: int) -> list:
    """Same seed, same K, twice: per-shard digests must be identical."""
    first = repeat_digests(CONTRACT_N, shards, seed)
    second = repeat_digests(CONTRACT_N, shards, seed)
    failures = []
    if first != second:
        failures.append(
            f"seed {seed} K={shards}: repeat run diverged "
            f"(digests {[d['digest'][:12] for d in first]} vs "
            f"{[d['digest'][:12] for d in second]})"
        )
    return failures


def _emit_table(rows) -> None:
    emit(
        "shard",
        "Sharded simulator strong scaling (constant-total-work burst)",
        [
            "N",
            "K",
            "drain s",
            "parent cpu s",
            "max busy s",
            "barriers",
            "delivered",
            "wall x",
            "critical-path x",
        ],
        [
            [
                row["n"],
                row["shards"],
                row["drain_wall_s"],
                row["drain_parent_cpu_s"],
                row.get("max_worker_busy_s", "-"),
                row.get("barriers", "-"),
                row["delivered_fraction"],
                row.get("wall_speedup", "-"),
                row.get("critical_path_speedup", "-"),
            ]
            for row in rows
        ],
    )


def run_all(sizes=SIZES, shard_counts=SHARD_COUNTS) -> dict:
    rows = []
    for n in sizes:
        for shards in shard_counts:
            rows.append(run_row(n, shards))
            print(
                f"n={n} K={shards}: drain {rows[-1]['drain_wall_s']}s, "
                f"critical path {rows[-1]['critical_path_s']}s, "
                f"delivered {rows[-1]['delivered_fraction']}"
            )
    add_speedups(rows)
    _emit_table(rows)

    contract_failures = check_contract([k for k in shard_counts if k > 1])
    contract_failures += check_repeatability(max(shard_counts), CONTRACT_SEEDS[0])
    for failure in contract_failures:
        print(f"CONTRACT FAIL: {failure}")

    by_key = {(row["n"], row["shards"]): row for row in rows}
    headline = {}
    target = by_key.get((5000, 4))
    if target:
        headline["wall_speedup_n5000_k4"] = target.get("wall_speedup")
        headline["critical_path_speedup_n5000_k4"] = target.get(
            "critical_path_speedup"
        )
        headline["delivered_fraction_n5000_k4"] = target["delivered_fraction"]
    headline["determinism_contract_ok"] = not contract_failures
    return {
        "benchmark": "bench_shard",
        "description": (
            "Conservative-PDES sharded simulator: constant-total-work burst "
            "dissemination across K worker processes; wall speedup is "
            "hardware-bound (cpu_count), critical_path_speedup projects the "
            "wall with one core per shard (parent drain CPU + max worker "
            "busy CPU)"
        ),
        "config": {
            "params": PARAMS,
            "max_batch_rumors": MAX_BATCH_RUMORS,
            "drain_sim_s": DRAIN_SIM_S,
            "seed": SEED,
            "sizes": list(sizes),
            "shard_counts": list(shard_counts),
            "contract": dict(
                CONTRACT_PARAMS, n=CONTRACT_N, seeds=CONTRACT_SEEDS
            ),
        },
        "headline": headline,
        "runs": rows,
        "contract_failures": contract_failures,
    }


def write_section(results: dict, path: str = BASELINE_PATH) -> None:
    """Merge the results into ``BENCH_core.json`` under ``"shard"``."""
    try:
        with open(path) as handle:
            document = json.load(handle)
    except FileNotFoundError:
        document = {}
    document["shard"] = results
    with open(path, "w") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")


def smoke() -> int:
    """Fast gate for ``make test``: determinism contract + K=2 speedup."""
    failures = []

    failures += check_contract([SMOKE_K, 4], seeds=CONTRACT_SEEDS[:1])
    failures += check_repeatability(SMOKE_K, CONTRACT_SEEDS[0])
    if not failures:
        print(
            f"determinism contract OK (N={CONTRACT_N}, push-pull, "
            f"K=1 vs K={SMOKE_K} and K=4, repeat-run digests identical)"
        )

    # Best of two: the same seed replays the identical event sequence, so
    # run-to-run spread is pure host noise (one-sided inflation from
    # timeslicing on shared hosts) and the minimum is the honest figure.
    rows = [
        min(
            (run_row(SMOKE_N, shards) for _ in range(2)),
            key=lambda row: row["critical_path_s"],
        )
        for shards in (1, SMOKE_K)
    ]
    add_speedups(rows)
    _emit_table(rows)
    sharded = rows[1]
    cores = os.cpu_count() or 1
    # With real cores for the workers, demand the wall itself improves;
    # core-starved hosts are judged on the critical path instead.
    measure = "wall_speedup" if cores >= SMOKE_K else "critical_path_speedup"
    speedup = sharded[measure]
    print(
        f"N={SMOKE_N} K={SMOKE_K}: drain {sharded['drain_wall_s']}s "
        f"(K=1 {rows[0]['drain_wall_s']}s), {measure} {speedup}x "
        f"on {cores} core(s), delivered {sharded['delivered_fraction']}"
    )
    if speedup < SMOKE_SPEEDUP_FLOOR:
        failures.append(
            f"{measure} below floor: {speedup} < {SMOKE_SPEEDUP_FLOOR}"
        )
    if sharded["delivered_fraction"] < DELIVERED_FLOOR:
        failures.append(
            f"sharded delivery below floor: "
            f"{sharded['delivered_fraction']} < {DELIVERED_FLOOR}"
        )

    for failure in failures:
        print(f"FAIL: {failure}")
    if not failures:
        print("OK: sharded simulator within budget")
    return 1 if failures else 0


def test_shard_smoke():
    """Pytest entry point: the smoke gate (determinism + K=2 speedup)."""
    assert smoke() == 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="fast K=2/N=1000 gate: determinism contract + speedup floor",
    )
    parser.add_argument(
        "--sizes", type=int, nargs="+", default=SIZES,
        help="population sizes to measure",
    )
    parser.add_argument(
        "--shards", type=int, nargs="+", default=SHARD_COUNTS,
        help="shard counts to measure (must include 1 for the baseline)",
    )
    parser.add_argument(
        "--output", default=BASELINE_PATH,
        help="BENCH_core.json to merge the shard section into",
    )
    arguments = parser.parse_args()
    if arguments.smoke:
        return smoke()
    results = run_all(arguments.sizes, arguments.shards)
    write_section(results, arguments.output)
    print(f"merged shard section into {arguments.output}")
    return 1 if results["contract_failures"] else 0


if __name__ == "__main__":
    raise SystemExit(main())
