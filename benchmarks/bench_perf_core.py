"""Core wire-path performance: encodes, parses, and publish throughput.

Measures the zero-copy fast path end to end at N in {100, 1000, 5000}
endpoints: how many XML encodes (``Envelope.to_bytes``) and parses
(``Envelope.from_bytes``) a dissemination actually pays, how many the
pre-parse dedup gate avoided, and wall-clock publish throughput.

The headline ratios:

* ``naive_to_bytes_ratio`` -- wire sends per actual encode.  The
  pre-optimization path encoded one copy per send (every forward built its
  own envelope via ``from_bytes(to_bytes())``), so this is the factor by
  which ``to_bytes`` calls dropped.
* ``parses_per_delivery`` -- envelopes parsed per application delivery;
  the pre-parse gate keeps duplicate copies away from the XML parser.

Run directly to (re)generate ``BENCH_core.json``::

    PYTHONPATH=src python benchmarks/bench_perf_core.py

or ``--smoke`` (used by ``make bench-smoke``) to run N=100 only and fail
when ``parses_per_delivery`` regresses more than 20% against the
checked-in baseline.  Under pytest only the N=100 row runs.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.dirname(__file__))

from _tables import emit

from repro import GossipConfig
from repro.simnet.metrics import WIRE_STATS

BASELINE_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "BENCH_core.json"
)
SIZES = [100, 1000, 5000]
SMOKE_SIZE = 100
REGRESSION_TOLERANCE = 0.20
PUBLICATIONS = 5


def run_size(n: int, seed: int = 3, publications: int = PUBLICATIONS) -> dict:
    """One measured dissemination run with ``n`` application endpoints."""
    group = GossipConfig(
        n_disseminators=n - 1,
        seed=seed,
        # Pure push: the dissemination wire path is the thing measured, so
        # periodic digest styles (whose control traffic would swamp the
        # encode/parse counts) stay out of the picture.  Fixed-fanout push
        # is probabilistic -- the occasional run tops out at 99% coverage,
        # which the checks below tolerate.
        params={"fanout": 6, "rounds": 9, "peer_sample_size": 14},
        auto_tune=False,
    ).build()
    group.setup(settle=1.0)

    # Measure the dissemination phase only: setup control traffic
    # (activation, subscription, registration) is not the wire path
    # under test.
    WIRE_STATS.reset()
    sent_at_setup = group.metrics.counter("soap.sent").value
    shared_at_setup = group.metrics.counter("soap.sent-shared").value

    started = time.perf_counter()
    message_ids = []
    for index in range(publications):
        message_ids.append(group.publish({"tick": index}))
        group.run_for(3.0)
    group.run_for(5.0)
    wall_clock = time.perf_counter() - started

    fractions = [group.delivered_fraction(mid) for mid in message_ids]
    deliveries = sum(round(fraction * (n - 1)) for fraction in fractions)
    stats = WIRE_STATS.snapshot()
    counts = group.message_counts()
    sent = counts.get("soap.sent", 0) - sent_at_setup
    shared = counts.get("soap.sent-shared", 0) - shared_at_setup
    serialize = max(stats["serialize_count"], 1)
    return {
        "n": n,
        "publications": publications,
        "wall_clock_s": round(wall_clock, 4),
        "publishes_per_s": round(publications / wall_clock, 2) if wall_clock else None,
        "delivered_fraction": min(fractions),
        "deliveries": deliveries,
        "serialize_count": stats["serialize_count"],
        "serialize_reused": stats["serialize_reused"],
        "parse_count": stats["parse_count"],
        "dedup_preparse_hits": stats["dedup_preparse_hits"],
        "soap_sent": sent,
        "soap_sent_shared": shared,
        "naive_to_bytes_ratio": round(sent / serialize, 2),
        "parses_per_delivery": round(stats["parse_count"] / max(deliveries, 1), 3),
    }


def run_all(sizes=SIZES) -> dict:
    rows = [run_size(n) for n in sizes]
    emit(
        "perf_core",
        "Core wire path: encodes / parses / throughput",
        [
            "N",
            "publishes/s",
            "wall s",
            "delivered",
            "encodes",
            "reused",
            "parses",
            "preparse hits",
            "sent",
            "sent/encode",
            "parses/delivery",
        ],
        [
            [
                row["n"],
                row["publishes_per_s"],
                row["wall_clock_s"],
                row["delivered_fraction"],
                row["serialize_count"],
                row["serialize_reused"],
                row["parse_count"],
                row["dedup_preparse_hits"],
                row["soap_sent"],
                row["naive_to_bytes_ratio"],
                row["parses_per_delivery"],
            ]
            for row in rows
        ],
    )
    return {
        "benchmark": "bench_perf_core",
        "description": (
            "Zero-copy gossip wire path: XML encodes/parses per dissemination "
            "and publish throughput at several population sizes"
        ),
        "config": {
            "params": {"fanout": 6, "rounds": 9, "peer_sample_size": 14},
            "publications_per_run": PUBLICATIONS,
            "seed": 3,
        },
        "runs": rows,
    }


def baseline_row(n: int) -> dict:
    with open(BASELINE_PATH) as handle:
        baseline = json.load(handle)
    for row in baseline.get("runs", []):
        if row["n"] == n:
            return row
    raise SystemExit(f"no N={n} row in baseline {BASELINE_PATH}")


def smoke() -> int:
    """N=100 regression check against the checked-in baseline."""
    reference = baseline_row(SMOKE_SIZE)
    current = run_size(SMOKE_SIZE)
    budget = reference["parses_per_delivery"] * (1.0 + REGRESSION_TOLERANCE)
    print(
        f"parses/delivery: current {current['parses_per_delivery']} vs "
        f"baseline {reference['parses_per_delivery']} "
        f"(budget {budget:.3f}, tolerance {REGRESSION_TOLERANCE:.0%})"
    )
    failures = []
    if current["parses_per_delivery"] > budget:
        failures.append(
            "parses_per_delivery regressed "
            f"{current['parses_per_delivery']} > {budget:.3f}"
        )
    if current["dedup_preparse_hits"] <= 0:
        failures.append("pre-parse dedup gate never fired")
    floor = reference["delivered_fraction"] - 0.02
    if current["delivered_fraction"] < floor:
        failures.append(
            f"delivery regressed: {current['delivered_fraction']} < {floor:.3f}"
        )
    for failure in failures:
        print(f"FAIL: {failure}")
    if not failures:
        print("OK: wire path within budget")
    return 1 if failures else 0


def test_perf_core_smoke():
    """Pytest entry point: the N=100 row only, asserting the fast path."""
    row = run_size(SMOKE_SIZE)
    emit(
        "perf_core_smoke",
        "Core wire path (smoke, N=100)",
        ["N", "encodes", "parses", "preparse hits", "sent/encode", "parses/delivery"],
        [[
            row["n"],
            row["serialize_count"],
            row["parse_count"],
            row["dedup_preparse_hits"],
            row["naive_to_bytes_ratio"],
            row["parses_per_delivery"],
        ]],
    )
    assert row["delivered_fraction"] >= 0.98
    assert row["dedup_preparse_hits"] > 0
    assert row["naive_to_bytes_ratio"] >= 3.0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run N=100 only and compare against the checked-in baseline",
    )
    parser.add_argument(
        "--sizes",
        type=int,
        nargs="+",
        default=SIZES,
        help="population sizes to measure",
    )
    parser.add_argument(
        "--output",
        default=BASELINE_PATH,
        help="where to write the JSON results",
    )
    arguments = parser.parse_args()
    if arguments.smoke:
        return smoke()
    results = run_all(arguments.sizes)
    with open(arguments.output, "w") as handle:
        json.dump(results, handle, indent=2)
        handle.write("\n")
    print(f"wrote {arguments.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
